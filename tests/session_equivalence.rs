//! The acceptance bar of the streaming redesign: for the quantized
//! nearest-voting datapath, `EventorSession` output is **bit-identical** to
//! the batch sequential `reconstruct()` golden path for every backend
//! (software, sharded, cosim) and for arbitrary packet boundaries.

use eventor::core::{
    config_for_sequence, CosimPipeline, EventorOptions, EventorPipeline, EventorSession,
    ParallelConfig, SessionEvent, SessionOutput,
};
use eventor::emvs::{EmvsConfig, EmvsError, EmvsOutput};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::hwsim::AcceleratorConfig;
use eventor::map::GlobalMapConfig;

fn sequence() -> SyntheticSequence {
    SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate")
}

fn assert_bit_identical(a: &EmvsOutput, b: &EmvsOutput, label: &str) {
    assert_eq!(
        a.keyframes.len(),
        b.keyframes.len(),
        "{label}: keyframe count"
    );
    for (i, (x, y)) in a.keyframes.iter().zip(&b.keyframes).enumerate() {
        assert_eq!(x.votes_cast, y.votes_cast, "{label} keyframe {i}: votes");
        assert_eq!(x.frames_used, y.frames_used, "{label} keyframe {i}: frames");
        assert_eq!(x.events_used, y.events_used, "{label} keyframe {i}: events");
        assert_eq!(
            x.depth_map.depth_data(),
            y.depth_map.depth_data(),
            "{label} keyframe {i}: depth map"
        );
    }
    assert_eq!(
        a.global_map.len(),
        b.global_map.len(),
        "{label}: global map"
    );
    assert_eq!(
        a.profile.events_processed, b.profile.events_processed,
        "{label}: events processed"
    );
}

/// Feeds a session in packets of `packet_size` events, polling after every
/// push, and finishes it.
fn run_session(
    session: EventorSession,
    seq: &SyntheticSequence,
    packet_size: usize,
) -> SessionOutput {
    let mut session = session;
    session
        .push_trajectory(&seq.trajectory)
        .expect("trajectory pushes");
    for packet in seq.events.packets(packet_size) {
        session.push_events(packet).expect("packet pushes");
        session.poll().expect("poll succeeds");
    }
    session.finish().expect("session finishes")
}

#[test]
fn software_session_is_bit_identical_to_batch_for_arbitrary_packets() {
    let seq = sequence();
    let config = config_for_sequence(&seq, 60);
    let batch = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
        .unwrap()
        .reconstruct(&seq.events, &seq.trajectory)
        .unwrap();
    for packet_size in [7usize, 333, 1024, 4096] {
        let session = EventorSession::builder(seq.camera, config.clone())
            .software(EventorOptions::accelerator())
            .build()
            .unwrap();
        let streamed = run_session(session, &seq, packet_size);
        assert_bit_identical(
            &batch,
            &streamed.output,
            &format!("software, packets of {packet_size}"),
        );
    }
}

#[test]
fn sharded_session_is_bit_identical_to_batch_sequential() {
    let seq = sequence();
    let config = config_for_sequence(&seq, 60);
    let batch = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
        .unwrap()
        .reconstruct(&seq.events, &seq.trajectory)
        .unwrap();
    for shards in [1usize, 2, 4, 8] {
        let session = EventorSession::builder(seq.camera, config.clone())
            .sharded(
                EventorOptions::accelerator(),
                ParallelConfig::with_shards(shards),
            )
            .build()
            .unwrap();
        let streamed = run_session(session, &seq, 777);
        assert_bit_identical(&batch, &streamed.output, &format!("sharded x{shards}"));
    }
}

#[test]
fn sharded_spill_on_a_giant_keyframe_stays_bit_identical() {
    // A key-frame distance that never triggers a switch: the whole stream is
    // one key frame, larger than ENGINE_SPILL_EVENTS, so the sharded backend
    // must spill buffered votes into its tiles mid-key-frame — and stay
    // bit-identical to the sequential software path.
    let seq = sequence();
    assert!(seq.events.len() > eventor::core::ENGINE_SPILL_EVENTS);
    let config = config_for_sequence(&seq, 60).with_keyframe_distance(1e9);
    let batch = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
        .unwrap()
        .reconstruct(&seq.events, &seq.trajectory)
        .unwrap();
    assert_eq!(batch.keyframes.len(), 1);
    let session = EventorSession::builder(seq.camera, config)
        .sharded(
            EventorOptions::accelerator(),
            ParallelConfig::with_shards(4),
        )
        .build()
        .unwrap();
    let streamed = run_session(session, &seq, 1024);
    assert_bit_identical(&batch, &streamed.output, "sharded spill");
}

#[test]
fn cosim_session_is_bit_identical_to_batch_software() {
    let seq = sequence();
    let config = config_for_sequence(&seq, 60);
    let batch = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
        .unwrap()
        .reconstruct(&seq.events, &seq.trajectory)
        .unwrap();
    let session = EventorSession::builder(seq.camera, config.clone())
        .cosim(AcceleratorConfig::default())
        .build()
        .unwrap();
    let streamed = run_session(session, &seq, 500);
    assert_bit_identical(&batch, &streamed.output, "cosim session");
    let report = streamed.cosim_report.expect("cosim backend reports");
    assert_eq!(report.events_in, batch.profile.events_processed);
    assert!(report.accelerator_seconds > 0.0);

    // And the streaming cosim agrees with the batch cosim façade.
    let mut batch_cosim =
        CosimPipeline::new(seq.camera, config, AcceleratorConfig::default()).unwrap();
    let hw = batch_cosim
        .reconstruct(&seq.events, &seq.trajectory)
        .unwrap();
    assert_bit_identical(&hw, &streamed.output, "cosim batch vs stream");
}

#[test]
fn interleaved_pose_and_event_pushes_match_batch() {
    // Feed the session the way an online producer would: a few poses, a few
    // packets, repeat — with a tight in-flight bound forcing backpressure
    // handling along the way.
    let seq = sequence();
    let config = config_for_sequence(&seq, 60);
    let batch = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
        .unwrap()
        .reconstruct(&seq.events, &seq.trajectory)
        .unwrap();

    let mut session = EventorSession::builder(seq.camera, config)
        .software(EventorOptions::accelerator())
        .max_pending_events(4 * 1024)
        .build()
        .unwrap();
    let samples: Vec<_> = seq.trajectory.iter().collect();
    let packets: Vec<&[eventor::events::Event]> = seq.events.packets(1024).collect();
    let mut next_pose = 0usize;
    for (i, packet) in packets.iter().enumerate() {
        // Release poses gradually: keep the trajectory just ahead of the
        // packet's last event when possible.
        let t_needed = packet.last().unwrap().t;
        while next_pose < samples.len() && samples[next_pose].timestamp <= t_needed {
            session
                .push_pose(samples[next_pose].timestamp, samples[next_pose].pose)
                .unwrap();
            next_pose += 1;
        }
        // Short-write semantics: resume from the accepted offset whenever the
        // bounded buffer fills, releasing poses to unblock draining.
        let mut offset = 0usize;
        while offset < packet.len() {
            match session.push_events(&packet[offset..]) {
                Ok(accepted) if accepted > 0 => offset += accepted,
                Ok(_) | Err(EmvsError::Backpressure { .. }) => {
                    // Frames are waiting on poses: release one more sample.
                    assert!(next_pose < samples.len(), "packet {i}: deadlocked");
                    session
                        .push_pose(samples[next_pose].timestamp, samples[next_pose].pose)
                        .unwrap();
                    next_pose += 1;
                    session.poll().unwrap();
                }
                Err(e) => panic!("unexpected push error: {e}"),
            }
        }
        session.poll().unwrap();
    }
    while next_pose < samples.len() {
        session
            .push_pose(samples[next_pose].timestamp, samples[next_pose].pose)
            .unwrap();
        next_pose += 1;
    }
    let streamed = session.finish().unwrap();
    assert_bit_identical(&batch, &streamed.output, "interleaved feed");
}

#[test]
fn lifecycle_events_cover_every_keyframe_in_order() {
    let seq = sequence();
    // Force several key frames.
    let config = config_for_sequence(&seq, 50).with_keyframe_distance(0.05);
    let mut session = EventorSession::builder(seq.camera, config)
        .software(EventorOptions::accelerator())
        .fuse_into_map(GlobalMapConfig::default())
        .build()
        .unwrap();
    session.push_trajectory(&seq.trajectory).unwrap();
    let mut events = Vec::new();
    for packet in seq.events.packets(2048) {
        session.push_events(packet).unwrap();
        events.extend(session.poll().unwrap());
    }
    let finished = session.finish().unwrap();
    events.extend(finished.events.iter().cloned());
    let n = finished.output.keyframes.len();
    assert!(n >= 2, "expected several key frames, got {n}");
    // Four events per key frame (fusion enabled), in lifecycle order.
    assert_eq!(events.len(), 4 * n);
    for (i, chunk) in events.chunks(4).enumerate() {
        assert!(matches!(chunk[0], SessionEvent::SegmentRetired { index, .. } if index == i));
        assert!(matches!(chunk[1], SessionEvent::DepthMapReady { index, .. } if index == i));
        assert!(matches!(chunk[2], SessionEvent::KeyframeReady { index, .. } if index == i));
        assert!(matches!(chunk[3], SessionEvent::MapFused { index, .. } if index == i));
    }
    let map = finished.fused_map.expect("fusion enabled");
    assert_eq!(map.num_keyframes(), n);
}

#[test]
fn session_error_contract() {
    let seq = sequence();
    let config = config_for_sequence(&seq, 40);
    // Finishing an empty session reports NoEvents, like the batch paths.
    let session = EventorSession::builder(seq.camera, config.clone())
        .build()
        .unwrap();
    assert!(matches!(session.finish(), Err(EmvsError::NoEvents)));
    // The builder rejects invalid configurations through the shared
    // validation path.
    assert!(matches!(
        EventorSession::builder(
            seq.camera,
            EmvsConfig {
                num_depth_planes: 1,
                ..EmvsConfig::default()
            }
        )
        .build(),
        Err(EmvsError::InvalidConfig { .. })
    ));
}
