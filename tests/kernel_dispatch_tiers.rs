//! Golden-digest sweep with every kernel dispatch tier forced in turn
//! (`docs/ARCHITECTURE.md` §batched-kernel): the SIMD/SWAR/scalar tiers of
//! `eventor_fixed::kernel::batch` must be bit-identical not just at the
//! kernel faces (the proptests in `crates/fixed`) but through the complete
//! reconstruction pipeline — software and sharded backends, projection,
//! cache-blocked voting, detection, digesting.
//!
//! CI additionally runs the whole test suite under
//! `EVENTOR_KERNEL_DISPATCH=scalar` and `=swar` (the `kernel-dispatch`
//! matrix), which exercises the env-resolution path this test bypasses via
//! [`batch::force`].

use eventor::fixed::kernel::batch::{self, Dispatch};
use eventor::scenarios::{digest_world, find, golden_digest, BackendKind, Scenario, ScenarioWorld};

fn worlds() -> Vec<ScenarioWorld> {
    ["orbit_burst", "shake_closeup"]
        .iter()
        .map(|name| {
            let s = find(name).expect("corpus scenario exists");
            s.build(s.default_seed()).expect("corpus worlds build")
        })
        .collect()
}

/// One test owns the process-global tier override for the whole binary:
/// integration-test binaries run `#[test]`s concurrently, so splitting the
/// sweep across tests would race on [`batch::force`].
#[test]
fn every_supported_tier_reconstructs_the_committed_goldens() {
    let worlds = worlds();
    for tier in Dispatch::ALL.into_iter().filter(|t| t.is_supported()) {
        batch::force(Some(tier)).expect("supported tier pins");
        assert_eq!(batch::active(), tier, "forced tier is not active");
        for world in &worlds {
            for backend in [BackendKind::Software, BackendKind::Sharded] {
                let digest = digest_world(world, backend).expect("run succeeds");
                assert_eq!(
                    Some(digest),
                    golden_digest(&world.name),
                    "{} on {backend} with the '{}' tier diverged from the golden digest",
                    world.name,
                    tier.name(),
                );
            }
        }
    }
    batch::force(None).expect("override clears");
}
