//! Failure-injection and robustness tests: degenerate trajectories, corrupted
//! event streams, malformed accelerator jobs and saturating workloads must
//! degrade gracefully (bounded error, explicit rejection) rather than panic
//! or silently corrupt the reconstruction.

use eventor::core::{
    config_for_sequence, CosimPipeline, EventorOptions, EventorPipeline, EventorSession,
};
use eventor::emvs::{EmvsConfig, EmvsError, EmvsMapper, SessionEvent};
use eventor::events::{
    DatasetConfig, Event, EventStream, NoiseConfig, NoiseInjector, Polarity, SequenceKind,
    SyntheticSequence,
};
use eventor::geom::{CameraModel, Pose, Trajectory, Vec3};
use eventor::hwsim::{AcceleratorConfig, DsiDram, EventorDevice, FrameJob, FrameKind};
use eventor::scenarios::{digest_output, find, Scenario, ScenarioWorld};
use eventor::serve::{ServeConfig, ServeEngine, ServeError};

fn sequence(kind: SequenceKind) -> SyntheticSequence {
    SyntheticSequence::generate(kind, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate")
}

#[test]
fn stationary_trajectory_reconstructs_without_panicking() {
    // With no baseline the depth is unobservable; the pipeline must still run
    // to completion and report a (possibly sparse, inaccurate) key frame
    // rather than crash on the degenerate geometry.
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 30);
    let stationary = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 10.0, 8);
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let output = pipeline
        .reconstruct(&seq.events, &stationary)
        .expect("must not fail");
    assert_eq!(
        output.keyframes.len(),
        1,
        "no key-frame switch without motion"
    );
}

#[test]
fn events_outside_the_trajectory_time_span_are_an_error_not_a_panic() {
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 30);
    // A trajectory that ends long before the events do.
    let short = Trajectory::linear(
        Pose::identity(),
        Pose::from_translation(Vec3::new(0.1, 0.0, 0.0)),
        -10.0,
        -9.0,
        4,
    );
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let result = pipeline.reconstruct(&seq.events, &short);
    assert!(
        result.is_err(),
        "out-of-span pose lookups must surface as an error"
    );
}

#[test]
fn empty_and_single_event_streams_are_handled() {
    let cam = CameraModel::davis240_ideal();
    let config = EmvsConfig::default();
    let trajectory = Trajectory::linear(
        Pose::identity(),
        Pose::from_translation(Vec3::new(0.1, 0.0, 0.0)),
        0.0,
        1.0,
        4,
    );
    let mapper = EmvsMapper::new(cam, config.clone()).expect("config");
    assert!(matches!(
        mapper.reconstruct(&EventStream::new(), &trajectory),
        Err(EmvsError::NoEvents)
    ));

    // A single event still produces a (nearly empty) reconstruction.
    let one: EventStream = std::iter::once(Event::new(0.5, 120, 90, Polarity::Positive)).collect();
    let output = mapper
        .reconstruct(&one, &trajectory)
        .expect("single event is fine");
    assert_eq!(output.keyframes.len(), 1);
    assert_eq!(output.profile.events_processed, 1);
}

#[test]
fn heavy_sensor_noise_degrades_accuracy_gracefully() {
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 50);
    let width = seq.camera.intrinsics.width as u16;
    let height = seq.camera.intrinsics.height as u16;

    let clean_pipeline =
        EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
            .expect("config");
    let clean = clean_pipeline
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("clean run");
    let clean_primary = clean.primary().expect("keyframe");
    let gt = seq.ground_truth_depth_at(&clean_primary.reference_pose);
    let clean_abs_rel = clean_primary
        .depth_map
        .compare_to_ground_truth(gt.as_slice())
        .expect("metrics")
        .abs_rel;

    for noise in [NoiseConfig::moderate(), NoiseConfig::severe()] {
        let injector = NoiseInjector::new(width, height, noise);
        let (noisy_events, report) = injector.corrupt(&seq.events);
        assert!(report.total_events() > 0);
        let pipeline =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .expect("config");
        let noisy = pipeline
            .reconstruct(&noisy_events, &seq.trajectory)
            .expect("noisy run");
        let primary = noisy.primary().expect("keyframe under noise");
        let gt = seq.ground_truth_depth_at(&primary.reference_pose);
        let metrics = primary
            .depth_map
            .compare_to_ground_truth(gt.as_slice())
            .expect("metrics");
        // Noise may cost accuracy but must stay bounded: the ray-density
        // voting washes uncorrelated noise out of the local maxima.
        assert!(
            metrics.abs_rel < clean_abs_rel + 0.25,
            "noise {:?}: AbsRel {:.3} vs clean {:.3}",
            noise,
            metrics.abs_rel,
            clean_abs_rel
        );
    }
}

#[test]
fn malformed_accelerator_jobs_are_rejected_with_error_status() {
    let mut device = EventorDevice::new(AcceleratorConfig::default().with_depth_planes(10));
    // Plane-count mismatch.
    let bad = FrameJob {
        event_words: vec![0; 16],
        homography_words: [0; 9],
        phi_words: vec![[0, 0, 0]; 3],
        kind: FrameKind::Normal,
    };
    assert!(device.run_frame(bad).is_none());
    // Empty frame.
    let empty = FrameJob {
        event_words: Vec::new(),
        homography_words: [0; 9],
        phi_words: vec![[0, 0, 0]; 10],
        kind: FrameKind::Normal,
    };
    assert!(device.run_frame(empty).is_none());
    assert_eq!(device.stats().frames, 0);
}

#[test]
fn dsi_scores_saturate_instead_of_wrapping_under_extreme_load() {
    // Pathological workload: every vote lands on the same voxel, more times
    // than a 16-bit score can hold.
    let mut dram = DsiDram::new(8, 8, 2);
    let addr = dram.linear_address(3, 3, 1).expect("in range");
    for _ in 0..(u16::MAX as u32 + 500) {
        dram.vote(addr);
    }
    assert_eq!(dram.score(3, 3, 1), Some(u16::MAX));
    assert_eq!(dram.stats().saturated_votes, 500);
    assert_eq!(dram.stats().address_faults, 0);
}

/// Builds a fresh software session for `world` (the serve tier accepts any
/// backend; software keeps the test fast).
fn software_session(world: &ScenarioWorld) -> EventorSession {
    EventorSession::builder(world.camera, world.config.clone())
        .software(EventorOptions::accelerator())
        .build()
        .expect("session config is valid")
}

/// Serve-path fault recovery: a session driven into hard backpressure
/// mid-keyframe recovers via `discard_pending`, and the recovered session's
/// output is **bit-identical** to a clean standalone run of the surviving
/// stream (processed prefix + post-recovery suffix). Dropping in-flight
/// input must lose exactly the dropped events — no partial frame, no stale
/// vote, no shifted window may leak across the fault.
#[test]
fn serve_backpressure_recovery_matches_clean_run_of_surviving_stream() {
    let scenario = find("shake_closeup").expect("corpus scenario");
    let world = scenario.build(scenario.default_seed()).expect("world");
    let events = world.events.as_slice();

    // A deliberately tiny queue so the flood below hits zero-accept
    // backpressure long before the stream runs out.
    let mut engine = ServeEngine::new(
        ServeConfig::new()
            .with_workers(1)
            .with_queue_capacity(512)
            .with_quantum_events(256),
    );
    let id = engine.admit(software_session(&world));
    engine
        .enqueue_trajectory(id, &world.trajectory)
        .expect("trajectory enqueues");

    // Phase 1: well-behaved feeding (pump per enqueue) until the session has
    // produced at least one depth map — the fault must land mid-session, not
    // on an idle one.
    let mut cursor = 0usize;
    let mut depth_map_seen = false;
    while !depth_map_seen && cursor < events.len() {
        let end = (cursor + 256).min(events.len());
        match engine.enqueue_events(id, &events[cursor..end]) {
            Ok(accepted) => cursor += accepted,
            Err(ServeError::Session {
                source: EmvsError::Backpressure { .. },
                ..
            }) => {}
            Err(e) => panic!("unexpected serve error while feeding: {e}"),
        }
        engine.pump();
        for event in engine.poll_session(id).expect("session is live") {
            if matches!(event, SessionEvent::DepthMapReady { .. }) {
                depth_map_seen = true;
            }
        }
    }
    assert!(depth_map_seen, "stream too short to produce a depth map");
    assert!(cursor < events.len(), "stream exhausted before the fault");

    // Phase 2: the consumer stalls (no pumps); flood until the bounded queue
    // rejects input outright.
    let mut backpressured = false;
    while cursor < events.len() {
        let end = (cursor + 512).min(events.len());
        match engine.enqueue_events(id, &events[cursor..end]) {
            Ok(accepted) => cursor += accepted,
            Err(ServeError::Session {
                source: EmvsError::Backpressure { .. },
                ..
            }) => {
                backpressured = true;
                break;
            }
            Err(e) => panic!("unexpected serve error while flooding: {e}"),
        }
    }
    assert!(backpressured, "bounded queue never pushed back");

    // Recovery: drop everything in flight and resume with the remainder.
    let dropped = engine
        .discard_pending(id)
        .expect("discard clears the fault");
    assert!(dropped > 0, "backpressure with an empty queue is a bug");
    assert!(dropped <= cursor, "cannot drop more than was accepted");
    let processed = cursor - dropped;
    let resume_from = cursor;
    while cursor < events.len() {
        let end = (cursor + 256).min(events.len());
        match engine.enqueue_events(id, &events[cursor..end]) {
            Ok(accepted) => cursor += accepted,
            Err(ServeError::Session {
                source: EmvsError::Backpressure { .. },
                ..
            }) => {
                engine.pump();
            }
            Err(e) => panic!("unexpected serve error after recovery: {e}"),
        }
    }
    let recovered = engine
        .finish_session(id)
        .expect("recovered session finishes");

    // The surviving stream: what the session actually ingested before the
    // fault, plus everything fed after recovery.
    let surviving: EventStream = events[..processed]
        .iter()
        .chain(events[resume_from..].iter())
        .copied()
        .collect();
    assert_eq!(surviving.len(), events.len() - dropped);

    let mut clean = software_session(&world);
    clean
        .push_trajectory(&world.trajectory)
        .expect("trajectory pushes");
    let stream = surviving.as_slice();
    let mut offset = 0usize;
    while offset < stream.len() {
        offset += clean.push_events(&stream[offset..]).expect("clean push");
        clean.poll().expect("clean poll");
    }
    let clean_output = clean.finish().expect("clean run finishes");

    assert_eq!(
        digest_output(&recovered),
        digest_output(&clean_output),
        "recovered session must be bit-identical to a clean run of the surviving stream"
    );
}

#[test]
fn cosim_survives_a_noisy_stream_and_stays_consistent_with_software() {
    // Even under sensor noise the device and the software pipeline must stay
    // bit-identical — noise changes the input, not the arithmetic.
    let seq = sequence(SequenceKind::SliderFar);
    let config = config_for_sequence(&seq, 40);
    let width = seq.camera.intrinsics.width as u16;
    let height = seq.camera.intrinsics.height as u16;
    let (noisy, _) =
        NoiseInjector::new(width, height, NoiseConfig::moderate()).corrupt(&seq.events);

    let software = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
        .expect("config");
    let mut cosim =
        CosimPipeline::new(seq.camera, config, AcceleratorConfig::default()).expect("config");
    let sw = software
        .reconstruct(&noisy, &seq.trajectory)
        .expect("software");
    let hw = cosim.reconstruct(&noisy, &seq.trajectory).expect("cosim");
    assert_eq!(sw.keyframes.len(), hw.keyframes.len());
    for (s, h) in sw.keyframes.iter().zip(&hw.keyframes) {
        assert_eq!(s.votes_cast, h.votes_cast);
        assert_eq!(s.depth_map.depth_data(), h.depth_map.depth_data());
    }
}

// ---------------------------------------------------------------------------
// Disorderly wire clients (`eventor-net`, docs/WIRE.md): a client that
// vanishes, stalls mid-frame or violates admission must never wedge the
// server or perturb other connections' bits.
// ---------------------------------------------------------------------------

use eventor::net::{
    code, read_frame, spawn_loopback, write_frame, AdmissionConfig, IdleWait, KeepaliveConfig,
    ManifestSource, NetConfig, SessionManifest, WireClient, WireError, WireFrame,
    DEFAULT_MAX_PAYLOAD,
};
use eventor::scenarios::{golden_digest, BackendKind};
use eventor::serve::LoadShape;
use std::time::Duration;

fn corpus_world(name: &str) -> ScenarioWorld {
    let s = find(name).expect("corpus scenario exists");
    s.build(s.default_seed()).expect("corpus world builds")
}

fn scenario_manifest(world: &ScenarioWorld, backend: BackendKind) -> SessionManifest {
    SessionManifest {
        backend,
        source: ManifestSource::Scenario {
            name: world.name.clone(),
            seed: world.seed,
        },
    }
}

#[test]
fn mid_stream_disconnect_aborts_the_session_and_leaves_others_golden() {
    let server = spawn_loopback(NetConfig::new()).expect("server spawns");
    let world = corpus_world("shake_closeup");

    // Client A: admit, stream a fragment, then vanish without Bye (the drop
    // closes the socket with the session unfinished).
    {
        let mut rogue = WireClient::connect(server.addr()).expect("rogue connects");
        let id = rogue
            .admit(&scenario_manifest(&world, BackendKind::Software))
            .expect("rogue admission");
        rogue
            .send_trajectory(id, &world.trajectory)
            .expect("rogue poses");
        rogue
            .send_events(id, &world.events.as_slice()[..512])
            .expect("rogue events");
    }

    // Client B: a full serve of the same world must still be bit-golden,
    // and the abort of A's session must surface in the metrics document.
    let mut client = WireClient::connect(server.addr()).expect("client connects");
    let id = client
        .admit(&scenario_manifest(&world, BackendKind::Software))
        .expect("admission");
    let report = client
        .drive(
            id,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::Steady { chunk: 2048 },
        )
        .expect("drive");
    assert_eq!(
        report.digest,
        golden_digest(&world.name).expect("golden"),
        "a disorderly neighbour must not perturb another connection's bits"
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let json = client.metrics().expect("metrics");
        if json.contains("\"status\": \"failed\"") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the aborted session never surfaced as failed in metrics: {json}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn half_written_frame_then_hang_times_out_with_a_typed_error() {
    // A short server-side read timeout turns a mid-frame stall into a typed
    // protocol failure instead of a wedged connection thread.
    let server = spawn_loopback(NetConfig::new().with_read_timeout(Duration::from_millis(200)))
        .expect("server spawns");

    let mut stalled = std::net::TcpStream::connect(server.addr()).expect("connects");
    write_frame(&mut stalled, 0, &WireFrame::Hello).expect("hello");
    let (_, reply) = read_frame(
        &mut stalled,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    )
    .expect("hello reply");
    assert!(matches!(reply, WireFrame::HelloOk { .. }));

    // Ten bytes of a frame header, then silence.
    use std::io::Write;
    let frame = eventor::net::encode_frame(0, &WireFrame::Poll);
    stalled.write_all(&frame[..10]).expect("half header");
    stalled.flush().expect("flush");

    // The server must give up on its own (~200 ms), send the typed Error
    // frame and close; it must NOT wait for the client to act.
    let (_, reply) = read_frame(
        &mut stalled,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    )
    .expect("typed goodbye before our own timeout");
    match reply {
        WireFrame::Error { code: c, reason } => {
            assert_eq!(c, code::PROTOCOL);
            assert!(reason.contains("mid-frame"), "reason: {reason}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }

    // The server is still healthy for a well-behaved session afterwards.
    let world = corpus_world("orbit_burst");
    let mut client = WireClient::connect(server.addr()).expect("client connects");
    let id = client
        .admit(&scenario_manifest(&world, BackendKind::Sharded))
        .expect("admission");
    let report = client
        .drive(
            id,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::Bursty {
                burst: 1536,
                idle_pumps: 2,
            },
        )
        .expect("drive");
    assert_eq!(report.digest, golden_digest(&world.name).expect("golden"));
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn duplicate_admission_is_rejected_and_the_connection_stays_usable() {
    let server = spawn_loopback(NetConfig::new()).expect("server spawns");
    let world = corpus_world("orbit_burst");

    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connects");
    let mut ask = |session: u64, frame: &WireFrame| -> WireFrame {
        write_frame(&mut stream, session, frame).expect("request");
        let (sid, reply) = read_frame(
            &mut stream,
            DEFAULT_MAX_PAYLOAD,
            Duration::from_secs(10),
            IdleWait::Timeout(Duration::from_secs(10)),
            &|| false,
        )
        .expect("reply");
        assert_eq!(sid, session, "reply must echo the request's session id");
        reply
    };

    assert!(matches!(
        ask(0, &WireFrame::Hello),
        WireFrame::HelloOk { .. }
    ));
    let admit = WireFrame::Admit {
        manifest: scenario_manifest(&world, BackendKind::Software),
    };
    assert!(matches!(ask(5, &admit), WireFrame::Admitted { .. }));

    // The same wire id again: a typed rejection, not a second session.
    match ask(5, &admit) {
        WireFrame::Rejected { code: c, .. } => assert_eq!(c, code::DUPLICATE_SESSION),
        other => panic!("expected Rejected, got {other:?}"),
    }

    // The connection and the original session both survive the rejection.
    assert!(matches!(
        ask(5, &WireFrame::Poll),
        WireFrame::PollDone { .. }
    ));
    assert!(matches!(ask(6, &admit), WireFrame::Admitted { .. }));
    assert!(matches!(ask(0, &WireFrame::Bye), WireFrame::ByeOk));
    server.shutdown();
}

#[test]
fn pongless_idle_peer_is_reaped_while_a_busy_credit_stalled_peer_survives() {
    // Aggressive keepalive so the drill runs in milliseconds: ping after
    // 100 ms idle, reap after 2 unanswered pings.
    let server = spawn_loopback(
        NetConfig::new()
            .with_keepalive(KeepaliveConfig::every(Duration::from_millis(100)).with_max_misses(2)),
    )
    .expect("server spawns");
    let world = corpus_world("shake_closeup");

    // Peer A: handshakes, admits a session, then goes silent and never
    // answers a ping — indistinguishable from a dead host.
    let mut idle = std::net::TcpStream::connect(server.addr()).expect("idle peer connects");
    write_frame(&mut idle, 0, &WireFrame::Hello).expect("hello");
    let read_one = |stream: &mut std::net::TcpStream| {
        read_frame(
            stream,
            DEFAULT_MAX_PAYLOAD,
            Duration::from_secs(10),
            IdleWait::Timeout(Duration::from_secs(10)),
            &|| false,
        )
    };
    assert!(matches!(
        read_one(&mut idle).expect("hello reply").1,
        WireFrame::HelloOk { .. }
    ));
    write_frame(
        &mut idle,
        1,
        &WireFrame::Admit {
            manifest: scenario_manifest(&world, BackendKind::Software),
        },
    )
    .expect("admit request");
    assert!(matches!(
        read_one(&mut idle).expect("admit reply").1,
        WireFrame::Admitted { .. }
    ));

    // Peer B: busy the whole time. Its ingest queue runs dry of credits and
    // it just polls — every poll is inbound traffic, so it is never pinged,
    // let alone reaped.
    let mut busy = WireClient::connect(server.addr()).expect("busy peer connects");
    let busy_id = busy
        .admit(&scenario_manifest(&world, BackendKind::Software))
        .expect("busy admission");
    busy.send_trajectory(busy_id, &world.trajectory)
        .expect("busy poses");
    let events = world.events.as_slice();
    let mut offset = 0usize;
    let horizon = std::time::Instant::now() + Duration::from_millis(800);
    while std::time::Instant::now() < horizon {
        let credits = busy.credits(busy_id) as usize;
        if credits > 0 && offset < events.len() {
            let take = 256.min(events.len() - offset).min(credits);
            offset += busy
                .send_events(busy_id, &events[offset..offset + take])
                .expect("busy events") as usize;
        }
        busy.poll(busy_id).expect("busy poll");
        std::thread::sleep(Duration::from_millis(40));
    }

    // Peer A meanwhile: pings arrived unanswered, then the typed reap
    // notice, then the close.
    let mut pings = 0usize;
    let (reap_code, reap_reason) = loop {
        match read_one(&mut idle).expect("keepalive traffic").1 {
            WireFrame::Ping { .. } => pings += 1,
            WireFrame::Error { code: c, reason } => break (c, reason),
            other => panic!("unexpected frame while idling: {other:?}"),
        }
    };
    assert!(pings >= 2, "reaped after only {pings} pings");
    assert_eq!(reap_code, code::PROTOCOL);
    assert!(
        reap_reason.contains("keepalive"),
        "reap reason must name the keepalive: {reap_reason}"
    );
    match read_one(&mut idle) {
        Err(WireError::ConnectionClosed) | Err(WireError::Io { .. }) => {}
        other => panic!("expected a close after the reap notice, got {other:?}"),
    }

    // The reaped peer's session was aborted (surfaces as failed), while the
    // busy peer's connection still answers a liveness probe and finishes to
    // the golden digest.
    busy.ping().expect("busy peer answers a client-side ping");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let json = busy.metrics().expect("metrics");
        if json.contains("\"status\": \"failed\"") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the reaped peer's session never surfaced as failed: {json}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    while offset < events.len() {
        let credits = busy.credits(busy_id) as usize;
        if credits == 0 {
            busy.poll(busy_id).expect("drain poll");
            continue;
        }
        let take = (events.len() - offset).min(credits);
        offset += busy
            .send_events(busy_id, &events[offset..offset + take])
            .expect("drain events") as usize;
    }
    let report = busy.finish(busy_id).expect("busy finish");
    assert_eq!(
        report.digest,
        golden_digest(&world.name).expect("golden"),
        "a reaped neighbour must not perturb the busy peer's bits"
    );
    busy.bye().expect("bye");
    server.shutdown();
}

#[test]
fn connections_past_the_limit_get_a_typed_overloaded_goodbye() {
    let server = spawn_loopback(NetConfig::new().with_max_conns(2)).expect("server spawns");

    let c1 = WireClient::connect(server.addr()).expect("first connects");
    let c2 = WireClient::connect(server.addr()).expect("second connects");

    // The third connection is refused with a typed OVERLOADED error and a
    // close — never a silent reset, never a hang.
    let mut third = std::net::TcpStream::connect(server.addr()).expect("third connects");
    let (_, reply) = read_frame(
        &mut third,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    )
    .expect("overload notice");
    match reply {
        WireFrame::Error { code: c, reason } => {
            assert_eq!(c, code::OVERLOADED);
            assert!(
                reason.contains("connection limit"),
                "reason must name the limit: {reason}"
            );
        }
        other => panic!("expected Error(OVERLOADED), got {other:?}"),
    }
    match read_frame(
        &mut third,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    ) {
        Err(WireError::ConnectionClosed) | Err(WireError::Io { .. }) => {}
        other => panic!("expected a close after the overload notice, got {other:?}"),
    }

    // Releasing a slot re-opens admission.
    c2.bye().expect("second bye");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut replacement = loop {
        match WireClient::connect(server.addr()) {
            Ok(client) => break client,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("the freed slot never re-opened: {e:?}"),
        }
    };
    replacement.ping().expect("replacement is live");
    replacement.bye().expect("replacement bye");
    c1.bye().expect("first bye");
    server.shutdown();
}

#[test]
fn admission_past_the_session_cap_is_rejected_typed_and_recovers() {
    let server = spawn_loopback(
        NetConfig::new().with_admission(AdmissionConfig::new().with_max_sessions(1)),
    )
    .expect("server spawns");
    let world = corpus_world("orbit_burst");

    let mut client = WireClient::connect(server.addr()).expect("client connects");
    let first = client
        .admit(&scenario_manifest(&world, BackendKind::Software))
        .expect("first admission fits the cap");

    // A second live session trips the gate: typed OVERLOADED rejection, and
    // the connection plus the first session stay fully usable.
    match client.admit(&scenario_manifest(&world, BackendKind::Software)) {
        Err(WireError::Rejected { code: c, reason }) => {
            assert_eq!(c, code::OVERLOADED);
            assert!(
                reason.contains("admission"),
                "reason must name admission control: {reason}"
            );
        }
        other => panic!("expected Rejected(OVERLOADED), got {other:?}"),
    }
    client.poll(first).expect("first session still serves");

    // Draining the live session re-opens admission — the gate follows the
    // engine's own metrics, not a sticky flag.
    let report = client
        .drive(
            first,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::Steady { chunk: 2048 },
        )
        .expect("first session finishes");
    assert_eq!(report.digest, golden_digest(&world.name).expect("golden"));
    let second = client
        .admit(&scenario_manifest(&world, BackendKind::Software))
        .expect("admission re-opens once load drains");
    let report = client
        .drive(
            second,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::Steady { chunk: 2048 },
        )
        .expect("second session finishes");
    assert_eq!(report.digest, golden_digest(&world.name).expect("golden"));
    client.bye().expect("bye");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Generative wire-protocol sequence fuzzing: **legal frames in illegal
// orders**. Each case drives a random walk of well-formed `eventor-wire/1`
// frames — admits, polls, event/pose batches, closes, discards, metrics —
// against a model of the server's session state machine. Every illegal
// ordering (poll before admit, duplicate admit, ingest after close, frames
// after Bye) must earn its **typed** reply or `WireError`, and the
// connection must stay usable afterwards; the server must never wedge,
// never kill the connection for a session-level violation, and never leak a
// reply class the protocol does not define for that state.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

/// Sends one frame and reads one reply, asserting the id echo.
fn transact(stream: &mut std::net::TcpStream, session: u64, frame: &WireFrame) -> WireFrame {
    write_frame(stream, session, frame).expect("request writes");
    let (sid, reply) = read_frame(
        stream,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    )
    .expect("reply reads");
    assert_eq!(sid, session, "reply must echo the request's session id");
    reply
}

/// Reads a Poll reply train (Lifecycle/DepthMap frames, then the PollDone
/// terminator), asserting no foreign frame class sneaks in.
fn drain_poll(stream: &mut std::net::TcpStream, session: u64) {
    write_frame(stream, session, &WireFrame::Poll).expect("poll writes");
    loop {
        let (sid, reply) = read_frame(
            stream,
            DEFAULT_MAX_PAYLOAD,
            Duration::from_secs(10),
            IdleWait::Timeout(Duration::from_secs(10)),
            &|| false,
        )
        .expect("poll reply reads");
        assert_eq!(sid, session);
        match reply {
            WireFrame::Lifecycle { .. } | WireFrame::DepthMap(_) => {}
            WireFrame::PollDone { .. } => return,
            other => panic!("illegal frame in a poll train: {other:?}"),
        }
    }
}

/// Per-wire-id model of what the server must believe about a session.
#[derive(Clone, Copy, Default)]
struct ModelSession {
    admitted: bool,
    closed: bool,
    /// Strictly increasing ingest clock (poses and events must stay
    /// time-ordered — the walk explores *order* violations, not data ones).
    ticks: u64,
}

/// Drives one randomized frame walk against a fresh loopback server and the
/// model, then proves the connection still works and that post-Bye frames
/// are typed connection errors.
fn run_frame_walk(ops: &[(usize, u64)]) {
    let server = spawn_loopback(NetConfig::new()).expect("server spawns");
    let world = corpus_world("shake_closeup");
    let admit = WireFrame::Admit {
        manifest: scenario_manifest(&world, BackendKind::Software),
    };
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connects");
    assert!(matches!(
        transact(&mut stream, 0, &WireFrame::Hello),
        WireFrame::HelloOk { .. }
    ));

    let mut model = [ModelSession::default(); 3];
    for &(op, wire_id) in ops {
        let m = &mut model[wire_id as usize - 1];
        match op {
            // Admit: fresh id → Admitted; duplicate admit → typed rejection
            // that leaves the original session intact.
            0 => match transact(&mut stream, wire_id, &admit) {
                WireFrame::Admitted { .. } if !m.admitted => m.admitted = true,
                WireFrame::Rejected { code: c, .. } if m.admitted => {
                    assert_eq!(c, code::DUPLICATE_SESSION)
                }
                other => panic!("admit (admitted={}): {other:?}", m.admitted),
            },
            // Poll: before admit it is a typed unknown-session error; after
            // admit (closed or not) it is a well-formed reply train.
            1 => {
                if m.admitted {
                    drain_poll(&mut stream, wire_id);
                } else {
                    match transact(&mut stream, wire_id, &WireFrame::Poll) {
                        WireFrame::Error { code: c, .. } => assert_eq!(c, code::UNKNOWN_SESSION),
                        other => panic!("poll before admit: {other:?}"),
                    }
                }
            }
            // Events: an ack with short-write semantics while live, a typed
            // error before admit and after close.
            2 => {
                let t0 = m.ticks as f64 * 1e-3;
                m.ticks += 4;
                let events: Vec<Event> = (0..4)
                    .map(|i| Event::new(t0 + i as f64 * 1e-4, 60, 60, Polarity::Positive))
                    .collect();
                match transact(&mut stream, wire_id, &WireFrame::Events { events }) {
                    WireFrame::EventsAck { .. } if m.admitted && !m.closed => {}
                    WireFrame::Error { code: c, .. } if !m.admitted => {
                        assert_eq!(c, code::UNKNOWN_SESSION)
                    }
                    WireFrame::Error { code: c, .. } if m.closed => {
                        assert_eq!(c, code::SESSION_CLOSED)
                    }
                    other => panic!(
                        "events (admitted={}, closed={}): {other:?}",
                        m.admitted, m.closed
                    ),
                }
            }
            // Poses: same contract as events.
            3 => {
                let t = m.ticks as f64 * 1e-3;
                m.ticks += 1;
                let samples = vec![(t, Pose::identity())];
                match transact(&mut stream, wire_id, &WireFrame::Poses { samples }) {
                    WireFrame::Ok if m.admitted && !m.closed => {}
                    WireFrame::Error { code: c, .. } if !m.admitted => {
                        assert_eq!(c, code::UNKNOWN_SESSION)
                    }
                    WireFrame::Error { code: c, .. } if m.closed => {
                        assert_eq!(c, code::SESSION_CLOSED)
                    }
                    other => panic!(
                        "poses (admitted={}, closed={}): {other:?}",
                        m.admitted, m.closed
                    ),
                }
            }
            // Close: idempotent once admitted, typed error before.
            4 => match transact(&mut stream, wire_id, &WireFrame::Close) {
                WireFrame::Ok if m.admitted => m.closed = true,
                WireFrame::Error { code: c, .. } if !m.admitted => {
                    assert_eq!(c, code::UNKNOWN_SESSION)
                }
                other => panic!("close (admitted={}): {other:?}", m.admitted),
            },
            // Discard: clears queued input once admitted, typed error before.
            5 => match transact(&mut stream, wire_id, &WireFrame::Discard) {
                WireFrame::Ok if m.admitted => {}
                WireFrame::Error { code: c, .. } if !m.admitted => {
                    assert_eq!(c, code::UNKNOWN_SESSION)
                }
                other => panic!("discard (admitted={}): {other:?}", m.admitted),
            },
            // Metrics: stateless, always answered.
            _ => match transact(&mut stream, wire_id, &WireFrame::Metrics) {
                WireFrame::MetricsReply { json } => {
                    assert!(json.contains("eventor-metrics/1"), "metrics json: {json}")
                }
                other => panic!("metrics: {other:?}"),
            },
        }
    }

    // Whatever the walk did, the connection must still hold a conversation.
    assert!(matches!(
        transact(&mut stream, 0, &WireFrame::Metrics),
        WireFrame::MetricsReply { .. }
    ));
    assert!(matches!(
        transact(&mut stream, 0, &WireFrame::Bye),
        WireFrame::ByeOk
    ));

    // Events after Bye: the server has hung up; the client sees a typed
    // connection-level WireError, never a hang or a garbage frame.
    let after_bye = WireFrame::Events {
        events: vec![Event::new(1e6, 1, 1, Polarity::Positive)],
    };
    let _ = write_frame(&mut stream, 1, &after_bye);
    let outcome = read_frame(
        &mut stream,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    );
    match outcome {
        Err(WireError::ConnectionClosed | WireError::Io { .. }) => {}
        other => panic!("frame after Bye must be a typed connection error: {other:?}"),
    }
    server.shutdown();
}

/// The three named illegal orders of the issue, pinned deterministically:
/// poll-before-admit, duplicate admit (with the original session
/// surviving), and events-after-bye.
#[test]
fn named_illegal_frame_orders_are_typed_and_survivable() {
    // ops are (op, wire_id): 1=poll, 0=admit, 2=events, 4=close.
    run_frame_walk(&[
        (1, 1), // poll before admit → UNKNOWN_SESSION
        (2, 2), // events before admit → UNKNOWN_SESSION
        (0, 1), // admit
        (0, 1), // duplicate admit → DUPLICATE_SESSION
        (2, 1), // the original session still accepts events
        (4, 1), // close
        (2, 1), // events after close → SESSION_CLOSED
        (1, 1), // poll still answered after close
    ]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random walks over the full frame alphabet (3 wire ids × 7 ops, 4–20
    /// steps): every ordering the generator produces must match the model.
    #[test]
    fn random_frame_walks_match_the_protocol_state_machine(
        ops in prop::collection::vec((0usize..7, 1u64..4), 4..20),
    ) {
        run_frame_walk(&ops);
    }
}
