//! Failure-injection and robustness tests: degenerate trajectories, corrupted
//! event streams, malformed accelerator jobs and saturating workloads must
//! degrade gracefully (bounded error, explicit rejection) rather than panic
//! or silently corrupt the reconstruction.

use eventor::core::{config_for_sequence, CosimPipeline, EventorOptions, EventorPipeline};
use eventor::emvs::{EmvsConfig, EmvsError, EmvsMapper};
use eventor::events::{
    DatasetConfig, Event, EventStream, NoiseConfig, NoiseInjector, Polarity, SequenceKind,
    SyntheticSequence,
};
use eventor::geom::{CameraModel, Pose, Trajectory, Vec3};
use eventor::hwsim::{AcceleratorConfig, DsiDram, EventorDevice, FrameJob, FrameKind};

fn sequence(kind: SequenceKind) -> SyntheticSequence {
    SyntheticSequence::generate(kind, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate")
}

#[test]
fn stationary_trajectory_reconstructs_without_panicking() {
    // With no baseline the depth is unobservable; the pipeline must still run
    // to completion and report a (possibly sparse, inaccurate) key frame
    // rather than crash on the degenerate geometry.
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 30);
    let stationary = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 10.0, 8);
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let output = pipeline
        .reconstruct(&seq.events, &stationary)
        .expect("must not fail");
    assert_eq!(
        output.keyframes.len(),
        1,
        "no key-frame switch without motion"
    );
}

#[test]
fn events_outside_the_trajectory_time_span_are_an_error_not_a_panic() {
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 30);
    // A trajectory that ends long before the events do.
    let short = Trajectory::linear(
        Pose::identity(),
        Pose::from_translation(Vec3::new(0.1, 0.0, 0.0)),
        -10.0,
        -9.0,
        4,
    );
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let result = pipeline.reconstruct(&seq.events, &short);
    assert!(
        result.is_err(),
        "out-of-span pose lookups must surface as an error"
    );
}

#[test]
fn empty_and_single_event_streams_are_handled() {
    let cam = CameraModel::davis240_ideal();
    let config = EmvsConfig::default();
    let trajectory = Trajectory::linear(
        Pose::identity(),
        Pose::from_translation(Vec3::new(0.1, 0.0, 0.0)),
        0.0,
        1.0,
        4,
    );
    let mapper = EmvsMapper::new(cam, config.clone()).expect("config");
    assert!(matches!(
        mapper.reconstruct(&EventStream::new(), &trajectory),
        Err(EmvsError::NoEvents)
    ));

    // A single event still produces a (nearly empty) reconstruction.
    let one: EventStream = std::iter::once(Event::new(0.5, 120, 90, Polarity::Positive)).collect();
    let output = mapper
        .reconstruct(&one, &trajectory)
        .expect("single event is fine");
    assert_eq!(output.keyframes.len(), 1);
    assert_eq!(output.profile.events_processed, 1);
}

#[test]
fn heavy_sensor_noise_degrades_accuracy_gracefully() {
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 50);
    let width = seq.camera.intrinsics.width as u16;
    let height = seq.camera.intrinsics.height as u16;

    let clean_pipeline =
        EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
            .expect("config");
    let clean = clean_pipeline
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("clean run");
    let clean_primary = clean.primary().expect("keyframe");
    let gt = seq.ground_truth_depth_at(&clean_primary.reference_pose);
    let clean_abs_rel = clean_primary
        .depth_map
        .compare_to_ground_truth(gt.as_slice())
        .expect("metrics")
        .abs_rel;

    for noise in [NoiseConfig::moderate(), NoiseConfig::severe()] {
        let injector = NoiseInjector::new(width, height, noise);
        let (noisy_events, report) = injector.corrupt(&seq.events);
        assert!(report.total_events() > 0);
        let pipeline =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .expect("config");
        let noisy = pipeline
            .reconstruct(&noisy_events, &seq.trajectory)
            .expect("noisy run");
        let primary = noisy.primary().expect("keyframe under noise");
        let gt = seq.ground_truth_depth_at(&primary.reference_pose);
        let metrics = primary
            .depth_map
            .compare_to_ground_truth(gt.as_slice())
            .expect("metrics");
        // Noise may cost accuracy but must stay bounded: the ray-density
        // voting washes uncorrelated noise out of the local maxima.
        assert!(
            metrics.abs_rel < clean_abs_rel + 0.25,
            "noise {:?}: AbsRel {:.3} vs clean {:.3}",
            noise,
            metrics.abs_rel,
            clean_abs_rel
        );
    }
}

#[test]
fn malformed_accelerator_jobs_are_rejected_with_error_status() {
    let mut device = EventorDevice::new(AcceleratorConfig::default().with_depth_planes(10));
    // Plane-count mismatch.
    let bad = FrameJob {
        event_words: vec![0; 16],
        homography_words: [0; 9],
        phi_words: vec![[0, 0, 0]; 3],
        kind: FrameKind::Normal,
    };
    assert!(device.run_frame(bad).is_none());
    // Empty frame.
    let empty = FrameJob {
        event_words: Vec::new(),
        homography_words: [0; 9],
        phi_words: vec![[0, 0, 0]; 10],
        kind: FrameKind::Normal,
    };
    assert!(device.run_frame(empty).is_none());
    assert_eq!(device.stats().frames, 0);
}

#[test]
fn dsi_scores_saturate_instead_of_wrapping_under_extreme_load() {
    // Pathological workload: every vote lands on the same voxel, more times
    // than a 16-bit score can hold.
    let mut dram = DsiDram::new(8, 8, 2);
    let addr = dram.linear_address(3, 3, 1).expect("in range");
    for _ in 0..(u16::MAX as u32 + 500) {
        dram.vote(addr);
    }
    assert_eq!(dram.score(3, 3, 1), Some(u16::MAX));
    assert_eq!(dram.stats().saturated_votes, 500);
    assert_eq!(dram.stats().address_faults, 0);
}

#[test]
fn cosim_survives_a_noisy_stream_and_stays_consistent_with_software() {
    // Even under sensor noise the device and the software pipeline must stay
    // bit-identical — noise changes the input, not the arithmetic.
    let seq = sequence(SequenceKind::SliderFar);
    let config = config_for_sequence(&seq, 40);
    let width = seq.camera.intrinsics.width as u16;
    let height = seq.camera.intrinsics.height as u16;
    let (noisy, _) =
        NoiseInjector::new(width, height, NoiseConfig::moderate()).corrupt(&seq.events);

    let software = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
        .expect("config");
    let mut cosim =
        CosimPipeline::new(seq.camera, config, AcceleratorConfig::default()).expect("config");
    let sw = software
        .reconstruct(&noisy, &seq.trajectory)
        .expect("software");
    let hw = cosim.reconstruct(&noisy, &seq.trajectory).expect("cosim");
    assert_eq!(sw.keyframes.len(), hw.keyframes.len());
    for (s, h) in sw.keyframes.iter().zip(&hw.keyframes) {
        assert_eq!(s.votes_cast, h.votes_cast);
        assert_eq!(s.depth_map.depth_data(), h.depth_map.depth_data());
    }
}
