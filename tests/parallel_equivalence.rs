//! Parallel sharded voting engine versus the sequential golden path.
//!
//! The engine's contract (see `eventor_core::parallel`): for the quantized
//! nearest-voting accelerator datapath the parallel reconstruction is
//! **bit-identical** to the sequential one for every shard count; float
//! nearest voting is also bit-identical (whole `f32` increments are exact);
//! float bilinear voting is deterministic per shard count and numerically
//! within float-summation-order noise of the sequential result.

use eventor::core::{
    config_for_sequence, CosimPipeline, EventorOptions, EventorPipeline, ParallelConfig,
};
use eventor::emvs::{EmvsMapper, EmvsOutput, VotingMode};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::hwsim::AcceleratorConfig;

fn three_planes() -> SyntheticSequence {
    SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate")
}

fn assert_bit_identical(sequential: &EmvsOutput, parallel: &EmvsOutput, label: &str) {
    assert_eq!(
        sequential.keyframes.len(),
        parallel.keyframes.len(),
        "{label}: key-frame count diverged"
    );
    for (i, (s, p)) in sequential
        .keyframes
        .iter()
        .zip(&parallel.keyframes)
        .enumerate()
    {
        assert_eq!(
            s.votes_cast, p.votes_cast,
            "{label} keyframe {i}: DSI vote count diverged"
        );
        assert_eq!(
            s.frames_used, p.frames_used,
            "{label} keyframe {i}: frame count diverged"
        );
        assert_eq!(
            s.events_used, p.events_used,
            "{label} keyframe {i}: event count diverged"
        );
        assert_eq!(
            s.depth_map.depth_data(),
            p.depth_map.depth_data(),
            "{label} keyframe {i}: depth map diverged"
        );
        assert_eq!(
            s.depth_map.valid_count(),
            p.depth_map.valid_count(),
            "{label} keyframe {i}: valid pixel count diverged"
        );
    }
    assert_eq!(
        sequential.global_map.len(),
        parallel.global_map.len(),
        "{label}: global map size diverged"
    );
    assert_eq!(
        sequential.profile.events_processed,
        parallel.profile.events_processed
    );
    assert_eq!(
        sequential.profile.frames_processed,
        parallel.profile.frames_processed
    );
}

#[test]
fn accelerator_pipeline_is_bit_identical_across_shard_counts() {
    let seq = three_planes();
    let config = config_for_sequence(&seq, 50);
    let sequential =
        EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
            .expect("valid config")
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("sequential run");
    assert!(!sequential.keyframes.is_empty());

    for shards in [2, 4, 8] {
        let parallel =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .expect("valid config")
                .with_parallelism(ParallelConfig::with_shards(shards))
                .reconstruct(&seq.events, &seq.trajectory)
                .expect("parallel run");
        assert_bit_identical(&sequential, &parallel, &format!("accelerator x{shards}"));
    }

    // Single-shard batched mode (the engine without worker threads) is also
    // bit-identical — packets run in exact sequential order.
    let batched = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator())
        .expect("valid config")
        .with_parallelism(ParallelConfig::batched())
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("batched run");
    assert_bit_identical(&sequential, &batched, "accelerator batched x1");
}

#[test]
fn batched_single_shard_is_bit_identical_even_for_bilinear() {
    // With one shard the engine's packet order equals the sequential event
    // order, so even the float bilinear datapath (order-sensitive f32 sums)
    // is bit-identical.
    let seq = three_planes();
    let config = config_for_sequence(&seq, 50);
    for options in [EventorOptions::exact(), EventorOptions::quantized_only()] {
        let sequential = EventorPipeline::new(seq.camera, config.clone(), options)
            .expect("valid config")
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("sequential run");
        let batched = EventorPipeline::new(seq.camera, config.clone(), options)
            .expect("valid config")
            .with_parallelism(ParallelConfig::batched())
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("batched run");
        assert_bit_identical(&sequential, &batched, &format!("{options:?} batched"));
    }
}

#[test]
fn small_packets_do_not_change_the_result() {
    let seq = three_planes();
    let config = config_for_sequence(&seq, 40);
    let sequential =
        EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
            .expect("valid config")
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("sequential run");
    let parallel = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator())
        .expect("valid config")
        .with_parallelism(ParallelConfig::with_shards(3).with_packet_events(64))
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("parallel run");
    assert_bit_identical(&sequential, &parallel, "accelerator x3 packet=64");
}

#[test]
fn float_nearest_ablation_is_bit_identical() {
    let seq = three_planes();
    let config = config_for_sequence(&seq, 50);
    let sequential =
        EventorPipeline::new(seq.camera, config.clone(), EventorOptions::nearest_only())
            .expect("valid config")
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("sequential run");
    let parallel = EventorPipeline::new(seq.camera, config, EventorOptions::nearest_only())
        .expect("valid config")
        .with_parallelism(ParallelConfig::with_shards(4))
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("parallel run");
    assert_bit_identical(&sequential, &parallel, "nearest_only x4");
}

#[test]
fn bilinear_ablations_are_deterministic_and_vote_exact() {
    let seq = three_planes();
    let config = config_for_sequence(&seq, 50);
    for options in [EventorOptions::exact(), EventorOptions::quantized_only()] {
        let run = |parallel: ParallelConfig| {
            EventorPipeline::new(seq.camera, config.clone(), options)
                .expect("valid config")
                .with_parallelism(parallel)
                .reconstruct(&seq.events, &seq.trajectory)
                .expect("run succeeds")
        };
        let sequential = run(ParallelConfig::sequential());
        let parallel_a = run(ParallelConfig::with_shards(4));
        let parallel_b = run(ParallelConfig::with_shards(4));

        // Deterministic: two parallel runs with the same shard count are
        // bit-identical to each other.
        assert_bit_identical(&parallel_a, &parallel_b, "bilinear determinism");

        // Vote *counts* are exact regardless of float summation order.
        assert_eq!(sequential.keyframes.len(), parallel_a.keyframes.len());
        for (s, p) in sequential.keyframes.iter().zip(&parallel_a.keyframes) {
            assert_eq!(
                s.votes_cast, p.votes_cast,
                "{options:?}: vote count diverged"
            );
            // Depth maps agree up to float-summation-order noise: the f32
            // score sums differ by ULPs between schedules, and the parabolic
            // sub-plane refinement amplifies that to ~1e-7 relative depth.
            // Require millimetre-level agreement outside a small budget of
            // pixels where a detection threshold or argmax tie flips.
            let sd = s.depth_map.depth_data();
            let pd = p.depth_map.depth_data();
            let mut diverging = 0usize;
            for (a, b) in sd.iter().zip(pd) {
                if (a - b).abs() > 1e-3 {
                    diverging += 1;
                }
            }
            let budget = sd.len() / 50; // <2% of pixels may flip a threshold
            assert!(
                diverging <= budget,
                "{options:?}: {diverging} of {} depth pixels diverged",
                sd.len()
            );
        }
    }
}

#[test]
fn parallel_mapper_nearest_voting_matches_sequential() {
    let seq = three_planes();
    let config = config_for_sequence(&seq, 50).with_voting(VotingMode::Nearest);
    let sequential = EmvsMapper::new(seq.camera, config.clone())
        .expect("valid config")
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("sequential run");
    for shards in [2, 8] {
        let parallel = EmvsMapper::new(seq.camera, config.clone())
            .expect("valid config")
            .with_parallelism(ParallelConfig::with_shards(shards))
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("parallel run");
        assert_bit_identical(&sequential, &parallel, &format!("mapper nearest x{shards}"));
    }
}

#[test]
fn parallel_cosim_is_bit_identical_to_sequential_cosim() {
    let seq = three_planes();
    let config = config_for_sequence(&seq, 40);
    let mut sequential =
        CosimPipeline::new(seq.camera, config.clone(), AcceleratorConfig::default())
            .expect("valid config");
    let mut parallel = CosimPipeline::new(seq.camera, config, AcceleratorConfig::default())
        .expect("valid config")
        .with_parallelism(ParallelConfig::with_shards(4));

    let s = sequential
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("sequential cosim");
    let p = parallel
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("parallel cosim");
    assert_bit_identical(&s, &p, "cosim x4");
    assert_eq!(
        sequential.report().votes_applied,
        parallel.report().votes_applied
    );
    assert_eq!(
        sequential.report().events_dropped,
        parallel.report().events_dropped
    );
}
