//! Hardware/software co-verification: the functional device model in
//! `eventor-hwsim` and the quantized software pipeline in `eventor-core`
//! must produce identical results for identical inputs, across all four
//! evaluation sequences and for the architectural variants of the device.

use eventor::core::{config_for_sequence, CosimPipeline, EventorOptions, EventorPipeline};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::hwsim::{
    status, AcceleratorConfig, EventorDevice, FrameJob, FrameKind, HomographyRegisters, PhiEntry,
    Register,
};

fn sequence(kind: SequenceKind) -> SyntheticSequence {
    SyntheticSequence::generate(kind, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate")
}

#[test]
fn device_matches_software_pipeline_on_every_sequence() {
    for kind in SequenceKind::ALL {
        let seq = sequence(kind);
        let config = config_for_sequence(&seq, 50);
        let software =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .expect("valid config");
        let mut cosim = CosimPipeline::new(seq.camera, config, AcceleratorConfig::default())
            .expect("valid config");

        let sw = software
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("software run");
        let hw = cosim
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("cosim run");

        assert_eq!(
            sw.keyframes.len(),
            hw.keyframes.len(),
            "{kind:?}: key-frame count diverged"
        );
        for (i, (s, h)) in sw.keyframes.iter().zip(&hw.keyframes).enumerate() {
            assert_eq!(
                s.votes_cast, h.votes_cast,
                "{kind:?} keyframe {i}: vote count diverged"
            );
            assert_eq!(
                s.depth_map.depth_data(),
                h.depth_map.depth_data(),
                "{kind:?} keyframe {i}: depth maps diverged"
            );
        }
        assert_eq!(
            sw.global_map.len(),
            hw.global_map.len(),
            "{kind:?}: global map diverged"
        );
    }
}

#[test]
fn device_agreement_holds_for_different_pe_counts() {
    // The number of PE_Zi changes the schedule, not the arithmetic: the DSI
    // contents must be identical for 1, 2 and 4 PEs.
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 40);
    let mut reference: Option<Vec<u16>> = None;
    for n_pe in [1usize, 2, 4] {
        let accel = AcceleratorConfig::default().with_pe_zi(n_pe);
        let mut cosim =
            CosimPipeline::new(seq.camera, config.clone(), accel).expect("valid config");
        let _ = cosim
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("cosim run");
        let scores = cosim.device().dsi().scores().to_vec();
        match &reference {
            None => reference = Some(scores),
            Some(r) => assert_eq!(r, &scores, "{n_pe} PE_Zi produced a different DSI"),
        }
    }
}

#[test]
fn cosim_report_matches_paper_scale_accelerator_model() {
    // Full 1024-event frames over 100 planes: the modelled per-frame latency
    // read back through the register interface must match the Table 3 shape
    // (canonical time hidden for normal frames, ~24x less power handled in
    // the energy model).
    let config = AcceleratorConfig::default();
    let mut device = EventorDevice::new(config.clone());
    let identity =
        HomographyRegisters::from_matrix(&[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
    let phi = PhiEntry::from_f64(1.0, 0.0, 0.0).raw_words();
    let job = FrameJob {
        event_words: (0..1024)
            .map(|i| {
                eventor::fixed::PackedCoord::from_f64((i % 240) as f64, (i % 180) as f64).to_word()
            })
            .collect(),
        homography_words: identity.raw_words(),
        phi_words: vec![phi; 100],
        kind: FrameKind::Normal,
    };
    let exec = device.run_frame(job).expect("frame accepted");
    let us = exec.total_us(&config);
    assert!((us - 551.58).abs() < 30.0, "normal frame latency {us} us");
    assert!(device.registers().status_is(status::DONE));
    assert_eq!(
        device.registers().peek(Register::VotesApplied) as u64,
        exec.votes_applied
    );
    assert_eq!(exec.votes_applied, 1024 * 100);
}

#[test]
fn device_register_protocol_round_trips_through_the_driver() {
    let seq = sequence(SequenceKind::ThreePlanes);
    let config = config_for_sequence(&seq, 30);
    let mut cosim =
        CosimPipeline::new(seq.camera, config, AcceleratorConfig::default()).expect("valid config");
    let out = cosim
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("cosim run");
    let device = cosim.device();
    // After the run the device reports done, not busy, and its lifetime
    // counters agree with the reconstruction output.
    assert!(device.registers().status_is(status::DONE));
    assert!(!device.registers().status_is(status::BUSY));
    assert_eq!(device.stats().frames, out.profile.frames_processed);
    assert!(device.stats().votes_applied > 0);
    assert!(device.registers().host_accesses() > 0);
    // The AXI/DMA traffic of the run is visible in the report.
    let report = cosim.report();
    assert_eq!(report.frames, device.stats().frames);
    assert!(report.accelerator_seconds > 0.0);
}
