//! The committed fuzz-regression corpus and the minimizer's acceptance bar.
//!
//! * Every `.fuzzworld` spec under `tests/regressions/` — each one produced
//!   by the real `eventor-cli fuzz --minimize-dir` pipeline — must rebuild
//!   and reconstruct to its pinned golden digest, on the software **and**
//!   sharded backends.
//! * A violation planted through the test-only hook
//!   (`eventor_scenarios::invariants::plant`) must be caught by the fuzz
//!   campaign and auto-minimized to at most 25% of the original world along
//!   **every** generator axis, with the noise pipeline shrunk away entirely.

use eventor::scenarios::{
    digest_world, invariants::plant, run_fuzz, BackendKind, FuzzOptions, Invariant, WorldSpec,
};
use std::path::PathBuf;

fn regression_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn regression_specs() -> Vec<(PathBuf, WorldSpec)> {
    let mut specs: Vec<(PathBuf, WorldSpec)> = std::fs::read_dir(regression_dir())
        .expect("tests/regressions exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "fuzzworld"))
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("spec reads");
            let spec = WorldSpec::parse(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", p.display()));
            (p, spec)
        })
        .collect();
    specs.sort_by(|a, b| a.0.cmp(&b.0));
    specs
}

#[test]
fn committed_regressions_replay_to_their_goldens() {
    let specs = regression_specs();
    assert!(
        specs.len() >= 3,
        "regression corpus too small: {} specs",
        specs.len()
    );
    for (path, spec) in &specs {
        let want = spec
            .golden
            .unwrap_or_else(|| panic!("{} has no pinned golden", path.display()));
        let world = spec
            .build()
            .unwrap_or_else(|e| panic!("{} fails to build: {e}", path.display()));
        for backend in [BackendKind::Software, BackendKind::Sharded] {
            let digest = digest_world(&world, backend)
                .unwrap_or_else(|e| panic!("{} fails to run: {e}", path.display()));
            assert_eq!(
                digest,
                want,
                "{}: digest {digest:#018x} != golden {want:#018x} on {backend}",
                path.display()
            );
        }
    }
}

#[test]
fn regression_specs_round_trip_through_their_text_form() {
    for (path, spec) in regression_specs() {
        let reparsed = WorldSpec::parse(&spec.to_text()).expect("round trip parses");
        assert_eq!(spec, reparsed, "{} round trip", path.display());
    }
}

/// Clears the in-process plant even when the test panics, so a failure here
/// cannot poison other plant-sensitive tests added later.
struct PlantGuard;

impl Drop for PlantGuard {
    fn drop(&mut self) {
        plant::set_for_tests(None);
    }
}

#[test]
fn planted_violation_is_caught_and_minimized_to_a_quarter_per_axis() {
    // A plant the minimizer must shrink back down to: it fires on any world
    // at least this large along all three generator axes.
    let thresholds = plant::Plant {
        min_samples: 16,
        min_events: 2_400,
        min_planes: 8,
    };
    // Deterministically find a campaign seed whose first generated world is
    // at least 4x the thresholds on every axis, so the <=25% bar is
    // meaningful rather than vacuously met.
    let seed = (0u64..10_000)
        .find(|&s| {
            let spec = WorldSpec::generate(s, 0);
            spec.samples >= 4 * thresholds.min_samples
                && spec.event_cap >= 4 * thresholds.min_events
                && spec.planes >= 4 * thresholds.min_planes
                && !spec.noise.is_empty()
        })
        .expect("the generator covers this region of the spec space");
    let original = WorldSpec::generate(seed, 0);

    let _guard = PlantGuard;
    plant::set_for_tests(Some(thresholds));
    let report = run_fuzz(
        seed,
        1,
        &FuzzOptions {
            backends: vec![BackendKind::Software],
            invariants: vec![Invariant::PolarityRelabel],
            max_events: None,
            minimize: true,
        },
    )
    .expect("campaign runs");
    plant::set_for_tests(None);

    assert_eq!(report.violation_count(), 1, "the plant must fire");
    let world = &report.worlds[0];
    assert!(
        world.violations[0].detail.contains("planted violation"),
        "detail: {}",
        world.violations[0].detail
    );
    let min = world
        .minimized
        .as_ref()
        .expect("the violation must be auto-minimized");

    assert!(
        4 * min.samples <= original.samples,
        "samples {} -> {} is not <=25%",
        original.samples,
        min.samples
    );
    assert!(
        4 * min.event_cap <= original.event_cap,
        "event_cap {} -> {} is not <=25%",
        original.event_cap,
        min.event_cap
    );
    assert!(
        4 * min.planes <= original.planes,
        "planes {} -> {} is not <=25%",
        original.planes,
        min.planes
    );
    assert!(
        min.noise.is_empty(),
        "noise stages are irrelevant to the plant and must shrink away"
    );

    // The minimized spec must still reproduce the planted failure...
    let minimized_world = min.build().expect("minimized spec builds");
    plant::set_for_tests(Some(thresholds));
    let reproduces = eventor::scenarios::check_invariant(
        &minimized_world,
        Invariant::PolarityRelabel,
        BackendKind::Software,
    )
    .expect("check runs");
    plant::set_for_tests(None);
    assert!(reproduces.is_some(), "minimized spec no longer reproduces");

    // ...and carries a pinned golden so it can be committed as a named
    // regression scenario.
    assert!(min.golden.is_some(), "minimized spec has no replay pin");
}
