//! The corpus acceptance bar in tier-1 form (`docs/SCENARIOS.md`): corpus
//! scenarios reconstruct to their committed golden digests, the digest is
//! bit-identical across the software, sharded, co-simulated and served
//! execution paths, and an `eventor-evtr/1` record of a scenario replays to
//! the generator's digest exactly.
//!
//! The full 10-scenario × 3-backend sweep runs in CI's `scenario-matrix`
//! job through `eventor-cli check --all`; this suite keeps a debug-friendly
//! cross-section of the same guarantees inside `cargo test`.

use eventor::events::{read_evtr, write_evtr};
use eventor::scenarios::{
    digest_output, digest_world, find, golden_digest, run_world, BackendKind, Scenario,
    ScenarioWorld,
};
use std::sync::OnceLock;

/// Worlds used across the suite, built once (simulation dominates debug
/// runtime). A cross-section of the corpus: one degraded orbit, one clean
/// close-range shake.
fn worlds() -> &'static Vec<ScenarioWorld> {
    static POOL: OnceLock<Vec<ScenarioWorld>> = OnceLock::new();
    POOL.get_or_init(|| {
        ["orbit_burst", "shake_closeup"]
            .iter()
            .map(|name| {
                let s = find(name).expect("corpus scenario exists");
                s.build(s.default_seed()).expect("corpus worlds build")
            })
            .collect()
    })
}

#[test]
fn digests_match_the_committed_goldens() {
    for world in worlds() {
        let digest = digest_world(world, BackendKind::Software).expect("software run");
        assert_eq!(
            Some(digest),
            golden_digest(&world.name),
            "{}: digest {digest:#018x} diverged from the committed golden",
            world.name
        );
    }
}

#[test]
fn every_backend_reconstructs_to_the_same_bits() {
    for world in worlds() {
        let software = digest_world(world, BackendKind::Software).expect("software run");
        for backend in [BackendKind::Sharded, BackendKind::Serve] {
            let digest = digest_world(world, backend).expect("backend run");
            assert_eq!(
                software, digest,
                "{}: {backend} digest diverged from software",
                world.name
            );
        }
    }
    // Co-simulation wraps the same bit-true kernel; one world keeps that
    // contract inside tier-1 too.
    let world = &worlds()[1];
    let cosim = digest_world(world, BackendKind::Cosim).expect("cosim run");
    let software = digest_world(world, BackendKind::Software).expect("software run");
    assert_eq!(cosim, software, "{}: cosim digest diverged", world.name);
}

#[test]
fn evtr_replay_reproduces_the_generator_digest() {
    let world = &worlds()[0];
    let generated = run_world(world, BackendKind::Software).expect("generator run");
    let generated_digest = digest_output(&generated);

    // Record the world's inputs, replay them from the container, and run
    // the replayed inputs through a different backend.
    let mut record = Vec::new();
    write_evtr(&world.events, &world.trajectory, &mut record).expect("record writes");
    let (events, trajectory) = read_evtr(record.as_slice()).expect("record reads");
    assert_eq!(events, world.events, "replayed stream differs");
    let replayed_world = ScenarioWorld {
        events,
        trajectory,
        ..world.clone()
    };
    for backend in [BackendKind::Software, BackendKind::Sharded] {
        let replayed = run_world(&replayed_world, backend).expect("replay run");
        assert_eq!(
            generated_digest,
            digest_output(&replayed),
            "replay on {backend} does not reproduce the generator digest"
        );
    }
}

#[test]
fn different_seeds_produce_different_digests() {
    let scenario = find("shake_closeup").unwrap();
    let default_world = &worlds()[1];
    let reseeded = scenario
        .build(scenario.default_seed().wrapping_add(1))
        .expect("reseeded world builds");
    let a = digest_world(default_world, BackendKind::Software).unwrap();
    let b = digest_world(&reseeded, BackendKind::Software).unwrap();
    assert_ne!(a, b, "digest is blind to the seed");
}
