//! Tier-1 enforcement of the metamorphic invariant catalog (F.1-F.5,
//! `docs/SCENARIOS.md` §8): every invariant holds on generated fuzz worlds
//! across the software, sharded and served execution paths, inside plain
//! `cargo test` — no nightly campaign needed to keep the catalog honest.
//!
//! The fuzzer (`eventor-cli fuzz`) sweeps many worlds; this suite pins a
//! deterministic cross-section so an invariant regression fails fast and by
//! contract number.

use eventor::scenarios::{
    check_invariant, BackendKind, Invariant, ScenarioWorld, SceneKind, TrajectoryKind, WorldSpec,
};
use std::sync::OnceLock;

/// A small generated world straight from the fuzz grammar (one noise stage
/// kept), built once — simulation dominates debug runtime.
fn generated_world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut spec = WorldSpec::generate(0x5EED, 0);
        spec.samples = 28;
        spec.event_cap = 2_600;
        spec.planes = 16;
        spec.noise.truncate(1);
        spec.build().expect("generated world builds")
    })
}

/// A second world on the long-horizon drift trajectory — the trajectory
/// class the fuzzer added for exactly these checks.
fn drift_world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let spec = WorldSpec {
            seed: 0xD21F7,
            trajectory: TrajectoryKind::Drift,
            scene: SceneKind::Dense,
            samples: 24,
            event_cap: 2_200,
            planes: 12,
            noise: Vec::new(),
            golden: None,
        };
        spec.build().expect("drift world builds")
    })
}

/// Asserts one invariant holds on one world for every given backend.
fn assert_holds(world: &ScenarioWorld, invariant: Invariant, backends: &[BackendKind]) {
    for &backend in backends {
        let verdict = check_invariant(world, invariant, backend)
            .unwrap_or_else(|e| panic!("{invariant} on {backend} failed to run: {e}"));
        assert!(
            verdict.is_none(),
            "{}",
            verdict.expect("just checked it is some")
        );
    }
}

#[test]
fn catalog_covers_five_distinct_contracts() {
    assert!(Invariant::ALL.len() >= 5);
    let names: std::collections::HashSet<_> = Invariant::ALL.iter().map(|i| i.name()).collect();
    assert_eq!(names.len(), Invariant::ALL.len());
    for (i, inv) in Invariant::ALL.iter().enumerate() {
        assert_eq!(inv.contract(), format!("F.{}", i + 1));
        assert_eq!(Invariant::parse(inv.name()), Some(*inv));
    }
}

#[test]
fn f1_rigid_transform_equivariance_holds_on_software_and_sharded() {
    assert_holds(
        generated_world(),
        Invariant::RigidTransform,
        &[BackendKind::Software, BackendKind::Sharded],
    );
}

#[test]
fn f2_polarity_relabel_invariance_holds_on_software_sharded_and_serve() {
    assert_holds(
        generated_world(),
        Invariant::PolarityRelabel,
        &[
            BackendKind::Software,
            BackendKind::Sharded,
            BackendKind::Serve,
        ],
    );
}

#[test]
fn f2_polarity_relabel_invariance_holds_on_a_drift_world() {
    assert_holds(
        drift_world(),
        Invariant::PolarityRelabel,
        &[BackendKind::Software],
    );
}

#[test]
fn f3_noise_commutation_holds_on_software_and_sharded() {
    assert_holds(
        generated_world(),
        Invariant::NoiseCommutation,
        &[BackendKind::Software, BackendKind::Sharded],
    );
}

#[test]
fn f4_load_shape_independence_holds_on_the_serve_tier() {
    // F.4 sweeps every `LoadShape` internally; the backend argument only
    // labels the violation, so one invocation covers the whole sweep.
    assert_holds(
        generated_world(),
        Invariant::LoadShape,
        &[BackendKind::Software],
    );
}

#[test]
fn f5_backend_agreement_holds_across_software_sharded_and_serve() {
    assert_holds(
        generated_world(),
        Invariant::BackendAgreement,
        &[BackendKind::Software],
    );
    assert_holds(
        drift_world(),
        Invariant::BackendAgreement,
        &[BackendKind::Software],
    );
}
