//! Property tests for the streaming session invariants (in-tree proptest
//! shim): **arbitrary packet split points of the same stream yield output
//! identical to the one-shot batch `reconstruct`**.
//!
//! The split pattern is the property input — packets of wildly varying
//! sizes, from single events to multiple frames — exercising every frame
//! boundary/packet boundary interaction the driver's aggregation can see.

use eventor::core::{config_for_sequence, EventorOptions, EventorPipeline, EventorSession};
use eventor::emvs::{EmvsConfig, EmvsOutput};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    seq: SyntheticSequence,
    config: EmvsConfig,
    batch: EmvsOutput,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let seq =
            SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
                .expect("fast_test sequences generate");
        let config = config_for_sequence(&seq, 50);
        let batch = EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
            .expect("valid config")
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("batch reconstruction runs");
        Fixture { seq, config, batch }
    })
}

/// Streams the fixture's events through a software session, splitting the
/// stream at the points the `sizes` pattern dictates (cycled until the
/// stream is exhausted).
fn stream_with_splits(sizes: &[usize]) -> EmvsOutput {
    let f = fixture();
    let mut session = EventorSession::builder(f.seq.camera, f.config.clone())
        .software(EventorOptions::accelerator())
        .build()
        .expect("session builds");
    session
        .push_trajectory(&f.seq.trajectory)
        .expect("trajectory pushes");
    let events = f.seq.events.as_slice();
    let mut cursor = 0usize;
    let mut i = 0usize;
    while cursor < events.len() {
        let size = sizes[i % sizes.len()].max(1);
        let end = (cursor + size).min(events.len());
        session
            .push_events(&events[cursor..end])
            .expect("packet pushes");
        session.poll().expect("poll succeeds");
        cursor = end;
        i += 1;
    }
    session.finish().expect("session finishes").output
}

fn assert_matches_batch(streamed: &EmvsOutput, sizes: &[usize]) -> Result<(), TestCaseError> {
    let batch = &fixture().batch;
    prop_assert_eq!(
        batch.keyframes.len(),
        streamed.keyframes.len(),
        "keyframe count diverged for splits {:?}",
        sizes
    );
    for (i, (b, s)) in batch.keyframes.iter().zip(&streamed.keyframes).enumerate() {
        prop_assert_eq!(b.votes_cast, s.votes_cast, "keyframe {} votes", i);
        prop_assert_eq!(b.frames_used, s.frames_used, "keyframe {} frames", i);
        prop_assert_eq!(
            b.depth_map.depth_data(),
            s.depth_map.depth_data(),
            "keyframe {} depth map",
            i
        );
    }
    prop_assert_eq!(batch.global_map.len(), streamed.global_map.len());
    prop_assert_eq!(
        batch.profile.events_processed,
        streamed.profile.events_processed
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn arbitrary_packet_splits_match_batch_reconstruct(
        sizes in prop::collection::vec(1usize..4097, 1..24),
    ) {
        let streamed = stream_with_splits(&sizes);
        assert_matches_batch(&streamed, &sizes)?;
    }

    #[test]
    fn degenerate_split_patterns_match_batch_reconstruct(
        single in 1usize..32,
        huge in 10_000usize..100_000,
    ) {
        // Tiny constant packets (stress the frame-boundary bookkeeping) and
        // one giant packet (the whole stream in one push) must both agree.
        let streamed = stream_with_splits(&[single, huge]);
        assert_matches_batch(&streamed, &[single, huge])?;
    }
}
