//! Structure-aware corruption tests for the `eventor-evtr/1` checkpoint
//! container (`docs/ARCHITECTURE.md` §CKPT): **every** single-byte flip and
//! **every** truncation of a CKPT-bearing container must surface as a typed
//! [`EventError`] — never a panic, never an unbounded allocation, never a
//! silently-wrong restore. Corruption that survives a checksum re-seal (the
//! attacker/bitrot model where the payload is doctored consistently) must
//! stay inside the *inner* error domain ([`EmvsError::Checkpoint`]) or
//! decode to a structurally valid checkpoint — the two-domain split the CLI
//! maps to exit codes 4 and 7.

use eventor::core::{EventorOptions, EventorSession, SessionCheckpoint};
use eventor::emvs::{EmvsConfig, EmvsError};
use eventor::events::{fnv1a_64, read_evtr, write_evtr, Event, EventStream, Polarity};
use eventor::geom::{CameraIntrinsics, CameraModel, DistortionModel, Pose, Trajectory, Vec3};
use eventor::scenarios::{builder_for_profile, find, BackendKind, Scenario};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Container layout constants under test (see `eventor_events::write_ckpt`):
/// 16-byte file header, 12-byte section header, 4-byte CKPT version, payload,
/// 8-byte trailing FNV-1a 64 checksum.
const PAYLOAD_START: usize = 16 + 4 + 8 + 4;
const CHECKSUM_LEN: usize = 8;

/// A deliberately tiny mid-flight checkpoint: a 16×12 sensor and a 4-plane
/// DSI keep the exported vote volume (and with it the whole container) to a
/// few kilobytes, so the byte-exhaustive sweeps stay cheap — while every
/// structural field (trajectory, pending events, vote tiles) is present.
fn tiny_container() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let camera = CameraModel::new(
            CameraIntrinsics::new(10.0, 10.0, 8.0, 6.0, 16, 12).expect("valid intrinsics"),
            DistortionModel::none(),
        );
        let config = EmvsConfig {
            num_depth_planes: 4,
            ..EmvsConfig::default()
        };
        let mut session = EventorSession::builder(camera, config)
            .software(EventorOptions::accelerator())
            .build()
            .expect("session builds");
        let trajectory = Trajectory::linear(
            Pose::identity(),
            Pose::from_translation(Vec3::new(0.1, 0.0, 0.0)),
            0.0,
            1.0,
            4,
        );
        session
            .push_trajectory(&trajectory)
            .expect("trajectory pushes");
        let events: Vec<Event> = (0..8)
            .map(|i| {
                Event::new(
                    0.1 + 0.05 * f64::from(i),
                    2 + i as u16,
                    6,
                    Polarity::Positive,
                )
            })
            .collect();
        session.push_events(&events).expect("events push");
        session.poll().expect("poll succeeds");
        let checkpoint = session
            .snapshot("scenario=tiny seed=0x1")
            .expect("snapshot succeeds");
        let mut bytes = Vec::new();
        checkpoint.write_to(&mut bytes).expect("serializes");
        bytes
    })
}

/// A realistic checkpoint (corpus world, retired key frames, vote tiles) for
/// the randomized body sweeps.
fn big_container() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let s = find("shake_closeup").expect("corpus scenario");
        let world = s.build(s.default_seed()).expect("world builds");
        let mut session =
            builder_for_profile(world.camera, world.config.clone(), BackendKind::Software)
                .build()
                .expect("session builds");
        session
            .push_trajectory(&world.trajectory)
            .expect("trajectory pushes");
        let events = world.events.as_slice();
        let cut = 3 * events.len() / 4;
        let mut offset = 0usize;
        while offset < cut {
            offset += session.push_events(&events[offset..cut]).expect("push");
            session.poll().expect("poll");
        }
        let checkpoint = session
            .snapshot("scenario=shake_closeup seed=0x0")
            .expect("snapshot");
        let mut bytes = Vec::new();
        checkpoint.write_to(&mut bytes).expect("serializes");
        bytes
    })
}

/// Recomputes the trailing checksum after a deliberate payload edit, so the
/// container is *structurally* consistent and the corruption reaches the
/// inner decoder.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len();
    let checksum = fnv1a_64(&bytes[..n - CHECKSUM_LEN]);
    bytes[n - CHECKSUM_LEN..].copy_from_slice(&checksum.to_le_bytes());
}

/// Every single-byte corruption of the container — header, section header,
/// CKPT version, payload, checksum — is a typed [`EventError`]: the
/// checksum (or, for the checksum bytes themselves, the verification)
/// catches all of them before the payload decoder ever runs.
#[test]
fn every_single_byte_flip_is_a_typed_container_error() {
    let bytes = tiny_container();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupted = bytes.to_vec();
            corrupted[at] ^= mask;
            let result = SessionCheckpoint::read_from(corrupted.as_slice());
            assert!(
                result.is_err(),
                "byte {at} ^ {mask:#04x}: corruption went undetected"
            );
        }
    }
}

/// Every truncation — from the empty file to one byte short — is a typed
/// [`EventError`].
#[test]
fn every_truncation_is_a_typed_container_error() {
    let bytes = tiny_container();
    for len in 0..bytes.len() {
        let result = SessionCheckpoint::read_from(&bytes[..len]);
        assert!(
            result.is_err(),
            "truncation to {len} of {} bytes went undetected",
            bytes.len()
        );
    }
}

/// The re-seal model: a payload byte is doctored *and* the checksum is
/// recomputed, so the container itself verifies. The corruption must then
/// either decode to a structurally valid checkpoint (byte-flips can land on
/// legal values) or fail as the **inner** [`EmvsError::Checkpoint`] — and
/// must never panic or allocate unboundedly, even when the flip lands on a
/// length-prefix field.
#[test]
fn resealed_payload_corruption_stays_in_the_inner_error_domain() {
    let bytes = tiny_container();
    let payload_end = bytes.len() - CHECKSUM_LEN;
    for at in PAYLOAD_START..payload_end {
        for mask in [0x01u8, 0xFF] {
            let mut corrupted = bytes.to_vec();
            corrupted[at] ^= mask;
            reseal(&mut corrupted);
            match SessionCheckpoint::read_from(corrupted.as_slice()) {
                Ok(Ok(_)) => {}
                Ok(Err(EmvsError::Checkpoint { .. })) => {}
                Ok(Err(other)) => {
                    panic!("byte {at} ^ {mask:#04x}: unexpected inner error {other}")
                }
                Err(e) => panic!(
                    "byte {at} ^ {mask:#04x}: resealed container failed the outer \
                     domain: {e}"
                ),
            }
        }
    }
}

/// A length-prefix doctored to the maximum must be refused by the decoder's
/// allocation guard (a typed error naming the field), not attempted.
#[test]
fn forged_huge_length_prefixes_are_refused_not_allocated() {
    let bytes = tiny_container();
    // The first payload field is the origin string's length prefix.
    let mut corrupted = bytes.to_vec();
    corrupted[PAYLOAD_START..PAYLOAD_START + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut corrupted);
    match SessionCheckpoint::read_from(corrupted.as_slice()) {
        Ok(Err(EmvsError::Checkpoint { reason })) => {
            assert!(
                reason.contains("origin"),
                "error should name the corrupted field: {reason}"
            );
        }
        other => panic!("forged length must be the inner domain, got {other:?}"),
    }
}

/// Cross-format confusion is typed in both directions: a record/replay
/// container is not a checkpoint, and a checkpoint is not a record.
#[test]
fn record_and_checkpoint_containers_are_not_interchangeable() {
    // A genuine record/replay container…
    let events: EventStream =
        std::iter::once(Event::new(0.5, 10, 10, Polarity::Positive)).collect();
    let trajectory = Trajectory::linear(
        Pose::identity(),
        Pose::from_translation(Vec3::new(0.1, 0.0, 0.0)),
        0.0,
        1.0,
        2,
    );
    let mut record = Vec::new();
    write_evtr(&events, &trajectory, &mut record).expect("record writes");
    // …refused as a checkpoint, with a redirecting message.
    match SessionCheckpoint::read_from(record.as_slice()) {
        Err(e) => {
            let text = e.to_string();
            assert!(text.contains("replay"), "should redirect the user: {text}");
        }
        Ok(_) => panic!("a record/replay container must not read as a checkpoint"),
    }
    // And a genuine checkpoint is refused as a record.
    assert!(
        read_evtr(tiny_container()).is_err(),
        "a checkpoint container must not read as a record"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized single-byte flips over the full-size realistic container
    /// (retired key frames, vote tiles): always a typed outer error.
    #[test]
    fn random_flips_in_a_realistic_container_are_typed_errors(
        numerator in 0usize..10_000,
        mask in 1usize..256,
    ) {
        let bytes = big_container();
        let at = bytes.len() * numerator / 10_000;
        let mut corrupted = bytes.to_vec();
        corrupted[at] ^= mask as u8;
        prop_assert!(
            SessionCheckpoint::read_from(corrupted.as_slice()).is_err(),
            "byte {} ^ {:#04x} went undetected", at, mask
        );
    }

    /// Randomized truncations of the realistic container: always a typed
    /// outer error.
    #[test]
    fn random_truncations_of_a_realistic_container_are_typed_errors(
        numerator in 0usize..10_000,
    ) {
        let bytes = big_container();
        let len = bytes.len() * numerator / 10_000;
        prop_assert!(
            SessionCheckpoint::read_from(&bytes[..len]).is_err(),
            "truncation to {} of {} bytes went undetected", len, bytes.len()
        );
    }

    /// Randomized resealed payload corruption of the realistic container:
    /// multi-byte stretches are zeroed, inverted or saturated and the
    /// checksum recomputed — the result decodes or fails typed, never
    /// panics.
    #[test]
    fn resealed_stretch_corruption_of_a_realistic_container_never_panics(
        numerator in 0usize..10_000,
        stretch in 1usize..64,
        fill in 0usize..3,
    ) {
        let bytes = big_container();
        let payload_end = bytes.len() - CHECKSUM_LEN;
        let at = PAYLOAD_START
            + (payload_end - PAYLOAD_START - 1) * numerator / 10_000;
        let end = (at + stretch).min(payload_end);
        let mut corrupted = bytes.to_vec();
        for b in &mut corrupted[at..end] {
            match fill {
                0 => *b = 0x00,
                1 => *b = 0xFF,
                _ => *b ^= 0xA5,
            }
        }
        reseal(&mut corrupted);
        let outcome = SessionCheckpoint::read_from(corrupted.as_slice());
        prop_assert!(
            matches!(
                outcome,
                Ok(Ok(_)) | Ok(Err(EmvsError::Checkpoint { .. }))
            ),
            "bytes {}..{} fill {}: left the inner error domain: {:?}",
            at, end, fill, outcome
        );
    }

    /// Trailing garbage after the checksum is a framing error, not ignored.
    #[test]
    fn appended_garbage_is_a_typed_error(extra in 1usize..48) {
        let mut corrupted = tiny_container().to_vec();
        corrupted.extend(std::iter::repeat_n(0xEEu8, extra));
        prop_assert!(
            SessionCheckpoint::read_from(corrupted.as_slice()).is_err(),
            "{} bytes of trailing garbage went undetected", extra
        );
    }
}
