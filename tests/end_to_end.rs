//! Cross-crate integration tests: full reconstructions on synthetic
//! sequences, baseline-versus-Eventor consistency, and the accelerator
//! evaluation driven by a real workload.

use eventor::core::{
    config_for_sequence, run_variant, AcceleratorRun, EventorOptions, EventorPipeline,
    PipelineVariant,
};
use eventor::dsi::PointCloud;
use eventor::emvs::{EmvsMapper, VotingMode};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::hwsim::AcceleratorConfig;

fn sequence(kind: SequenceKind) -> SyntheticSequence {
    SyntheticSequence::generate(kind, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate")
}

#[test]
fn baseline_reconstructs_every_sequence() {
    for kind in SequenceKind::ALL {
        let seq = sequence(kind);
        let config = config_for_sequence(&seq, 60);
        let mapper = EmvsMapper::new(seq.camera, config).expect("valid config");
        let output = mapper
            .reconstruct(&seq.events, &seq.trajectory)
            .unwrap_or_else(|e| panic!("{kind:?}: reconstruction failed: {e}"));
        assert!(!output.keyframes.is_empty(), "{kind:?}: no key frames");
        let primary = output.keyframes.first().expect("nonempty");
        assert!(
            primary.depth_map.valid_count() > 30,
            "{kind:?}: too few estimated pixels ({})",
            primary.depth_map.valid_count()
        );
        let gt = seq.ground_truth_depth_at(&primary.reference_pose);
        let metrics = primary
            .depth_map
            .compare_to_ground_truth(gt.as_slice())
            .expect("same size");
        // Absolute accuracy at the reduced test scale is limited by the small
        // focal length and baseline; the slider sequences are geometrically
        // easier than the wide-depth-range simulation scenes.
        let bound = match kind {
            SequenceKind::SliderClose | SequenceKind::SliderFar => 0.15,
            _ => 0.30,
        };
        assert!(
            metrics.abs_rel < bound,
            "{kind:?}: AbsRel {:.3} above {bound}",
            metrics.abs_rel
        );
    }
}

#[test]
fn eventor_pipeline_tracks_baseline_accuracy_on_all_sequences() {
    // The Fig. 7a claim, checked end-to-end on every sequence at test scale:
    // the fully reformulated pipeline stays within a few percentage points of
    // the original EMVS.
    for kind in SequenceKind::ALL {
        let seq = sequence(kind);
        let config = config_for_sequence(&seq, 60);
        let original =
            run_variant(&seq, PipelineVariant::OriginalBilinear, &config).expect("baseline runs");
        let reformulated =
            run_variant(&seq, PipelineVariant::Reformulated, &config).expect("reformulated runs");
        let diff = (reformulated.metrics.abs_rel - original.metrics.abs_rel).abs();
        assert!(
            diff < 0.06,
            "{kind:?}: |reformulated - original| = {diff:.4} (orig {:.4}, ref {:.4})",
            original.metrics.abs_rel,
            reformulated.metrics.abs_rel
        );
    }
}

#[test]
fn voting_and_quantization_ablations_are_small_perturbations() {
    let seq = sequence(SequenceKind::ThreePlanes);
    let config = config_for_sequence(&seq, 60);
    let results: Vec<_> = PipelineVariant::ALL
        .iter()
        .map(|&v| run_variant(&seq, v, &config).expect("variant runs"))
        .collect();
    let baseline = results[0].metrics.abs_rel;
    for r in &results {
        assert!(r.metrics.compared_pixels > 30, "{}: too sparse", r.variant);
        assert!(
            (r.metrics.abs_rel - baseline).abs() < 0.06,
            "{}: abs_rel {:.4} vs baseline {:.4}",
            r.variant,
            r.metrics.abs_rel,
            baseline
        );
    }
}

#[test]
fn nearest_voting_baseline_matches_dedicated_mapper() {
    // The OriginalNearest variant run through the comparison harness must
    // agree with configuring the mapper by hand.
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 50);
    let via_harness = run_variant(&seq, PipelineVariant::OriginalNearest, &config).unwrap();
    let mapper = EmvsMapper::new(seq.camera, config.with_voting(VotingMode::Nearest)).unwrap();
    let direct = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();
    let primary = direct.keyframes.first().unwrap();
    assert_eq!(
        via_harness.metrics.estimated_pixels,
        primary.depth_map.valid_count()
    );
}

#[test]
fn accelerator_evaluation_from_real_workload() {
    let seq = sequence(SequenceKind::SliderFar);
    let config = config_for_sequence(&seq, 100);
    let mapper = EmvsMapper::new(seq.camera, config.clone()).unwrap();
    let output = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();

    let accel_config = AcceleratorConfig::default()
        .with_events_per_frame(config.events_per_frame)
        .with_depth_planes(config.num_depth_planes);
    let run = AcceleratorRun::evaluate_from_profile(&accel_config, &output.profile);
    assert_eq!(
        run.normal_frames + run.key_frames,
        output.profile.frames_processed
    );
    assert!(run.total_seconds > 0.0);
    // Power and resources stay at the paper's prototype values.
    assert_eq!(run.resources.total_luts(), 17_538);
    assert!((run.power_w - 1.86).abs() < 0.15);
    // Energy efficiency against the measured CPU profile is at least an order
    // of magnitude (the paper reports 24x against an Intel i5).
    let energy = run.energy_versus_cpu(&output.profile);
    assert!(
        energy.power_reduction() > 20.0,
        "power reduction {:.1}",
        energy.power_reduction()
    );
}

#[test]
fn global_map_accumulates_across_keyframes() {
    let seq = sequence(SequenceKind::ThreeWalls);
    // Force several key frames with a small key-frame distance.
    let config = config_for_sequence(&seq, 50).with_keyframe_distance(0.08);
    let pipeline = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).unwrap();
    let output = pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap();
    assert!(output.keyframes.len() >= 2, "expected several key frames");
    let merged: usize = output.keyframes.iter().map(|k| k.local_cloud.len()).sum();
    assert_eq!(output.global_map.len(), merged);

    // The global map can be post-processed and exported.
    let filtered = output.global_map.radius_outlier_filtered(0.2, 1);
    assert!(filtered.len() <= output.global_map.len());
    let mut ply = Vec::new();
    filtered.write_ply(&mut ply).unwrap();
    assert!(String::from_utf8(ply).unwrap().starts_with("ply"));
    let _ = PointCloud::new();
}

#[test]
fn distorted_camera_pipeline_round_trip() {
    // Exercise the event distortion-correction stage end to end with a
    // distorted lens model.
    let mut dataset = DatasetConfig::fast_test();
    dataset.camera = eventor::geom::CameraModel::new(
        dataset.camera.intrinsics,
        eventor::geom::DistortionModel::radial(-0.25, 0.08, 0.0),
    );
    let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &dataset).unwrap();
    let config = config_for_sequence(&seq, 60);
    let pipeline = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).unwrap();
    let output = pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap();
    let primary = output.keyframes.first().unwrap();
    let gt = seq.ground_truth_depth_at(&primary.reference_pose);
    let metrics = primary
        .depth_map
        .compare_to_ground_truth(gt.as_slice())
        .unwrap();
    assert!(
        metrics.abs_rel < 0.20,
        "distorted-lens AbsRel {:.3}",
        metrics.abs_rel
    );
}
