//! The acceptance bar of the serving tier (`eventor-serve/1`,
//! `docs/ARCHITECTURE.md` §7): every session served by [`ServeEngine`] —
//! heterogeneous scenes, heterogeneous backends, arbitrary interleavings of
//! enqueues and pump rounds, any worker count — produces output
//! **bit-identical** to the same stream run standalone through
//! [`EventorSession`], *including* the per-session lifecycle event sequence.
//!
//! Determinism argument under test: sessions share compute but no state, and
//! each session's input is delivered in enqueue order, so scheduling can
//! change wall time only. The proptests drive randomized interleaving
//! schedules (chunk sizes, session orders, pump cadences) at the engine to
//! hunt for any crack in that argument.

use eventor::core::{EventorOptions, EventorSession, ParallelConfig, SessionOutput};
use eventor::emvs::{EmvsConfig, EmvsError, SessionEvent};
use eventor::events::Event;
use eventor::geom::Trajectory;
use eventor::hwsim::AcceleratorConfig;
use eventor::scenarios::{find, Scenario as _, ScenarioWorld};
use eventor::serve::{ServeConfig, ServeEngine, ServeError, ServeEvent, SessionStatus};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Events per served stream: enough for several key frames, small enough to
/// keep the whole suite debug-friendly.
const STREAM_EVENTS: usize = 24_000;

/// One independent stream to serve — a corpus world plus the backend its
/// session runs on. The scenes themselves come from `eventor-scenarios`
/// (the corpus is the single source of scenes for tests, benches and
/// examples); this suite contributes only the backend assignment and the
/// interleaving schedules.
#[derive(Clone)]
struct Scenario {
    label: &'static str,
    camera: eventor::geom::CameraModel,
    config: EmvsConfig,
    backend: Backend,
    trajectory: Trajectory,
    events: Vec<Event>,
}

#[derive(Clone, Copy)]
enum Backend {
    Software,
    Sharded(usize),
    Cosim,
}

impl Scenario {
    fn session(&self) -> EventorSession {
        let builder = EventorSession::builder(self.camera, self.config.clone());
        match self.backend {
            Backend::Software => builder.software(EventorOptions::accelerator()),
            Backend::Sharded(n) => builder.sharded(
                EventorOptions::accelerator(),
                ParallelConfig::with_shards(n),
            ),
            Backend::Cosim => builder.cosim(AcceleratorConfig::default()),
        }
        .build()
        .expect("scenario session builds")
    }
}

/// A standalone run and everything it produced: the reference each served
/// session is compared against.
struct Reference {
    output: SessionOutput,
    lifecycle: Vec<SessionEvent>,
}

fn run_standalone(scenario: &Scenario) -> Reference {
    let mut session = scenario.session();
    session
        .push_trajectory(&scenario.trajectory)
        .expect("trajectory pushes");
    let mut lifecycle = Vec::new();
    let mut offset = 0usize;
    while offset < scenario.events.len() {
        offset += session
            .push_events(&scenario.events[offset..])
            .expect("standalone push");
        lifecycle.extend(session.poll().expect("standalone poll"));
    }
    let output = session.finish().expect("standalone finish");
    lifecycle.extend(output.events.iter().cloned());
    Reference { output, lifecycle }
}

/// The heterogeneous scenario pool: six corpus worlds — clean and degraded
/// sensors, all three depth structures — across all three backends. The
/// three `shake_closeup` variants pin the *same* world to every backend, so
/// cross-backend bit identity is exercised on identical input. Generated
/// once (world synthesis dominates the suite's debug runtime).
fn scenarios() -> &'static Vec<(Scenario, Reference)> {
    static POOL: OnceLock<Vec<(Scenario, Reference)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut pool = Vec::new();
        let specs: [(&str, Backend, &'static str); 6] = [
            ("shake_closeup", Backend::Software, "shake_closeup/software"),
            (
                "shake_closeup",
                Backend::Sharded(4),
                "shake_closeup/sharded4",
            ),
            ("shake_closeup", Backend::Cosim, "shake_closeup/cosim"),
            (
                "slide_clutter",
                Backend::Sharded(2),
                "slide_clutter/sharded2",
            ),
            (
                "shake_hotpixel",
                Backend::Software,
                "shake_hotpixel/software",
            ),
            (
                "spiral_multiplane",
                Backend::Software,
                "spiral_multiplane/software",
            ),
        ];
        let mut worlds: std::collections::HashMap<&str, ScenarioWorld> =
            std::collections::HashMap::new();
        for (name, backend, label) in specs {
            let world = worlds
                .entry(name)
                .or_insert_with(|| {
                    let scenario = find(name).expect("corpus scenario exists");
                    scenario
                        .build(scenario.default_seed())
                        .expect("corpus worlds build")
                })
                .clone();
            let events: Vec<Event> = world
                .events
                .as_slice()
                .iter()
                .take(STREAM_EVENTS)
                .copied()
                .collect();
            let scenario = Scenario {
                label,
                camera: world.camera,
                config: world.config.clone(),
                backend,
                trajectory: world.trajectory.clone(),
                events,
            };
            let reference = run_standalone(&scenario);
            pool.push((scenario, reference));
        }
        pool
    })
}

fn assert_bit_identical(reference: &Reference, served: &SessionOutput, label: &str) {
    let (a, b) = (&reference.output.output, &served.output);
    assert_eq!(a.keyframes.len(), b.keyframes.len(), "{label}: keyframes");
    for (i, (x, y)) in a.keyframes.iter().zip(&b.keyframes).enumerate() {
        assert_eq!(x.votes_cast, y.votes_cast, "{label} keyframe {i}: votes");
        assert_eq!(x.frames_used, y.frames_used, "{label} keyframe {i}: frames");
        assert_eq!(x.events_used, y.events_used, "{label} keyframe {i}: events");
        assert_eq!(
            x.depth_map.depth_data(),
            y.depth_map.depth_data(),
            "{label} keyframe {i}: depth map"
        );
    }
    assert_eq!(a.global_map.len(), b.global_map.len(), "{label}: map");
    assert_eq!(
        a.profile.events_processed, b.profile.events_processed,
        "{label}: events processed"
    );
}

/// Serves a set of scenarios on one engine, interleaving enqueues according
/// to `chunks` (cycled per session) and pumping every `pump_every` enqueue
/// steps, then drains and returns each session's output plus its collected
/// per-session lifecycle events.
fn serve_interleaved(
    scenarios: &[&Scenario],
    config: ServeConfig,
    chunks: &[usize],
    pump_every: usize,
) -> Vec<(SessionOutput, Vec<SessionEvent>)> {
    let mut engine = ServeEngine::new(config);
    let ids: Vec<_> = scenarios
        .iter()
        .map(|s| engine.admit(s.session()))
        .collect();
    for (&id, scenario) in ids.iter().zip(scenarios) {
        engine
            .enqueue_trajectory(id, &scenario.trajectory)
            .expect("trajectory enqueues");
    }
    let mut cursors = vec![0usize; scenarios.len()];
    let mut lifecycle: Vec<Vec<SessionEvent>> = vec![Vec::new(); scenarios.len()];
    let mut step = 0usize;
    loop {
        let mut all_done = true;
        for (i, scenario) in scenarios.iter().enumerate() {
            if cursors[i] >= scenario.events.len() {
                continue;
            }
            all_done = false;
            let chunk = chunks[step % chunks.len()].max(1);
            let end = (cursors[i] + chunk).min(scenario.events.len());
            match engine.enqueue_events(ids[i], &scenario.events[cursors[i]..end]) {
                Ok(accepted) => cursors[i] += accepted,
                Err(ServeError::Session {
                    source: EmvsError::Backpressure { .. },
                    ..
                }) => {
                    engine.pump();
                }
                Err(e) => panic!("{}: unexpected enqueue error: {e}", scenario.label),
            }
            step += 1;
            if step.is_multiple_of(pump_every.max(1)) {
                engine.pump();
            }
            lifecycle[i].extend(engine.poll_session(ids[i]).expect("poll_session"));
        }
        if all_done {
            break;
        }
    }
    for &id in &ids {
        engine.close(id).expect("close");
    }
    engine.drain().expect("drain succeeds");
    ids.iter()
        .enumerate()
        .map(|(i, &id)| {
            lifecycle[i].extend(engine.poll_session(id).expect("final poll_session"));
            let output = engine.take_output(id).expect("session finished");
            (output, std::mem::take(&mut lifecycle[i]))
        })
        .collect()
}

#[test]
fn every_backend_is_bit_identical_under_the_engine() {
    let pool = scenarios();
    // The three shake_closeup variants cover software, sharded and cosim.
    let picks: Vec<&(Scenario, Reference)> = pool
        .iter()
        .filter(|(s, _)| s.label.starts_with("shake_closeup"))
        .collect();
    assert_eq!(picks.len(), 3);
    let subset: Vec<&Scenario> = picks.iter().map(|(s, _)| s).collect();
    let served = serve_interleaved(
        &subset,
        ServeConfig::new().with_workers(2),
        &[1024, 333, 4096],
        3,
    );
    for ((scenario, reference), (output, lifecycle)) in picks.iter().zip(&served) {
        assert_bit_identical(reference, output, scenario.label);
        assert_eq!(
            &reference.lifecycle, lifecycle,
            "{}: lifecycle event sequence",
            scenario.label
        );
    }
}

#[test]
fn heterogeneous_scene_mix_stays_isolated() {
    let pool = scenarios();
    let subset: Vec<&Scenario> = pool.iter().map(|(s, _)| s).collect();
    // More sessions than workers: the pool is oversubscribed, every session
    // still finishes with untouched output.
    let served = serve_interleaved(
        &subset,
        ServeConfig::new().with_workers(3).with_quantum_events(2048),
        &[2048, 777, 128, 4096],
        2,
    );
    for ((scenario, reference), (output, lifecycle)) in pool.iter().zip(&served) {
        assert_bit_identical(reference, output, scenario.label);
        assert_eq!(
            &reference.lifecycle, lifecycle,
            "{}: lifecycle event sequence",
            scenario.label
        );
    }
}

#[test]
fn stalls_resolve_and_output_is_unchanged_when_poses_arrive_late() {
    let pool = scenarios();
    let (scenario, reference) = &pool[0];
    let mut engine = ServeEngine::new(
        ServeConfig::new()
            .with_workers(2)
            .with_queue_capacity(4 * 1024)
            .with_quantum_events(1024),
    );
    // A tightly bounded session (small pending buffer), so the withheld
    // poses exhaust queue + buffer well before the stream ends.
    let session = EventorSession::builder(scenario.camera, scenario.config.clone())
        .software(EventorOptions::accelerator())
        .max_pending_events(2048)
        .build()
        .expect("bounded session builds");
    let id = engine.admit(session);
    // Events first, poses withheld: the queue and session buffers fill and
    // the engine reports the stall instead of growing without bound.
    let mut offset = 0usize;
    let mut saw_backpressure = false;
    while offset < scenario.events.len() {
        match engine.enqueue_events(id, &scenario.events[offset..]) {
            Ok(n) => offset += n,
            Err(ServeError::Session {
                source: EmvsError::Backpressure { .. },
                ..
            }) => {
                saw_backpressure = true;
                break;
            }
            Err(e) => panic!("unexpected enqueue error: {e}"),
        }
        engine.pump();
    }
    assert!(
        saw_backpressure,
        "withheld poses must backpressure the feed"
    );
    engine.pump();
    assert!(engine
        .poll_serve()
        .iter()
        .any(|e| matches!(e, ServeEvent::SessionStalled { .. })));
    assert!(matches!(engine.status(id), Ok(SessionStatus::Active)));
    // The poses arrive; the feed resumes and completes.
    engine
        .enqueue_trajectory(id, &scenario.trajectory)
        .expect("trajectory enqueues");
    while offset < scenario.events.len() {
        match engine.enqueue_events(id, &scenario.events[offset..]) {
            Ok(n) => offset += n,
            Err(ServeError::Session {
                source: EmvsError::Backpressure { .. },
                ..
            }) => {}
            Err(e) => panic!("unexpected enqueue error: {e}"),
        }
        engine.pump();
    }
    let output = engine.finish_session(id).expect("session finishes");
    assert_bit_identical(reference, &output, scenario.label);
}

#[test]
fn serve_metrics_account_for_every_event() {
    let pool = scenarios();
    let subset: Vec<&Scenario> = pool.iter().take(3).map(|(s, _)| s).collect();
    let mut engine = ServeEngine::new(ServeConfig::new().with_workers(2));
    let ids: Vec<_> = subset.iter().map(|s| engine.admit(s.session())).collect();
    for (&id, scenario) in ids.iter().zip(&subset) {
        engine.enqueue_trajectory(id, &scenario.trajectory).unwrap();
        let mut offset = 0usize;
        while offset < scenario.events.len() {
            offset += engine
                .enqueue_events(id, &scenario.events[offset..])
                .unwrap();
            engine.pump();
        }
        engine.close(id).unwrap();
    }
    engine.drain().expect("drain succeeds");
    let total: u64 = subset.iter().map(|s| s.events.len() as u64).sum();
    let m = engine.metrics();
    assert_eq!(m.events_enqueued, total);
    assert_eq!(m.events_ingested, total);
    assert_eq!(m.events_processed, total);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.finished, subset.len());
    for (&id, (scenario, reference)) in ids.iter().zip(pool.iter().take(3)) {
        let sm = engine.session_metrics(id).unwrap();
        assert_eq!(
            sm.events_processed,
            scenario.events.len() as u64,
            "{}",
            scenario.label
        );
        assert_eq!(
            sm.depth_maps,
            reference.output.output.keyframes.len(),
            "{}: depth maps",
            scenario.label
        );
        let output = engine.take_output(id).expect("finished output");
        assert_eq!(output.output.keyframes.len(), sm.depth_maps);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: a proptest-random interleaving schedule —
    /// random chunk sizes, random pump cadence, random worker count —
    /// leaves every session's output and lifecycle bit-identical to its
    /// standalone reference, across all three backends at once.
    #[test]
    fn random_interleavings_are_bit_identical(
        chunks in prop::collection::vec(1usize..5000, 1..12),
        pump_every in 1usize..6,
        workers in 1usize..9,
    ) {
        let pool = scenarios();
        let picks: Vec<&(Scenario, Reference)> = pool
            .iter()
            .filter(|(s, _)| s.label.starts_with("shake_closeup"))
            .collect();
        let subset: Vec<&Scenario> = picks.iter().map(|(s, _)| s).collect();
        let served = serve_interleaved(
            &subset,
            ServeConfig::new().with_workers(workers),
            &chunks,
            pump_every,
        );
        for ((scenario, reference), (output, lifecycle)) in picks.iter().zip(&served) {
            let (a, b) = (&reference.output.output, &output.output);
            prop_assert_eq!(a.keyframes.len(), b.keyframes.len(), "{}: keyframes", scenario.label);
            for (i, (x, y)) in a.keyframes.iter().zip(&b.keyframes).enumerate() {
                prop_assert_eq!(x.votes_cast, y.votes_cast, "{} keyframe {}: votes", scenario.label, i);
                prop_assert_eq!(
                    x.depth_map.depth_data(),
                    y.depth_map.depth_data(),
                    "{} keyframe {}: depth map",
                    scenario.label,
                    i
                );
            }
            prop_assert_eq!(
                a.profile.events_processed,
                b.profile.events_processed,
                "{}: events processed",
                scenario.label
            );
            prop_assert_eq!(
                &reference.lifecycle,
                lifecycle,
                "{}: lifecycle sequence",
                scenario.label
            );
        }
    }
}
