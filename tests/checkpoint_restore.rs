//! The kill-and-restore acceptance bar of the checkpoint subsystem
//! (`docs/ARCHITECTURE.md` §CKPT): a session checkpointed mid-flight into an
//! `eventor-evtr/1` `CKPT` section, **dropped**, and restored from the
//! container bytes alone must finish with output **bit-identical** to the
//! uninterrupted run — for every corpus scenario, every backend, and
//! arbitrary (proptest-chosen) packet boundaries. The committed golden
//! digests pin both sides, so a restore that silently loses a pending event,
//! a vote, or a window boundary fails CI by scenario name.

use eventor::core::{SessionCheckpoint, SessionOutput};
use eventor::emvs::EmvsError;
use eventor::scenarios::{
    builder_for_profile, corpus, digest_output, find, golden_digest, BackendKind, Scenario,
    ScenarioWorld,
};
use eventor::serve::{ServeConfig, ServeEngine};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The backends a checkpoint can be taken on and restored to. `Serve` is
/// covered separately through the engine faces
/// ([`serve_tier_kill_and_resume_reproduces_the_golden_digest`]).
const BACKENDS: [BackendKind; 3] = [
    BackendKind::Software,
    BackendKind::Sharded,
    BackendKind::Cosim,
];

/// Worlds used across the suite, built once (simulation dominates debug
/// runtime).
fn world(name: &str) -> &'static ScenarioWorld {
    static POOL: OnceLock<
        std::sync::Mutex<std::collections::HashMap<String, &'static ScenarioWorld>>,
    > = OnceLock::new();
    let pool = POOL.get_or_init(Default::default);
    let mut guard = pool.lock().expect("world pool lock");
    if let Some(world) = guard.get(name) {
        return world;
    }
    let s = find(name).expect("corpus scenario exists");
    let world: &'static ScenarioWorld = Box::leak(Box::new(
        s.build(s.default_seed()).expect("corpus world builds"),
    ));
    guard.insert(name.to_string(), world);
    world
}

/// Runs `world` uninterrupted on `backend` (the control arm of every
/// equivalence below).
fn run_uninterrupted(world: &ScenarioWorld, backend: BackendKind) -> SessionOutput {
    let mut session = builder_for_profile(world.camera, world.config.clone(), backend)
        .build()
        .expect("session builds");
    session
        .push_trajectory(&world.trajectory)
        .expect("trajectory pushes");
    let events = world.events.as_slice();
    let mut offset = 0usize;
    while offset < events.len() {
        offset += session.push_events(&events[offset..]).expect("events push");
        session.poll().expect("poll succeeds");
    }
    session.finish().expect("session finishes")
}

/// Feeds `world` into a fresh `backend` session up to event `cut`, snapshots
/// it into serialized `eventor-evtr/1` container bytes, and **drops the
/// session** — the kill. Only the returned bytes survive.
fn kill_at(world: &ScenarioWorld, backend: BackendKind, cut: usize) -> Vec<u8> {
    let mut session = builder_for_profile(world.camera, world.config.clone(), backend)
        .build()
        .expect("session builds");
    session
        .push_trajectory(&world.trajectory)
        .expect("trajectory pushes");
    let events = &world.events.as_slice()[..cut];
    let mut offset = 0usize;
    while offset < events.len() {
        offset += session.push_events(&events[offset..]).expect("events push");
        session.poll().expect("poll succeeds");
    }
    let origin = format!("scenario={} seed={:#x}", world.name, world.seed);
    let checkpoint = session.snapshot(&origin).expect("snapshot succeeds");
    let mut bytes = Vec::new();
    checkpoint
        .write_to(&mut bytes)
        .expect("checkpoint serializes");
    drop(session);
    bytes
}

/// Restores a session from container `bytes` on `backend`, feeds it the
/// remainder of the stream from `cut`, and finishes it.
fn restore_and_finish(
    world: &ScenarioWorld,
    backend: BackendKind,
    bytes: &[u8],
    cut: usize,
) -> SessionOutput {
    let checkpoint = SessionCheckpoint::read_from(bytes)
        .expect("container reads")
        .expect("payload decodes");
    assert_eq!(
        checkpoint.origin(),
        format!("scenario={} seed={:#x}", world.name, world.seed),
        "origin string survives the round trip"
    );
    assert_eq!(checkpoint.events_pushed(), cut as u64);
    let mut session = builder_for_profile(world.camera, world.config.clone(), backend)
        .restore(checkpoint)
        .expect("restore succeeds");
    let events = world.events.as_slice();
    let mut offset = cut;
    while offset < events.len() {
        offset += session.push_events(&events[offset..]).expect("events push");
        session.poll().expect("poll succeeds");
    }
    session.finish().expect("restored session finishes")
}

fn assert_bit_identical(a: &SessionOutput, b: &SessionOutput, label: &str) {
    let (a, b) = (&a.output, &b.output);
    assert_eq!(a.keyframes.len(), b.keyframes.len(), "{label}: keyframes");
    for (i, (x, y)) in a.keyframes.iter().zip(&b.keyframes).enumerate() {
        assert_eq!(x.votes_cast, y.votes_cast, "{label} keyframe {i}: votes");
        assert_eq!(x.frames_used, y.frames_used, "{label} keyframe {i}: frames");
        assert_eq!(x.events_used, y.events_used, "{label} keyframe {i}: events");
        assert_eq!(
            x.depth_map.depth_data(),
            y.depth_map.depth_data(),
            "{label} keyframe {i}: depth map"
        );
    }
}

/// The headline sweep: **every** corpus scenario × every backend, killed at
/// the stream midpoint and restored from bytes, reproduces the committed
/// golden digest.
#[test]
fn every_scenario_and_backend_survives_a_midpoint_kill_and_restore() {
    for scenario in corpus() {
        let world = world(scenario.name());
        let golden = golden_digest(&world.name).expect("scenario has a committed golden");
        for backend in BACKENDS {
            let cut = world.events.len() / 2;
            let bytes = kill_at(world, backend, cut);
            let restored = restore_and_finish(world, backend, &bytes, cut);
            assert_eq!(
                digest_output(&restored),
                golden,
                "{} on {backend}: restored run diverged from the golden digest",
                world.name
            );
        }
    }
}

/// Beyond the digest: the restored run is bit-identical to the uninterrupted
/// run in every output field, on every backend, at awkward non-midpoint cuts.
#[test]
fn restored_output_is_bit_identical_to_the_uninterrupted_run() {
    let world = world("shake_closeup");
    for backend in BACKENDS {
        let uninterrupted = run_uninterrupted(world, backend);
        for cut in [1usize, world.events.len() / 3, world.events.len() - 1] {
            let bytes = kill_at(world, backend, cut);
            let restored = restore_and_finish(world, backend, &bytes, cut);
            assert_bit_identical(
                &uninterrupted,
                &restored,
                &format!("{backend}, cut at {cut}"),
            );
        }
    }
}

/// Degenerate boundaries: a checkpoint before the first event and one after
/// the last event (but before `finish`) both restore to the golden output.
#[test]
fn edge_cuts_restore_exactly() {
    let world = world("orbit_burst");
    let golden = golden_digest(&world.name).expect("golden");
    for cut in [0usize, world.events.len()] {
        let bytes = kill_at(world, BackendKind::Software, cut);
        let restored = restore_and_finish(world, BackendKind::Software, &bytes, cut);
        assert_eq!(
            digest_output(&restored),
            golden,
            "cut at {cut} of {} events",
            world.events.len()
        );
    }
}

/// Checkpoints chain: a restored session is itself checkpointable, and a
/// twice-killed run still lands on the golden digest.
#[test]
fn a_restored_session_can_be_checkpointed_again() {
    let world = world("shake_closeup");
    let golden = golden_digest(&world.name).expect("golden");
    let events = world.events.as_slice();
    let (c1, c2) = (events.len() / 4, 3 * events.len() / 4);

    let bytes = kill_at(world, BackendKind::Sharded, c1);
    let checkpoint = SessionCheckpoint::read_from(bytes.as_slice())
        .expect("container reads")
        .expect("payload decodes");
    let mut session = builder_for_profile(world.camera, world.config.clone(), BackendKind::Sharded)
        .restore(checkpoint)
        .expect("first restore");
    let mut offset = c1;
    while offset < c2 {
        offset += session.push_events(&events[offset..c2]).expect("push");
        session.poll().expect("poll");
    }
    let origin = format!("scenario={} seed={:#x}", world.name, world.seed);
    let second = session.snapshot(&origin).expect("second snapshot");
    let mut bytes2 = Vec::new();
    second.write_to(&mut bytes2).expect("second serializes");
    drop(session);

    let restored = restore_and_finish(world, BackendKind::Sharded, &bytes2, c2);
    assert_eq!(
        digest_output(&restored),
        golden,
        "twice-killed run diverged"
    );
}

/// Quantized vote tiles are exact under saturating u16 merge, so a
/// checkpoint taken on one backend restores on any other: the session
/// migrates software → sharded → cosim mid-stream and still reproduces the
/// golden digest.
#[test]
fn checkpoint_migrates_across_backends_mid_stream() {
    let world = world("orbit_dense");
    let golden = golden_digest(&world.name).expect("golden");
    let events = world.events.as_slice();
    let (c1, c2) = (events.len() / 3, 2 * events.len() / 3);

    // Leg 1: software up to c1.
    let bytes = kill_at(world, BackendKind::Software, c1);
    // Leg 2: sharded from c1 to c2.
    let checkpoint = SessionCheckpoint::read_from(bytes.as_slice())
        .expect("container reads")
        .expect("payload decodes");
    assert_eq!(checkpoint.backend_kind(), "software");
    let mut session = builder_for_profile(world.camera, world.config.clone(), BackendKind::Sharded)
        .restore(checkpoint)
        .expect("software checkpoint restores on sharded");
    let mut offset = c1;
    while offset < c2 {
        offset += session.push_events(&events[offset..c2]).expect("push");
        session.poll().expect("poll");
    }
    let origin = format!("scenario={} seed={:#x}", world.name, world.seed);
    let mid = session.snapshot(&origin).expect("sharded snapshot");
    let mut bytes2 = Vec::new();
    mid.write_to(&mut bytes2).expect("serializes");
    drop(session);
    // Leg 3: cosim from c2 to the end.
    let restored = restore_and_finish(world, BackendKind::Cosim, &bytes2, c2);
    assert_eq!(
        digest_output(&restored),
        golden,
        "software→sharded→cosim migration diverged from the golden digest"
    );
}

/// The serving tier's kill-and-resume: a session admitted into a
/// `ServeEngine`, checkpointed at an idle point, **aborted**, and resumed on
/// a fresh engine finishes to the committed golden digest.
#[test]
fn serve_tier_kill_and_resume_reproduces_the_golden_digest() {
    let world = world("spiral_multiplane");
    let golden = golden_digest(&world.name).expect("golden");
    let events = world.events.as_slice();
    let cut = events.len() / 2;

    let mut engine = ServeEngine::new(ServeConfig::new());
    let session = builder_for_profile(world.camera, world.config.clone(), BackendKind::Serve)
        .build()
        .expect("session builds");
    let id = engine.admit(session);
    engine
        .enqueue_trajectory(id, &world.trajectory)
        .expect("trajectory enqueues");
    let mut offset = 0usize;
    while offset < cut {
        offset += engine
            .enqueue_events(id, &events[offset..cut])
            .expect("events enqueue");
        engine.pump();
    }
    while engine.session_metrics(id).expect("metrics").queue_depth > 0 {
        engine.pump();
    }
    let checkpoint = engine
        .checkpoint_session(id, "serve kill-and-resume drill")
        .expect("idle session checkpoints");
    let mut bytes = Vec::new();
    checkpoint.write_to(&mut bytes).expect("serializes");
    // The kill: the original session errors out and is gone for good.
    engine
        .abort(
            id,
            EmvsError::InvalidConfig {
                reason: "injected operator kill".into(),
            },
        )
        .expect("abort lands");
    drop(engine);

    let checkpoint = SessionCheckpoint::read_from(bytes.as_slice())
        .expect("container reads")
        .expect("payload decodes");
    let mut engine = ServeEngine::new(ServeConfig::new());
    let id = engine.resume_session(checkpoint).expect("resume admits");
    let mut offset = cut;
    while offset < events.len() {
        offset += engine
            .enqueue_events(id, &events[offset..])
            .expect("events enqueue");
        engine.pump();
    }
    let output = engine.finish_session(id).expect("resumed session finishes");
    assert_eq!(
        digest_output(&output),
        golden,
        "serve-tier resume diverged from the golden digest"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The property form of the headline: a **proptest-chosen** kill point
    /// anywhere in the stream, on a proptest-chosen backend, restores to the
    /// golden digest.
    #[test]
    fn any_kill_point_on_any_backend_restores_to_golden(
        numerator in 0usize..1000,
        backend_index in 0usize..3,
    ) {
        let world = world("orbit_burst");
        let golden = golden_digest(&world.name).expect("golden");
        let backend = BACKENDS[backend_index];
        let cut = world.events.len() * numerator / 1000;
        let bytes = kill_at(world, backend, cut);
        let restored = restore_and_finish(world, backend, &bytes, cut);
        prop_assert_eq!(
            digest_output(&restored),
            golden,
            "{} on {}: kill at {} of {} events diverged",
            world.name.as_str(),
            backend,
            cut,
            world.events.len()
        );
    }
}
