//! The acceptance bar of the TCP serving front-end (`eventor-wire/1`,
//! `docs/WIRE.md`): a world streamed to a [`WireServer`] over loopback and
//! reconstructed remotely produces depth maps **bit-identical** to the
//! in-process golden path — server digest, client-side recomputation from
//! the streamed `DepthMap` frames, and the committed golden table must all
//! agree — with many concurrent client connections multiplexed over one
//! engine, on the software and sharded backends alike.
//!
//! A debug-friendly cross-section runs in tier-1; the full 10-scenario ×
//! 2-backend sweep is release-mode CI's job (`EVENTOR_WIRE_FULL=1`, the
//! `scenario-matrix` workflow).

use eventor::core::EventorSession;
use eventor::net::{
    digest_of_depth_maps, ManifestSource, NetConfig, ServerHandle, SessionManifest, WireClient,
    WireSessionEvent,
};
use eventor::scenarios::{
    corpus, find, golden_digest, session_for_profile, BackendKind, Scenario, ScenarioWorld,
    WorldSpec,
};
use eventor::serve::LoadShape;
use std::sync::OnceLock;

/// The tier-1 cross-section: trajectory/noise/depth diversity without the
/// full corpus cost in debug builds.
const CROSS_SECTION: [&str; 4] = [
    "orbit_burst",
    "shake_closeup",
    "dolly_corridor",
    "slide_clutter",
];

fn worlds() -> &'static Vec<ScenarioWorld> {
    static POOL: OnceLock<Vec<ScenarioWorld>> = OnceLock::new();
    POOL.get_or_init(|| {
        CROSS_SECTION
            .iter()
            .map(|name| {
                let s = find(name).expect("corpus scenario exists");
                s.build(s.default_seed()).expect("corpus worlds build")
            })
            .collect()
    })
}

fn spawn_server() -> ServerHandle {
    eventor::net::spawn_loopback(NetConfig::new()).expect("loopback server spawns")
}

fn manifest_for(world: &ScenarioWorld, backend: BackendKind) -> SessionManifest {
    SessionManifest {
        backend,
        source: ManifestSource::Scenario {
            name: world.name.clone(),
            seed: world.seed,
        },
    }
}

/// Streams one world through its own connection and asserts the triple
/// digest equality (server == client recomputation == golden).
fn serve_and_check(
    addr: std::net::SocketAddr,
    world: &ScenarioWorld,
    backend: BackendKind,
    shape: LoadShape,
) {
    let mut client = WireClient::connect(addr).expect("client connects");
    let id = client
        .admit(&manifest_for(world, backend))
        .expect("admission");
    let report = client
        .drive(id, &world.trajectory, world.events.as_slice(), shape)
        .expect("drive to completion");
    let golden = golden_digest(&world.name).expect("committed golden");
    assert_eq!(
        report.digest, golden,
        "{} on {backend}: served digest diverged from the committed golden",
        world.name
    );
    assert_eq!(
        client.digest(id),
        golden,
        "{} on {backend}: digest recomputed from streamed depth maps diverged",
        world.name
    );
    assert_eq!(
        report.keyframes as usize,
        client.depth_maps(id).len(),
        "{} on {backend}: depth-map frame count != reported keyframes",
        world.name
    );
    client.bye().expect("ordered shutdown");
}

#[test]
fn concurrent_clients_reproduce_goldens_on_both_backends() {
    let server = spawn_server();
    let addr = server.addr();
    // Every (world, backend) pair gets its own concurrent connection; load
    // shapes cycle through the full loadgen palette so cadence diversity
    // rides along.
    std::thread::scope(|scope| {
        let mut i = 0usize;
        for world in worlds() {
            for backend in [BackendKind::Software, BackendKind::Sharded] {
                let shape = LoadShape::ALL[i % LoadShape::ALL.len()];
                i += 1;
                scope.spawn(move || serve_and_check(addr, world, backend, shape));
            }
        }
    });
    server.shutdown();
}

#[test]
fn remote_lifecycle_events_match_the_in_process_session() {
    let world = &worlds()[1]; // shake_closeup
                              // In-process reference: the exact event sequence a local session emits.
    let mut local: Vec<WireSessionEvent> = Vec::new();
    let mut session: EventorSession =
        session_for_profile(world.camera, world.config.clone(), BackendKind::Software)
            .expect("local session builds");
    session
        .push_trajectory(&world.trajectory)
        .expect("poses push");
    let events = world.events.as_slice();
    let mut offset = 0usize;
    while offset < events.len() {
        offset += session.push_events(&events[offset..]).expect("events push");
        local.extend(
            session
                .poll()
                .expect("poll")
                .iter()
                .filter_map(WireSessionEvent::from_session),
        );
    }
    let output = session.finish().expect("local finish");
    local.extend(
        output
            .events
            .iter()
            .filter_map(WireSessionEvent::from_session),
    );

    // Remote run of the same world.
    let server = spawn_server();
    let mut client = WireClient::connect(server.addr()).expect("client connects");
    let id = client
        .admit(&manifest_for(world, BackendKind::Software))
        .expect("admission");
    client
        .drive(
            id,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::Steady { chunk: 2048 },
        )
        .expect("drive");
    assert_eq!(
        client.lifecycle(id),
        local.as_slice(),
        "remote lifecycle sequence diverged from the in-process session"
    );
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn spec_manifests_admit_and_serve_bit_identically() {
    // An inline `eventor-fuzzworld/1` spec must serve to the same bits as
    // building and running the spec locally.
    let spec = WorldSpec::generate(0x5eed, 3);
    let world = spec.build().expect("spec world builds");
    let local = eventor::scenarios::digest_world(&world, BackendKind::Software).expect("local run");

    let server = spawn_server();
    let mut client = WireClient::connect(server.addr()).expect("client connects");
    let id = client
        .admit(&SessionManifest {
            backend: BackendKind::Software,
            source: ManifestSource::Spec {
                text: spec.to_text(),
            },
        })
        .expect("spec admission");
    let report = client
        .drive(
            id,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::SlowConsumer {
                chunk: 768,
                pump_every: 7,
            },
        )
        .expect("drive");
    assert_eq!(report.digest, local, "spec served digest diverged");
    assert_eq!(client.digest(id), local, "spec streamed maps diverged");
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn metrics_frame_returns_the_reproducible_document() {
    let server = spawn_server();
    let world = &worlds()[0];
    let mut client = WireClient::connect(server.addr()).expect("client connects");
    let id = client
        .admit(&manifest_for(world, BackendKind::Software))
        .expect("admission");
    client
        .drive(
            id,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::Steady { chunk: 4096 },
        )
        .expect("drive");
    let json = client.metrics().expect("metrics frame");
    assert!(
        json.starts_with("{\n  \"format\": \"eventor-metrics/1\",\n"),
        "metrics frame must carry the pinned eventor-metrics/1 document, got: {}",
        &json[..json.len().min(80)]
    );
    assert!(
        json.contains("\"status\": \"finished\""),
        "the finished session must appear in the snapshot: {json}"
    );
    // Byte-reproducibility across the wire: two immediately consecutive
    // requests on an idle engine return identical bytes.
    let again = client.metrics().expect("metrics frame again");
    assert_eq!(json, again, "idle-engine metrics must be byte-stable");
    client.bye().expect("bye");
    server.shutdown();
}

/// The full corpus bar, release-mode CI only (`EVENTOR_WIRE_FULL=1`): every
/// corpus world served over loopback on the software AND sharded backends,
/// all concurrently, every digest bit-identical to the committed golden.
#[test]
fn full_corpus_over_the_wire_on_both_backends() {
    if std::env::var_os("EVENTOR_WIRE_FULL").is_none() {
        eprintln!("skipping full-corpus wire sweep (set EVENTOR_WIRE_FULL=1; release CI runs it)");
        return;
    }
    let server = spawn_server();
    let addr = server.addr();
    let all: Vec<ScenarioWorld> = corpus()
        .iter()
        .map(|s| s.build(s.default_seed()).expect("corpus worlds build"))
        .collect();
    std::thread::scope(|scope| {
        let mut i = 0usize;
        for world in &all {
            for backend in [BackendKind::Software, BackendKind::Sharded] {
                let shape = LoadShape::ALL[i % LoadShape::ALL.len()];
                i += 1;
                scope.spawn(move || serve_and_check(addr, world, backend, shape));
            }
        }
    });
    server.shutdown();
}

/// Silence the unused-import lint for `digest_of_depth_maps`: the client's
/// `digest` method is the same algorithm; this keeps the public helper
/// covered from the facade too.
#[test]
fn facade_digest_helper_matches_client_digest() {
    let maps: &[eventor::net::DepthMapFrame] = &[];
    assert_eq!(digest_of_depth_maps(maps), {
        use eventor::events::Fnv64;
        let mut h = Fnv64::new();
        h.update_u64(0);
        h.finish()
    });
}
