//! Integration of the reconstruction pipelines with the global mapping
//! substrate: key-frame depth maps flow into the voxel-grid map, fusion
//! tightens overlapping estimates, and the map statistics stay consistent
//! with the reconstruction output.

use eventor::core::{config_for_sequence, EventorOptions, EventorPipeline};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::map::{DepthFusion, FusionConfig, GlobalMap, GlobalMapConfig};

fn sequence(kind: SequenceKind) -> SyntheticSequence {
    SyntheticSequence::generate(kind, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate")
}

#[test]
fn pipeline_keyframes_populate_the_global_map() {
    let seq = sequence(SequenceKind::ThreePlanes);
    let config = config_for_sequence(&seq, 50);
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let output = pipeline
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("run");

    let mut map = GlobalMap::new(GlobalMapConfig::default()).expect("config");
    let mut raw_points = 0usize;
    for kf in &output.keyframes {
        raw_points +=
            map.insert_depth_map(&kf.depth_map, &seq.camera.intrinsics, &kf.reference_pose);
    }
    let stats = map.statistics();
    assert_eq!(stats.keyframes, output.keyframes.len());
    assert_eq!(stats.raw_points as usize, raw_points);
    assert!(stats.map_points > 0);
    assert!(
        stats.map_points <= raw_points,
        "voxel grid never grows the cloud"
    );
    // The map extent must be commensurate with the scene depth range.
    assert!(stats.extent.z > 0.0 && stats.extent.z < 2.0 * seq.depth_range.1);
}

#[test]
fn voxel_map_is_no_larger_than_naive_concatenation() {
    let seq = sequence(SequenceKind::SliderClose);
    let config = config_for_sequence(&seq, 50);
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let output = pipeline
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("run");

    let mut map = GlobalMap::new(GlobalMapConfig {
        voxel_resolution: 0.03,
        min_voxel_support: 1,
    })
    .expect("config");
    for kf in &output.keyframes {
        map.insert_cloud(&kf.local_cloud, &kf.reference_pose);
    }
    // `EmvsOutput::global_map` is the naive concatenation of the key-frame
    // clouds; the voxel-grid map deduplicates overlapping structure.
    assert!(map.point_cloud().len() <= output.global_map.len());
    assert_eq!(map.num_keyframes(), output.keyframes.len());
}

#[test]
fn fusing_keyframe_depth_maps_increases_or_preserves_coverage() {
    let seq = sequence(SequenceKind::SliderFar);
    let config = config_for_sequence(&seq, 50);
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let output = pipeline
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("run");
    let first = &output.keyframes[0].depth_map;

    let mut fusion =
        DepthFusion::new(first.width(), first.height(), FusionConfig::default()).expect("dims");
    for kf in &output.keyframes {
        // All key-frame depth maps share the sensor resolution, so they can be
        // fused in the image domain (the views are close for these sequences).
        fusion.fuse(&kf.depth_map).expect("same dimensions");
    }
    let fused = fusion.finalize().expect("at least one map fused");
    assert!(fused.valid_count() >= first.valid_count());
    assert!(fusion.maps_fused() as usize == output.keyframes.len());
}

#[test]
fn map_export_round_trips_through_ply_text() {
    let seq = sequence(SequenceKind::ThreeWalls);
    let config = config_for_sequence(&seq, 40);
    let pipeline =
        EventorPipeline::new(seq.camera, config, EventorOptions::accelerator()).expect("config");
    let output = pipeline
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("run");

    let mut map = GlobalMap::new(GlobalMapConfig::default()).expect("config");
    for kf in &output.keyframes {
        map.insert_cloud(&kf.local_cloud, &kf.reference_pose);
    }
    let mut buffer = Vec::new();
    map.write_ply(&mut buffer).expect("in-memory write");
    let text = String::from_utf8(buffer).expect("ascii ply");
    assert!(text.starts_with("ply"));
    let vertex_line = format!("element vertex {}", map.point_cloud().len());
    assert!(
        text.contains(&vertex_line),
        "header must declare every exported point"
    );
}
