//! Design-space exploration of the accelerator architecture: sweep the
//! number of `PE_Zi`, the depth-plane count and double buffering, and report
//! resources, per-frame latency, throughput, power and energy efficiency for
//! every point — the ablation study behind the prototype configuration the
//! paper ships (1x PE_Z0, 2x PE_Zi, double-buffered).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use eventor::hwsim::{
    estimate_resources, performance, AcceleratorConfig, FrameKind, PipelineSimulator, PowerModel,
    INTEL_I5_POWER_W,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("--- PE_Zi sweep (100 planes, 1024-event frames, double-buffered) ---");
    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>12} {:>9} {:>12}",
        "PE_Zi", "LUT", "FF", "frame us", "rate Mev/s", "power W", "energy gain"
    );
    for n_pe in [1usize, 2, 4, 8] {
        let config = AcceleratorConfig::default().with_pe_zi(n_pe);
        print_row(&config, &format!("{n_pe}"));
    }

    println!("\n--- depth-plane sweep (2x PE_Zi) ---");
    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>12} {:>9} {:>12}",
        "N_z", "LUT", "FF", "frame us", "rate Mev/s", "power W", "energy gain"
    );
    for planes in [25usize, 50, 100, 200] {
        let config = AcceleratorConfig::default().with_depth_planes(planes);
        print_row(&config, &format!("{planes}"));
    }

    println!("\n--- double buffering ablation ---");
    for (label, enabled) in [
        ("with double buffering", true),
        ("without double buffering", false),
    ] {
        let config = AcceleratorConfig::default().with_double_buffering(enabled);
        let perf = performance(&config);
        println!(
            "{label:<26}: normal frame {:.2} us, event rate {:.2} Mev/s",
            perf.normal_frame_us,
            perf.event_rate_normal / 1e6
        );
    }

    println!("\n--- pipeline simulation (40 frames, key frame every 10) ---");
    for n_pe in [1usize, 2, 4] {
        let config = AcceleratorConfig::default().with_pe_zi(n_pe);
        let trace = PipelineSimulator::new(config.clone()).simulate_periodic(40, 10);
        println!(
            "{n_pe} PE_Zi: total {:.2} ms, proportional-module utilization {:.1}%, \
             canonical hidden behind it {:.1}% of the time",
            config.fabric_clock.cycles_to_seconds(trace.total_cycles) * 1e3,
            100.0 * trace.proportional_utilization(),
            100.0 * (1.0 - trace.canonical_utilization())
        );
        let key_frames = trace
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Key)
            .count();
        assert_eq!(key_frames, 4);
    }

    println!(
        "\nThe prototype point (2x PE_Zi) is where address generation stops being the\n\
         bottleneck: beyond it the Vote Execute Unit's DRAM read-modify-write traffic\n\
         limits throughput, so more PEs add area and power without speedup — which is\n\
         why the paper ships two."
    );
    Ok(())
}

fn print_row(config: &AcceleratorConfig, label: &str) {
    let resources = estimate_resources(config);
    let perf = performance(config);
    let power = PowerModel::default().accelerator_power_w(config, &resources);
    // Energy-efficiency gain over the CPU at equal throughput is the power
    // ratio (Table 3's 24x headline for the prototype point).
    let gain = INTEL_I5_POWER_W / power;
    println!(
        "{label:>6} {:>9} {:>9} {:>10.2} {:>12.2} {:>9.2} {:>11.1}x",
        resources.total_luts(),
        resources.total_flip_flops(),
        perf.normal_frame_us,
        perf.event_rate_normal / 1e6,
        power,
        gain
    );
}
