//! Reconstruct the `simulation_3planes` scene and export the semi-dense map
//! as a PLY point cloud — the workflow behind Fig. 7b of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example reconstruct_3planes
//! ```
//!
//! The point cloud is written to `results/example_3planes.ply`.

use eventor::core::{config_for_sequence, EventorOptions, EventorPipeline};
use eventor::dsi::PointCloud;
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use std::error::Error;
use std::fs;

fn main() -> Result<(), Box<dyn Error>> {
    let sequence =
        SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())?;
    println!(
        "generated `{}`: {} events, ground-truth depth {:.2}..{:.2} m",
        sequence.name(),
        sequence.events.len(),
        sequence.ground_truth_depth.min_finite().unwrap_or(f64::NAN),
        sequence.ground_truth_depth.max_finite().unwrap_or(f64::NAN),
    );

    let config = config_for_sequence(&sequence, 100);
    let pipeline = EventorPipeline::new(sequence.camera, config, EventorOptions::accelerator())?;
    let output = pipeline.reconstruct(&sequence.events, &sequence.trajectory)?;

    // Merge the per-key-frame clouds into a global map and drop isolated
    // outliers (the "map updating" step of the paper's workflow).
    let mut global = PointCloud::new();
    for keyframe in &output.keyframes {
        println!(
            "key frame at {}: {} events, {} map points",
            keyframe.reference_pose.translation,
            keyframe.events_used,
            keyframe.local_cloud.len()
        );
        global.merge(&keyframe.local_cloud);
    }
    let filtered = global.radius_outlier_filtered(0.1, 2);

    fs::create_dir_all("results")?;
    let path = "results/example_3planes.ply";
    filtered.write_ply(std::io::BufWriter::new(fs::File::create(path)?))?;
    println!("wrote {} points to {path}", filtered.len());

    // The scene contains three planes at 1.2 m, 2.0 m and 3.0 m: report how
    // close the reconstructed points lie to them.
    let mean_distance = filtered.mean_z_distance_to_planes(&[1.2, 2.0, 3.0])?;
    println!("mean |z - nearest plane| = {mean_distance:.3} m");
    Ok(())
}
