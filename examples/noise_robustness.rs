//! Noise-robustness sweep: corrupt the event stream with increasing sensor
//! degradation (background activity, hot pixels, timestamp jitter, event
//! loss) and measure how the baseline EMVS and the Eventor pipeline hold up.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example noise_robustness
//! ```

use eventor::core::{config_for_sequence, EventorOptions, EventorPipeline};
use eventor::emvs::EmvsMapper;
use eventor::events::{
    rate_profile, DatasetConfig, NoiseConfig, NoiseInjector, SequenceKind, SyntheticSequence,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let sequence =
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
    let config = config_for_sequence(&sequence, 60);
    let width = sequence.camera.intrinsics.width as u16;
    let height = sequence.camera.intrinsics.height as u16;

    let levels: [(&str, NoiseConfig); 3] = [
        ("clean", NoiseConfig::clean()),
        ("moderate", NoiseConfig::moderate()),
        ("severe", NoiseConfig::severe()),
    ];

    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "noise", "events", "added", "peak Mev/s", "EMVS AbsRel", "Eventor AbsRel"
    );
    for (label, noise) in levels {
        let injector = NoiseInjector::new(width, height, noise);
        let (events, report) = injector.corrupt(&sequence.events);
        let peak = rate_profile(&events, 0.01).map_or(0.0, |p| p.peak_rate / 1e6);

        let baseline = EmvsMapper::new(sequence.camera, config.clone())?;
        let base_out = baseline.reconstruct(&events, &sequence.trajectory)?;
        let base_abs_rel = abs_rel(&sequence, &base_out)?;

        let eventor = EventorPipeline::new(
            sequence.camera,
            config.clone(),
            EventorOptions::accelerator(),
        )?;
        let ev_out = eventor.reconstruct(&events, &sequence.trajectory)?;
        let ev_abs_rel = abs_rel(&sequence, &ev_out)?;

        println!(
            "{:<10} {:>9} {:>9} {:>10.2} {:>11.2}% {:>11.2}%",
            label,
            events.len(),
            report.background_events + report.hot_pixel_events,
            peak,
            100.0 * base_abs_rel,
            100.0 * ev_abs_rel
        );
    }

    println!(
        "\nThe voting-based space sweep tolerates uncorrelated noise: noise rays rarely\n\
         reinforce each other, so the local maxima of the ray-density volume (the detected\n\
         structure) move little until the noise dominates the signal."
    );
    Ok(())
}

fn abs_rel(
    sequence: &SyntheticSequence,
    output: &eventor::emvs::EmvsOutput,
) -> Result<f64, Box<dyn Error>> {
    let primary = output.primary().ok_or("no key frame")?;
    let gt = sequence.ground_truth_depth_at(&primary.reference_pose);
    Ok(primary
        .depth_map
        .compare_to_ground_truth(gt.as_slice())?
        .abs_rel)
}
