//! Drive the accelerator hardware model: estimate the FPGA resources, the
//! per-frame timing, the power and the energy-efficiency gain of Eventor over
//! the CPU baseline for a real reconstruction workload, and sweep the number
//! of `PE_Zi` to explore the design space.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example accelerator_pipeline
//! ```

use eventor::core::{config_for_sequence, AcceleratorRun};
use eventor::emvs::EmvsMapper;
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::hwsim::{AcceleratorConfig, INTEL_I5_POWER_W};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A reconstruction workload: the synthetic 3-walls sequence.
    let sequence =
        SyntheticSequence::generate(SequenceKind::ThreeWalls, &DatasetConfig::fast_test())?;
    let config = config_for_sequence(&sequence, 100);
    let mapper = EmvsMapper::new(sequence.camera, config.clone())?;
    let output = mapper.reconstruct(&sequence.events, &sequence.trajectory)?;
    let cpu_profile = &output.profile;
    println!(
        "CPU baseline processed {} frames ({} key frames) in {:.2} ms of P+R time",
        cpu_profile.frames_processed,
        cpu_profile.keyframes,
        cpu_profile.projection_raycounting_time().as_secs_f64() * 1e3
    );

    // Evaluate the paper's prototype configuration on the same workload.
    let accel_config = AcceleratorConfig::default()
        .with_events_per_frame(config.events_per_frame)
        .with_depth_planes(config.num_depth_planes);
    let run = AcceleratorRun::evaluate_from_profile(&accel_config, cpu_profile);
    println!("\nEventor prototype (1x PE_Z0, 2x PE_Zi, double buffering):");
    println!(
        "  resources          : {} LUT, {} FF, {:.0} KB BRAM",
        run.resources.total_luts(),
        run.resources.total_flip_flops(),
        run.resources.total_bram_bytes() as f64 / 1024.0
    );
    println!(
        "  P(Z0) per frame    : {:.2} us",
        run.performance.canonical_us
    );
    println!(
        "  P(Z0;Zi)+R per frame: {:.2} us",
        run.performance.proportional_us
    );
    println!(
        "  event rate         : {:.2} Mevents/s",
        run.performance.event_rate_normal / 1e6
    );
    println!(
        "  power              : {:.2} W (CPU: {:.0} W)",
        run.power_w, INTEL_I5_POWER_W
    );
    let energy = run.energy_versus_cpu(cpu_profile);
    println!(
        "  energy efficiency  : {:.1}x better than the CPU baseline",
        energy.efficiency_gain()
    );

    // Design-space sweep: how does the PE_Zi count trade throughput for area?
    println!("\nPE_Zi sweep:");
    println!(
        "{:>6} {:>12} {:>14} {:>10} {:>10}",
        "PE_Zi", "LUT", "frame (us)", "Mev/s", "power W"
    );
    for n_pe in [1usize, 2, 4, 8] {
        let cfg = accel_config.clone().with_pe_zi(n_pe);
        let sweep = AcceleratorRun::evaluate_from_profile(&cfg, cpu_profile);
        println!(
            "{:>6} {:>12} {:>14.2} {:>10.2} {:>10.2}",
            n_pe,
            sweep.resources.total_luts(),
            sweep.performance.normal_frame_us,
            sweep.performance.event_rate_normal / 1e6,
            sweep.power_w
        );
    }
    Ok(())
}
