//! Build a custom scene and trajectory from scratch, simulate an event
//! camera flying through it, and reconstruct the scene with Eventor — the
//! workflow a user would follow to test the system on their own geometry
//! rather than the four built-in evaluation sequences.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_scene
//! ```

use eventor::core::{EventorOptions, EventorPipeline};
use eventor::emvs::EmvsConfig;
use eventor::events::{EventCameraSimulator, PlanarPatch, Scene, SimulatorConfig, Texture};
use eventor::geom::{
    CameraIntrinsics, CameraModel, DistortionModel, Pose, Trajectory, UnitQuaternion, Vec3,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A custom camera: half-resolution DAVIS with a mild lens distortion.
    let camera = CameraModel::new(
        CameraIntrinsics::new(100.0, 100.0, 60.0, 45.0, 120, 90)?,
        DistortionModel::radial(-0.2, 0.05, 0.0),
    );

    // 2. A custom scene: a slanted billboard and a distant backdrop.
    let mut scene = Scene::new();
    scene.add_patch(PlanarPatch::oriented(
        Vec3::new(-0.2, 0.0, 1.4),
        Vec3::new(1.0, 0.0, 0.35),
        Vec3::Y,
        0.8,
        0.6,
        Texture::Blobs {
            spacing: 0.18,
            radius_fraction: 0.4,
            seed: 2024,
        },
    ));
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.3, 0.1, 2.8),
        3.0,
        2.4,
        Texture::MultiScaleSine {
            base_frequency: 2.0,
            octaves: 4,
            phase: 0.2,
        },
    ));

    // 3. A custom trajectory: a sideways sweep with a slight yaw.
    let start = Pose::new(
        UnitQuaternion::from_euler(0.0, 0.0, 0.03),
        Vec3::new(-0.35, 0.0, 0.0),
    );
    let end = Pose::new(
        UnitQuaternion::from_euler(0.0, 0.0, -0.03),
        Vec3::new(0.35, 0.05, 0.0),
    );
    let trajectory = Trajectory::linear(start, end, 0.0, 1.5, 80);

    // 4. Simulate the event camera.
    let simulator = EventCameraSimulator::new(
        camera,
        SimulatorConfig {
            samples: 120,
            contrast_threshold: 0.15,
            noise_rate: 0.02,
            ..Default::default()
        },
    );
    let (events, stats) = simulator.simulate(&scene, &trajectory)?;
    println!(
        "simulated {} events ({} noise, {:.2} Mev/s)",
        stats.total_events,
        stats.noise_events,
        stats.mean_event_rate / 1e6
    );

    // 5. Reconstruct with the Eventor pipeline.
    let config = EmvsConfig::default()
        .with_depth_range(0.8, 4.0)
        .with_depth_planes(100)
        .with_keyframe_distance(0.5);
    let pipeline = EventorPipeline::new(camera, config, EventorOptions::accelerator())?;
    let output = pipeline.reconstruct(&events, &trajectory)?;

    for (i, keyframe) in output.keyframes.iter().enumerate() {
        println!(
            "key frame {i}: {} semi-dense pixels, mean depth {:.2} m",
            keyframe.depth_map.valid_count(),
            keyframe.depth_map.mean_depth()
        );
    }
    println!("global map: {} points", output.global_map.len());
    Ok(())
}
