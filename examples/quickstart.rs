//! Quickstart: generate a synthetic event-camera sequence, run both the
//! baseline EMVS and the Eventor pipeline on it, and compare their semi-dense
//! depth maps against ground truth.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eventor::core::{config_for_sequence, EventorOptions, EventorPipeline};
use eventor::emvs::EmvsMapper;
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Generate a synthetic stand-in for the DAVIS `slider_close` sequence
    //    (a textured target observed from a linear slider). `fast_test`
    //    keeps the example quick; use `DatasetConfig::paper_scale()` for the
    //    full 240x180 resolution.
    let sequence =
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
    println!(
        "sequence `{}`: {} events over {:.2} s ({:.2} Mev/s)",
        sequence.name(),
        sequence.events.len(),
        sequence.events.duration(),
        sequence.stats.mean_event_rate / 1e6
    );

    // 2. Configure the mapper from the sequence metadata (depth range,
    //    key-frame spacing proportional to the scene depth).
    let config = config_for_sequence(&sequence, 100);

    // 3. Baseline EMVS: bilinear voting, full floating point.
    let baseline = EmvsMapper::new(sequence.camera, config.clone())?;
    let baseline_output = baseline.reconstruct(&sequence.events, &sequence.trajectory)?;

    // 4. Eventor: rescheduled dataflow, nearest voting, Table 1 quantization.
    let eventor = EventorPipeline::new(sequence.camera, config, EventorOptions::accelerator())?;
    let eventor_output = eventor.reconstruct(&sequence.events, &sequence.trajectory)?;

    // 5. Compare both against the rendered ground truth.
    for (name, output) in [
        ("baseline EMVS", &baseline_output),
        ("Eventor", &eventor_output),
    ] {
        let primary = output.keyframes.first().expect("at least one key frame");
        let gt = sequence.ground_truth_depth_at(&primary.reference_pose);
        let metrics = primary.depth_map.compare_to_ground_truth(gt.as_slice())?;
        println!(
            "{name:<14}: {} key frames, {} semi-dense pixels, AbsRel {:.2}%, completeness {:.1}%",
            output.keyframes.len(),
            primary.depth_map.valid_count(),
            100.0 * metrics.abs_rel,
            100.0 * metrics.completeness
        );
    }

    println!(
        "baseline P+R share of runtime: {:.1}%",
        100.0 * baseline_output.profile.projection_raycounting_fraction()
    );
    Ok(())
}
