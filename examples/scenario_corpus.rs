//! Tour of the scenario corpus: list the catalog, build a world from its
//! seed, reconstruct it, record it as an `eventor-evtr/1` file, and replay
//! the record to the **same digest** — the deterministic record/replay loop
//! behind `eventor-cli` and the CI regression matrix (`docs/SCENARIOS.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scenario_corpus
//! ```

use eventor::events::{read_evtr, write_evtr};
use eventor::scenarios::{
    corpus, digest_output, find, golden_digest, run_world, BackendKind, Scenario, ScenarioWorld,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The catalog: ten named worlds spanning trajectories, noise regimes
    //    and depth structures, each deterministic in a u64 seed.
    println!("{:<20} {:<46} tags", "scenario", "description");
    for s in corpus() {
        println!(
            "{:<20} {:<46} {}",
            s.name(),
            s.description(),
            s.tags().join(",")
        );
    }

    // 2. Build one world at its default seed (the seed the golden digest is
    //    recorded at) and reconstruct it on the software backend.
    let scenario = find("orbit_burst").expect("corpus scenario");
    let world = scenario.build(scenario.default_seed())?;
    println!(
        "\n{}: {} events, {} poses, {} depth planes",
        world.name,
        world.events.len(),
        world.trajectory.len(),
        world.config.num_depth_planes,
    );
    let output = run_world(&world, BackendKind::Software)?;
    let digest = digest_output(&output);
    println!(
        "reconstructed {} key frames, digest {digest:#018x} (golden: {:#018x})",
        output.output.keyframes.len(),
        golden_digest(&world.name).expect("corpus scenario has a golden"),
    );

    // 3. Record the run: events + poses into the checksummed binary
    //    container. The record is the full session input.
    let path = std::env::temp_dir().join("eventor_scenario_corpus_demo.evtr");
    write_evtr(
        &world.events,
        &world.trajectory,
        std::fs::File::create(&path)?,
    )?;
    println!(
        "recorded -> {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 4. Replay: read the record back and run it through a *different*
    //    backend. Bit-identical input + bit-identical datapath = the same
    //    digest, which is exactly what CI asserts for every scenario.
    let (events, trajectory) = read_evtr(std::fs::File::open(&path)?)?;
    let replayed_world = ScenarioWorld {
        events,
        trajectory,
        ..world
    };
    let replayed = run_world(&replayed_world, BackendKind::Sharded)?;
    let replay_digest = digest_output(&replayed);
    println!("replayed on the sharded backend: digest {replay_digest:#018x}");
    assert_eq!(digest, replay_digest, "replay must reproduce the digest");
    println!("record/replay round trip is bit-identical — OK");
    let _ = std::fs::remove_file(&path);
    Ok(())
}
