//! Streaming session quick-start: push/poll ingestion with the co-simulated
//! accelerator backend.
//!
//! The example plays the role of an online host: pose samples and event
//! packets arrive incrementally (here replayed from a synthetic sequence),
//! the session votes each aggregated frame on the functional `eventor-hwsim`
//! device, and `poll()` surfaces key frames as they finish — no batch
//! `reconstruct()` call, no full stream in memory.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_session
//! ```

use eventor::core::{config_for_sequence, EventorSession, SessionEvent};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::hwsim::AcceleratorConfig;
use eventor::map::GlobalMapConfig;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A synthetic stand-in for a live sensor + odometry feed.
    let sequence =
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
    let config = config_for_sequence(&sequence, 100);

    // 2. One validated configuration path, one backend choice: here the
    //    co-simulated FPGA device, with incremental global-map fusion and a
    //    bounded in-flight buffer (backpressure instead of unbounded growth).
    let mut session = EventorSession::builder(sequence.camera, config.clone())
        .cosim(AcceleratorConfig::default())
        .fuse_into_map(GlobalMapConfig::default())
        .max_pending_events(8 * config.events_per_frame)
        .build()?;

    // 3. Interleave pose and event pushes the way an online feed would:
    //    poses first (frames wait for trajectory coverage), then event
    //    packets of arbitrary size, polling as we go.
    for sample in sequence.trajectory.iter() {
        session.push_pose(sample.timestamp, sample.pose)?;
    }
    let packet_size = 512;
    for packet in sequence.events.packets(packet_size) {
        session.push_events(packet)?;
        for event in session.poll()? {
            match event {
                SessionEvent::SegmentRetired {
                    index,
                    frames,
                    events,
                } => {
                    println!("segment {index} retired: {frames} frames, {events} events");
                }
                SessionEvent::DepthMapReady {
                    index,
                    valid_pixels,
                } => {
                    println!("depth map {index} ready: {valid_pixels} semi-dense pixels");
                }
                SessionEvent::KeyframeReady {
                    index,
                    votes_cast,
                    map_points,
                } => {
                    println!("keyframe {index} ready: {votes_cast} votes, {map_points} points");
                }
                SessionEvent::MapFused {
                    index, new_voxels, ..
                } => {
                    println!("keyframe {index} fused: {new_voxels} new voxels in the global map");
                }
                _ => {}
            }
        }
    }

    // 4. Flush the trailing partial frame and collect the batch-shaped
    //    output plus the accelerator activity report.
    let finished = session.finish()?;
    let report = finished.cosim_report.expect("cosim backend ran");
    println!(
        "\n{} key frames, {} events, accelerator busy {:.3} ms ({:.2} Mev/s modelled)",
        finished.output.keyframes.len(),
        finished.output.profile.events_processed,
        1e3 * report.accelerator_seconds,
        report.events_in as f64 / report.accelerator_seconds / 1e6,
    );
    if let Some(map) = &finished.fused_map {
        let stats = map.statistics();
        println!(
            "fused global map: {} points in {} voxels from {} key frames",
            stats.map_points, stats.occupied_voxels, stats.keyframes
        );
    }
    Ok(())
}
