//! Full-trajectory global mapping: reconstruct a sequence key frame by key
//! frame, merge every local depth map into the voxel-grid global map, fuse
//! overlapping depth maps at the image level, and export the result as a PLY
//! point cloud.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example global_mapping
//! ```

use eventor::core::{config_for_sequence, EventorOptions, EventorPipeline};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::map::{DepthFusion, FusionConfig, GlobalMap, GlobalMapConfig};
use std::error::Error;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Reconstruct the three-walls scene with the Eventor pipeline.
    let sequence =
        SyntheticSequence::generate(SequenceKind::ThreeWalls, &DatasetConfig::fast_test())?;
    // Tighten the key-frame spacing so the trajectory yields several key
    // reference views to merge (the default spacing targets larger scenes).
    let keyframe_distance = (sequence.trajectory.path_length() / 4.0).max(1e-3);
    let config = config_for_sequence(&sequence, 80).with_keyframe_distance(keyframe_distance);
    let pipeline = EventorPipeline::new(sequence.camera, config, EventorOptions::accelerator())?;
    let output = pipeline.reconstruct(&sequence.events, &sequence.trajectory)?;
    println!(
        "reconstructed `{}`: {} key frames, {} raw map points",
        sequence.name(),
        output.keyframes.len(),
        output.global_map.len()
    );

    // 2. Merge every key frame into the voxel-grid global map (the EMVS
    //    map-updating stage, with deduplication and support-based pruning).
    let mut map = GlobalMap::new(GlobalMapConfig {
        voxel_resolution: 0.02,
        min_voxel_support: 1,
    })?;
    for (i, kf) in output.keyframes.iter().enumerate() {
        let contributed = map.insert_depth_map(
            &kf.depth_map,
            &sequence.camera.intrinsics,
            &kf.reference_pose,
        );
        println!(
            "  keyframe {i}: {} semi-dense pixels -> {} points (mean depth {:.2} m)",
            kf.depth_map.valid_count(),
            contributed,
            map.keyframes()[i].mean_depth
        );
    }
    let stats = map.statistics();
    println!("\n--- global map ---");
    println!("key frames       : {}", stats.keyframes);
    println!("raw points       : {}", stats.raw_points);
    println!(
        "map points       : {} ({} voxels occupied)",
        stats.map_points, stats.occupied_voxels
    );
    println!("mean confidence  : {:.1}", stats.mean_confidence);
    println!(
        "extent           : {:.2} x {:.2} x {:.2} m",
        stats.extent.x, stats.extent.y, stats.extent.z
    );

    // 3. Image-domain fusion of the key-frame depth maps (all key frames of
    //    these sequences share the sensor resolution and a nearby viewpoint).
    let first = &output.keyframes[0].depth_map;
    let mut fusion = DepthFusion::new(first.width(), first.height(), FusionConfig::default())?;
    for kf in &output.keyframes {
        fusion.fuse(&kf.depth_map)?;
    }
    let fused = fusion.finalize()?;
    println!("\n--- depth-map fusion ---");
    println!("maps fused       : {}", fusion.maps_fused());
    println!(
        "coverage         : {} -> {} valid pixels",
        first.valid_count(),
        fused.valid_count()
    );
    println!("rejected outliers: {}", fusion.rejected_observations());

    // 4. Export the deduplicated global map for external viewers.
    let path = "results/global_map_3walls.ply";
    std::fs::create_dir_all("results")?;
    map.write_ply(BufWriter::new(File::create(path)?))?;
    println!("\nwrote {path} ({} points)", map.point_cloud().len());

    Ok(())
}
