//! Hardware/software co-simulation: run the quantized software pipeline and
//! the functional register/DMA/datapath device model on the same sequence and
//! verify that they agree bit-exactly, then report the accelerator activity
//! the device observed (frames, votes, modelled latency, AXI traffic).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cosim_verification
//! ```

use eventor::core::{config_for_sequence, CosimPipeline, EventorOptions, EventorPipeline};
use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor::hwsim::AcceleratorConfig;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Generate the synthetic stand-in for `simulation_3planes`.
    let sequence =
        SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())?;
    let config = config_for_sequence(&sequence, 60);
    println!(
        "sequence `{}`: {} events, {} expected frames of {}",
        sequence.name(),
        sequence.events.len(),
        sequence.events.len().div_ceil(config.events_per_frame),
        config.events_per_frame
    );

    // 2. Software reference: the quantized, nearest-voting Eventor pipeline.
    let software = EventorPipeline::new(
        sequence.camera,
        config.clone(),
        EventorOptions::accelerator(),
    )?;
    let sw = software.reconstruct(&sequence.events, &sequence.trajectory)?;

    // 3. Device co-simulation: the same dataflow driven through the
    //    register/DMA interface of the functional accelerator model.
    let mut cosim = CosimPipeline::new(sequence.camera, config, AcceleratorConfig::default())?;
    let hw = cosim.reconstruct(&sequence.events, &sequence.trajectory)?;

    // 4. Co-verification: key-frame by key-frame agreement.
    println!("\n--- co-verification ---");
    assert_eq!(sw.keyframes.len(), hw.keyframes.len());
    let mut identical = true;
    for (i, (s, h)) in sw.keyframes.iter().zip(&hw.keyframes).enumerate() {
        let depth_equal = s.depth_map.depth_data() == h.depth_map.depth_data();
        identical &= depth_equal && s.votes_cast == h.votes_cast;
        println!(
            "keyframe {i}: votes sw={} hw={}  depth maps {}",
            s.votes_cast,
            h.votes_cast,
            if depth_equal { "IDENTICAL" } else { "DIVERGED" }
        );
    }
    println!(
        "overall: {}",
        if identical {
            "bit-exact agreement"
        } else {
            "MISMATCH"
        }
    );

    // 5. What the device measured while doing it.
    let report = cosim.report();
    let device = cosim.device();
    println!("\n--- accelerator activity (device model) ---");
    println!(
        "frames executed        : {} ({} key)",
        report.frames, report.key_frames
    );
    println!(
        "events in / dropped    : {} / {}",
        report.events_in, report.events_dropped
    );
    println!("votes applied          : {}", report.votes_applied);
    println!(
        "mean normal frame      : {:.2} us",
        report.mean_normal_frame_us
    );
    println!(
        "mean key frame         : {:.2} us",
        report.mean_key_frame_us
    );
    println!(
        "accelerator busy time  : {:.3} ms",
        report.accelerator_seconds * 1e3
    );
    println!(
        "event rate             : {:.2} Mev/s",
        report.events_in as f64 / report.accelerator_seconds / 1e6
    );
    let dram = device.dsi().stats();
    println!(
        "DSI DRAM traffic       : {} RMW votes, {:.2} MB moved",
        dram.vote_rmw_ops,
        dram.score_bytes() as f64 / 1e6
    );
    println!(
        "host register accesses : {}",
        device.registers().host_accesses()
    );
    println!(
        "activity-based energy  : {:.3} mJ total, {:.0} nJ/event, {:.2} W average",
        report.energy.total_j() * 1e3,
        report.energy.nj_per_event(),
        report.energy.average_power_w()
    );

    Ok(())
}
