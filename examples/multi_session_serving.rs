//! Multi-session serving quick-start: six concurrent streams — corpus
//! scenarios with different trajectories, noise regimes and depth
//! structures, on a mix of execution backends — served by one `ServeEngine`
//! over a bounded worker pool.
//!
//! The example plays the role of a serving host: producers enqueue poses and
//! event packets into per-session bounded queues, `pump()` runs fair
//! round-robin scheduling rounds over the worker pool, `poll_serve()` /
//! `poll_session()` surface lifecycle events, and `shutdown()` returns every
//! stream's terminal reconstruction. Each session's output is bit-identical
//! to running its stream alone (`tests/serve_equivalence.rs`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_session_serving
//! ```

use eventor::core::{EventorOptions, EventorSession, ParallelConfig};
use eventor::hwsim::AcceleratorConfig;
use eventor::scenarios::{heterogeneous_pool, ScenarioWorld};
use eventor::serve::{ServeConfig, ServeEngine, ServeEvent};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Six heterogeneous workloads straight from the scenario corpus
    //    (`docs/SCENARIOS.md`): orbit/spiral/dolly trajectories, burst and
    //    dropout degradations, sparse to multi-plane depth structure.
    let workloads: Vec<ScenarioWorld> = heterogeneous_pool(6, 0xDE40)?;

    // 2. The serving engine: a bounded worker pool with per-session bounded
    //    ingest queues (see docs/SERVING.md for sizing guidance).
    let mut engine = ServeEngine::new(
        ServeConfig::new()
            .with_workers(4)
            .with_queue_capacity(32 * 1024)
            .with_quantum_events(4 * 1024),
    );

    // 3. Admit one session per workload — backends can be mixed freely.
    let mut ids = Vec::new();
    for (i, world) in workloads.iter().enumerate() {
        let builder = EventorSession::builder(world.camera, world.config.clone());
        let session = match i % 3 {
            0 => builder.software(EventorOptions::accelerator()),
            1 => builder.sharded(
                EventorOptions::accelerator(),
                ParallelConfig::with_shards(2),
            ),
            _ => builder.cosim(AcceleratorConfig::default()),
        }
        .build()?;
        let id = engine.admit(session);
        let backend = engine.session_metrics(id)?.backend;
        println!("admitted {id} [{}] on the {backend} backend", world.name);
        ids.push(id);
    }

    // 4. Feed all six producers concurrently: poses up front (a live feed
    //    would interleave them), then event packets round-robin, pumping the
    //    pool as traffic arrives. Backpressure (a full queue) is handled by
    //    pumping and retrying — no producer can exhaust memory.
    let streams: Vec<&[eventor::events::Event]> =
        workloads.iter().map(|w| w.events.as_slice()).collect();
    for (&id, world) in ids.iter().zip(&workloads) {
        engine.enqueue_trajectory(id, &world.trajectory)?;
    }
    let mut cursors = vec![0usize; ids.len()];
    loop {
        let mut idle = true;
        for (i, &id) in ids.iter().enumerate() {
            let stream = streams[i];
            if cursors[i] >= stream.len() {
                continue;
            }
            idle = false;
            let end = (cursors[i] + 4096).min(stream.len());
            // A full queue is fine: the pump below frees space.
            if let Ok(accepted) = engine.enqueue_events(id, &stream[cursors[i]..end]) {
                cursors[i] += accepted;
            }
        }
        engine.pump();
        if idle {
            break;
        }
    }

    // 5. Graceful end-of-stream: close every session, drain the pool, report
    //    the engine-level lifecycle and the serving metrics.
    for &id in &ids {
        engine.close(id)?;
    }
    engine.drain()?;
    for event in engine.poll_serve() {
        if let ServeEvent::SessionFinished {
            session,
            keyframes,
            events_processed,
        } = event
        {
            println!("{session} finished: {keyframes} key frames from {events_processed} events");
        }
    }
    println!("\nper-session serving metrics:");
    println!("  session  backend   events/s     depth maps/s  busy s");
    for &id in &ids {
        let m = engine.session_metrics(id)?;
        println!(
            "  {:<8} {:<9} {:>10.0}   {:>10.2}   {:>6.3}",
            format!("#{}", id.index()),
            m.backend,
            m.events_per_second,
            m.depth_maps_per_second,
            m.busy_seconds,
        );
    }
    let m = engine.metrics();
    println!(
        "\naggregate: {} sessions on {} workers, {:.0} events/s, {:.2} depth maps/s, \
         {:.0}% pool utilisation over {} pump rounds",
        m.sessions,
        m.workers,
        m.events_per_second,
        m.depth_maps_per_second,
        100.0 * m.utilization,
        m.pump_rounds,
    );

    // 6. Shutdown hands back every terminal output (here: already finished).
    for (id, result) in engine.shutdown() {
        let output = result.expect("all sessions finished during drain");
        let cloud = output.output.global_map.len();
        println!("{id}: {cloud} global map points");
    }
    Ok(())
}
