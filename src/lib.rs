//! # eventor
//!
//! Facade crate for the **Eventor** reproduction — "Eventor: An Efficient
//! Event-Based Monocular Multi-View Stereo Accelerator on FPGA Platform"
//! (DAC 2022).
//!
//! Each subsystem lives in its own workspace crate and is re-exported here as
//! a module, so a downstream user can depend on `eventor` alone:
//!
//! | module | contents |
//! |---|---|
//! | [`geom`] | vectors, matrices, SE(3) poses, trajectories, pinhole cameras, plane-induced homographies |
//! | [`events`] | event streams, aggregation, textured scenes, the event-camera simulator, the four synthetic evaluation sequences |
//! | [`fixed`] | the Table 1 fixed-point formats and quantization analysis |
//! | [`dsi`] | the disparity space image, voting, scene-structure detection, depth maps, point clouds |
//! | [`emvs`] | the baseline (original) EMVS space-sweep mapper and its profiler |
//! | [`map`] | global mapping: voxel-grid downsampling, depth-map fusion, the accumulated world map |
//! | [`hwsim`] | the Zynq accelerator model: analytic timing/resources/power plus the functional register/DMA/datapath device |
//! | [`core`] | the reformulated, quantized Eventor pipeline, the accelerator driver, hardware/software co-simulation and the accuracy-comparison harness |
//! | [`serve`] | the multi-session serving engine: many concurrent streaming sessions multiplexed over a bounded worker pool |
//! | [`scenarios`] | the versioned scenario corpus: seeded synthetic worlds, reconstruction digests, the golden regression table |
//! | [`net`] | the TCP serving front-end: the versioned `eventor-wire/1` protocol, server and client, over `std::net` |
//!
//! ## Quick start: the streaming session API
//!
//! ```no_run
//! use eventor::core::{config_for_sequence, EventorOptions, EventorSession, SessionEvent};
//! use eventor::events::{DatasetConfig, SequenceKind, SyntheticSequence};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A synthetic stand-in for a live sensor + odometry feed.
//! let sequence = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
//!
//! // Push-based incremental reconstruction on the accelerator datapath.
//! let mut session = EventorSession::builder(sequence.camera, config_for_sequence(&sequence, 100))
//!     .software(EventorOptions::accelerator())
//!     .build()?;
//! for sample in sequence.trajectory.iter() {
//!     session.push_pose(sample.timestamp, sample.pose)?;
//! }
//! for packet in sequence.events.packets(1024) {
//!     session.push_events(packet)?;
//!     for event in session.poll()? {
//!         if let SessionEvent::KeyframeReady { index, .. } = event {
//!             println!("keyframe {index} ready");
//!         }
//!     }
//! }
//! let finished = session.finish()?;
//!
//! // Compare the semi-dense depth map against ground truth.
//! let primary = finished.output.keyframes.first().expect("at least one key frame");
//! let gt = sequence.ground_truth_depth_at(&primary.reference_pose);
//! let metrics = primary.depth_map.compare_to_ground_truth(gt.as_slice())?;
//! println!("AbsRel = {:.2}%", 100.0 * metrics.abs_rel);
//! # Ok(())
//! # }
//! ```
//!
//! The streaming session accepts pluggable execution backends
//! (`.software(..)`, `.sharded(..)`, `.cosim(..)` on the builder) with
//! bit-identical nearest-voting output, and the legacy batch entry points
//! (baseline mapper, reformulated pipeline, co-simulation) are thin
//! wrappers over it. All three also still accept a
//! [`core::ParallelConfig`] to run the reconstruction hot path on the
//! parallel sharded voting engine — see [`core::parallel`] and
//! `docs/ARCHITECTURE.md`. To serve **many** concurrent streams over shared
//! compute, admit the sessions into a [`serve::ServeEngine`]
//! (`docs/SERVING.md`), or put that engine behind a TCP socket with
//! [`net::WireServer`] and stream over the versioned `eventor-wire/1`
//! protocol (`docs/WIRE.md`).
//!
//! Test scenes come from the **scenario corpus** ([`scenarios`]): ten named,
//! seeded synthetic worlds with committed golden digests and deterministic
//! `.evtr` record/replay (`docs/SCENARIOS.md`, `eventor-cli`).
//!
//! See `README.md` for the crate map and the table mapping paper
//! figures/tables to their reproduction binaries, `docs/ARCHITECTURE.md` for
//! the dataflow/quantization/co-simulation contracts, and
//! `docs/BENCHMARKS.md` for the benchmark harness and its JSON schema.

#![deny(missing_docs)]

pub use eventor_core as core;
pub use eventor_dsi as dsi;
pub use eventor_emvs as emvs;
pub use eventor_events as events;
pub use eventor_fixed as fixed;
pub use eventor_geom as geom;
pub use eventor_hwsim as hwsim;
pub use eventor_map as map;
pub use eventor_net as net;
pub use eventor_scenarios as scenarios;
pub use eventor_serve as serve;

/// Compile-checks every Rust code block in the repository's `README.md`
/// (the quickstart and serving snippets are doctests, not prose): doc rot
/// in the front page fails `cargo test --doc`.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
