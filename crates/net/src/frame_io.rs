//! Blocking frame I/O over a [`TcpStream`]: tick-based reads that can
//! distinguish *idle between frames* from *stalled mid-frame*, and notice a
//! shutdown flag without platform-specific socket machinery.
//!
//! The reader polls the socket in short ticks (`set_read_timeout`). While
//! **zero** bytes of a frame have arrived the wait is governed by
//! [`IdleWait`]: a server waits indefinitely for the next request (checking
//! its stop flag each tick); a client waiting for a reply bounds the wait
//! and reports [`WireError::Timeout`]. Once the first byte of a frame has
//! arrived the peer is **mid-frame** and must keep making progress: a stall
//! longer than the read timeout is `Timeout { mid_frame: true }`, the
//! disorderly-client case the failure-injection suite drives (half a frame,
//! then silence — the server must not hang).

use crate::wire::{
    decode_frame, decode_header, encode_frame, WireError, WireFrame, CHECKSUM_LEN, HEADER_LEN,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long to wait for the *first* byte of the next frame.
#[derive(Debug, Clone, Copy)]
pub enum IdleWait {
    /// Wait indefinitely, checking the stop callback each tick (server side:
    /// an idle client costs nothing and may think for as long as it likes).
    UntilStopped,
    /// Give up with [`WireError::Timeout`] after this long (client side:
    /// a reply is due).
    Timeout(Duration),
}

/// Read-poll tick; also the latency bound for noticing a stop flag.
const TICK: Duration = Duration::from_millis(25);

/// Reads exactly `buf.len()` further bytes of a frame that has started
/// arriving (mid-frame rules: EOF is truncation, a stall past
/// `read_timeout` is a timeout).
fn read_exact_mid_frame(
    stream: &mut TcpStream,
    buf: &mut [u8],
    read_timeout: Duration,
    what: &'static str,
    already: usize,
) -> Result<(), WireError> {
    let mut at = 0usize;
    let mut last_progress = Instant::now();
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    what,
                    expected: already + buf.len(),
                    found: already + at,
                });
            }
            Ok(n) => {
                at += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_progress.elapsed() > read_timeout {
                    return Err(WireError::Timeout { mid_frame: true });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one complete frame.
///
/// # Errors
///
/// [`WireError::ConnectionClosed`] on a clean close (or a stop signal)
/// between frames, [`WireError::Timeout`] per the idle/mid-frame rules,
/// [`WireError::Truncated`] when the peer dies mid-frame, and every
/// [`decode_frame`] error for invalid bytes.
pub fn read_frame(
    stream: &mut TcpStream,
    max_payload: u32,
    read_timeout: Duration,
    idle: IdleWait,
    stop: &dyn Fn() -> bool,
) -> Result<(u64, WireFrame), WireError> {
    stream.set_read_timeout(Some(TICK))?;
    // Phase 1: wait for the first byte under the idle policy.
    let mut header = [0u8; HEADER_LEN];
    let idle_started = Instant::now();
    let got = loop {
        if stop() {
            return Err(WireError::ConnectionClosed);
        }
        match stream.read(&mut header) {
            Ok(0) => return Err(WireError::ConnectionClosed),
            Ok(n) => break n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let IdleWait::Timeout(limit) = idle {
                    if idle_started.elapsed() > limit {
                        return Err(WireError::Timeout { mid_frame: false });
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    };
    // Phase 2: the frame has started; finish the header, learn the payload
    // length, finish the frame — all under mid-frame rules.
    read_exact_mid_frame(
        stream,
        &mut header[got..],
        read_timeout,
        "frame header",
        got,
    )?;
    let (_, _, payload_len) = decode_header(&header, max_payload)?;
    let rest_len = payload_len as usize + CHECKSUM_LEN;
    let mut frame = Vec::with_capacity(HEADER_LEN + rest_len);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + rest_len, 0);
    read_exact_mid_frame(
        stream,
        &mut frame[HEADER_LEN..],
        read_timeout,
        "frame payload",
        HEADER_LEN,
    )?;
    decode_frame(&frame, max_payload)
}

/// Writes one frame.
///
/// # Errors
///
/// [`WireError::Io`] when the peer is gone or the socket fails.
pub fn write_frame(
    stream: &mut TcpStream,
    session: u64,
    frame: &WireFrame,
) -> Result<(), WireError> {
    let bytes = encode_frame(session, frame);
    stream.write_all(&bytes)?;
    stream.flush()?;
    Ok(())
}
