//! The `eventor-wire/1` TCP server: a readiness-loop front-end over one
//! [`ServeEngine`].
//!
//! ## Architecture
//!
//! One thread owns everything: the nonblocking listener, every connection's
//! read/write state machine, and the engine itself (no mutex — the loop is
//! the only accessor). Each sweep accepts pending connections, drains
//! readable sockets into per-connection reassembly buffers, dispatches every
//! complete frame, runs timeout/keepalive bookkeeping, and flushes outboxes
//! with vectored writes. When a sweep makes no progress the loop sleeps with
//! an adaptive backoff (200 µs doubling to 5 ms) — the 5 ms ceiling is the
//! coarse fallback timer for timeout bookkeeping and shutdown observation,
//! replacing the old fixed 25 ms poll tick. A slow or dead peer can never
//! block the loop: writes buffer in the connection's outbox and everything
//! nonblocking-fails forward.
//!
//! ## Connection protocol
//!
//! Every connection opens with `Hello` / `HelloOk` (capability exchange),
//! then issues any number of session and connection frames, and ends with
//! `Bye` / `ByeOk` — the ordered shutdown. Sessions are **owned by the
//! connection that admitted them**: frames naming another connection's
//! session get a typed `Error` reply, and when a connection ends — orderly
//! or not — every unfinished session it owns is
//! [`abort`](ServeEngine::abort)ed, so a vanished client surfaces as
//! `SessionFailed` in the engine's lifecycle feed instead of wedging the
//! drain.
//!
//! ## Admission control
//!
//! Two capacity gates, both replying typed — never a hang, never silence:
//!
//! * **connection limit** ([`NetConfig::max_conns`]): accepts past the cap
//!   get an `Error` frame with [`code::OVERLOADED`] and an immediate close;
//! * **session admission** ([`AdmissionConfig`]): `Admit` frames are
//!   rejected with [`code::OVERLOADED`] while the engine is over its live
//!   session cap or aggregate ingest-queue fraction. The connection stays
//!   usable and the client may retry.
//!
//! ## Keepalive
//!
//! With [`KeepaliveConfig`] enabled, a connection idle past the interval is
//! sent a `Ping`; any inbound traffic (a `Pong` or any other frame) proves
//! liveness. Only after [`KeepaliveConfig::max_misses`] unanswered pings is
//! the peer reaped — so an idle-but-alive client survives indefinitely while
//! a dead peer is distinguished and its sessions aborted (`docs/WIRE.md`
//! §7).
//!
//! ## Error discipline
//!
//! *Wire-level* violations (bad magic, checksum mismatch, malformed
//! payloads, a mid-frame stall past the read timeout) are unrecoverable for
//! the connection: the server sends a best-effort `Error` frame naming the
//! violation and closes. *Semantic* refusals (unknown scenario, duplicate
//! session id, closed session, overload) are typed `Rejected`/`Error`
//! replies and the connection stays usable. No client bytes — corrupt,
//! truncated, hostile — ever panic the server (`tests/` corruption suite).

use crate::manifest::SessionManifest;
use crate::wire::{
    code, decode_frame, decode_header, encode_frame, DepthMapFrame, WireError, WireFrame,
    WireSessionEvent, CHECKSUM_LEN, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use eventor_emvs::{EmvsError, KeyframeReconstruction};
use eventor_scenarios::digest_output;
use eventor_serve::{ServeConfig, ServeEngine, ServeError};
use std::collections::{HashMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Keepalive policy of a [`WireServer`] (`docs/WIRE.md` §7).
///
/// After a connection has been idle for [`interval`](Self::interval) the
/// server sends a `Ping`; every further interval without **any** inbound
/// traffic counts one miss, and at [`max_misses`](Self::max_misses) the peer
/// is declared dead: a best-effort `Error` naming the keepalive expiry is
/// sent, the connection is closed, and its unfinished sessions are aborted.
/// Any inbound byte resets the miss count — a busy peer is never pinged and
/// a slow-but-alive one is never reaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeepaliveConfig {
    /// Idle time before the first `Ping`, and the patience per miss after
    /// it. [`Duration::ZERO`] disables keepalive entirely.
    pub interval: Duration,
    /// Unanswered pings tolerated before the peer is reaped (min 1).
    pub max_misses: u32,
}

impl KeepaliveConfig {
    /// The default policy: ping after 30 s idle, reap after 3 misses.
    pub fn new() -> Self {
        Self {
            interval: Duration::from_secs(30),
            max_misses: 3,
        }
    }

    /// A policy pinging after `interval` idle (3 misses).
    pub fn every(interval: Duration) -> Self {
        Self {
            interval,
            max_misses: 3,
        }
    }

    /// Disables keepalive: idle connections are never probed or reaped.
    pub fn disabled() -> Self {
        Self {
            interval: Duration::ZERO,
            max_misses: 3,
        }
    }

    /// Replaces the miss budget (clamped to at least 1).
    pub fn with_max_misses(mut self, max_misses: u32) -> Self {
        self.max_misses = max_misses.max(1);
        self
    }

    /// Whether the policy probes at all.
    pub fn enabled(&self) -> bool {
        self.interval > Duration::ZERO
    }
}

impl Default for KeepaliveConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Session-admission policy of a [`WireServer`], driven by the engine's own
/// queue-depth/utilization metrics (`docs/SERVING.md` sizing notes).
///
/// When a gate trips, `Admit` is answered with `Rejected` carrying
/// [`code::OVERLOADED`]; the connection stays usable and the client may
/// retry once load drains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Most sessions allowed to be live (active + draining + failed) at
    /// once. `0` means unlimited.
    pub max_sessions: usize,
    /// Largest tolerated aggregate ingest-queue fullness, in `[0, 1]`
    /// (total queued events over total live queue capacity). `0.0` disables
    /// the gate.
    pub max_queue_fraction: f64,
}

impl AdmissionConfig {
    /// The default policy: no limits (every `Admit` is considered).
    pub fn new() -> Self {
        Self {
            max_sessions: 0,
            max_queue_fraction: 0.0,
        }
    }

    /// Replaces the live-session cap (`0` = unlimited).
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    /// Replaces the queue-fraction gate (clamped into `[0, 1]`; `0.0`
    /// disables).
    pub fn with_max_queue_fraction(mut self, fraction: f64) -> Self {
        self.max_queue_fraction = fraction.clamp(0.0, 1.0);
        self
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Configuration of the underlying serving engine.
    pub serve: ServeConfig,
    /// Largest payload accepted per frame, in bytes (advertised in
    /// `HelloOk`).
    pub max_payload: u32,
    /// How long a peer may stall **mid-frame** (or a closing connection may
    /// take to drain its outbox) before it is abandoned with
    /// [`WireError::Timeout`]. Idle waits between frames are not bounded by
    /// this — see [`keepalive`](Self::keepalive) for idle-peer policy.
    pub read_timeout: Duration,
    /// Most simultaneous connections served; accepts past the cap are
    /// answered with `Error`/[`code::OVERLOADED`] and closed. `0` means
    /// unlimited.
    pub max_conns: usize,
    /// Idle-connection probing policy.
    pub keepalive: KeepaliveConfig,
    /// Session-admission policy.
    pub admission: AdmissionConfig,
}

impl NetConfig {
    /// A configuration suitable for loopback serving and tests: no
    /// connection or admission limits, 30 s keepalive.
    pub fn new() -> Self {
        Self {
            serve: ServeConfig::new(),
            max_payload: DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_secs(2),
            max_conns: 0,
            keepalive: KeepaliveConfig::new(),
            admission: AdmissionConfig::new(),
        }
    }

    /// Replaces the serving-engine configuration.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Replaces the mid-frame read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Replaces the connection limit (`0` = unlimited).
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns;
        self
    }

    /// Replaces the keepalive policy.
    pub fn with_keepalive(mut self, keepalive: KeepaliveConfig) -> Self {
        self.keepalive = keepalive;
        self
    }

    /// Replaces the session-admission policy.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One wire session's bookkeeping inside the engine core.
struct NetSession {
    /// The engine-side id the wire id maps to.
    engine_id: eventor_serve::SessionId,
    /// Key frames already streamed to the client as `DepthMap` frames.
    sent_keyframes: usize,
}

/// The engine and the wire-id table — owned by the loop thread, no lock.
///
/// Wire session ids are a **per-connection namespace** — the table key is
/// `(connection, wire id)`, so independent clients may both call their
/// first session `1` and never observe each other.
struct EngineCore {
    engine: ServeEngine,
    sessions: HashMap<(u64, u64), NetSession>,
}

/// State shared between the loop thread and [`ServerHandle`]s.
struct Shared {
    shutdown: AtomicBool,
}

/// A bound, not-yet-running `eventor-wire/1` server.
pub struct WireServer {
    listener: TcpListener,
    config: NetConfig,
    core: EngineCore,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.listener.local_addr())
            .finish_non_exhaustive()
    }
}

/// Handle to a server running on a background thread; dropping it without
/// [`shutdown`](ServerHandle::shutdown) leaves the server running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the server thread. The loop observes the
    /// flag within one fallback tick and closes; unfinished sessions are
    /// aborted.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Floor of the adaptive idle backoff: the first sleep after a sweep that
/// made no progress.
const MIN_IDLE_BACKOFF: Duration = Duration::from_micros(200);

/// Ceiling of the adaptive idle backoff — the coarse fallback timer that
/// bounds how stale timeout/keepalive bookkeeping and the shutdown flag can
/// get while every socket is quiet.
const MAX_IDLE_BACKOFF: Duration = Duration::from_millis(5);

/// Bytes read per `read` call during a connection's read sweep.
const READ_CHUNK: usize = 64 * 1024;

/// Most `READ_CHUNK` reads drained from one connection per sweep, so a
/// firehose peer cannot starve its neighbours within a sweep.
const MAX_READS_PER_SWEEP: usize = 16;

/// Most buffers handed to one vectored write.
const MAX_WRITE_SLICES: usize = 32;

/// Hard per-connection outbox bound: a peer that stops reading while
/// replies accumulate past this is dropped instead of growing the heap.
const MAX_OUTBOX_BYTES: usize = 1 << 30;

impl WireServer {
    /// Binds a listener. Use address `"127.0.0.1:0"` to let the OS pick a
    /// loopback port (read it back with [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the bind fails.
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let core = EngineCore {
            engine: ServeEngine::new(config.serve),
            sessions: HashMap::new(),
        };
        Ok(Self {
            listener,
            config,
            core,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the socket cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, WireError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the readiness loop on the calling thread until shutdown is
    /// signalled (via the [`ServerHandle`] of [`spawn`](Self::spawn), or by
    /// `stop` returning true).
    pub fn run_until(self, stop: impl Fn() -> bool) {
        let mut lp = ServerLoop {
            listener: self.listener,
            config: self.config,
            shared: self.shared,
            core: self.core,
            conns: Vec::new(),
            next_conn: 1,
            next_nonce: 1,
        };
        lp.run(stop);
    }

    /// Spawns the readiness loop on a background thread and returns its
    /// handle.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the bound address cannot be read back.
    pub fn spawn(self) -> Result<ServerHandle, WireError> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run_until(|| false));
        Ok(ServerHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// Binds on a loopback port chosen by the OS and spawns the server — the
/// one-liner behind every loopback test and bench.
///
/// # Errors
///
/// [`WireError::Io`] when the bind fails.
pub fn spawn_loopback(config: NetConfig) -> Result<ServerHandle, WireError> {
    WireServer::bind("127.0.0.1:0", config)?.spawn()
}

/// One connection's read/write state machine.
struct Conn {
    stream: TcpStream,
    /// This connection's id — the first half of every wire-session key.
    id: u64,
    /// Inbound reassembly buffer: zero or one partial frame after each
    /// sweep (complete frames are dispatched in place).
    rbuf: Vec<u8>,
    /// Encoded frames awaiting socket room, oldest first.
    outbox: VecDeque<Vec<u8>>,
    /// Bytes of `outbox.front()` already written.
    out_head: usize,
    /// Total unsent bytes across the outbox.
    out_bytes: usize,
    /// Whether the `Hello`/`HelloOk` handshake completed.
    hello_done: bool,
    /// Set once the connection is condemned: drain the outbox, then drop.
    /// No further inbound bytes are parsed.
    closing: bool,
    /// When `closing` was set — bounds the final drain.
    closing_since: Option<Instant>,
    /// Set when the connection is gone (peer closed, I/O error, drain
    /// finished or timed out); the loop reaps it after the sweep.
    dead: bool,
    /// Last instant any inbound bytes arrived.
    last_rx: Instant,
    /// When the currently outstanding keepalive ping was sent.
    ping_sent: Option<Instant>,
    /// Unanswered pings so far.
    ping_misses: u32,
}

impl Conn {
    fn new(stream: TcpStream, id: u64, now: Instant) -> Self {
        Self {
            stream,
            id,
            rbuf: Vec::new(),
            outbox: VecDeque::new(),
            out_head: 0,
            out_bytes: 0,
            hello_done: false,
            closing: false,
            closing_since: None,
            dead: false,
            last_rx: now,
            ping_sent: None,
            ping_misses: 0,
        }
    }

    /// Queues one frame for delivery.
    fn queue(&mut self, session: u64, frame: &WireFrame) {
        let bytes = encode_frame(session, frame);
        self.out_bytes += bytes.len();
        self.outbox.push_back(bytes);
    }

    /// Condemns the connection: flush what is queued, then close.
    fn begin_close(&mut self, now: Instant) {
        if !self.closing {
            self.closing = true;
            self.closing_since = Some(now);
        }
    }

    /// Queues a best-effort `Error` frame and condemns the connection — the
    /// path every wire-level violation takes.
    fn fail(&mut self, now: Instant, reason: String) {
        self.queue(
            0,
            &WireFrame::Error {
                code: code::PROTOCOL,
                reason,
            },
        );
        self.begin_close(now);
    }
}

/// The running server: listener, connections, engine — one thread, no
/// locks.
struct ServerLoop {
    listener: TcpListener,
    config: NetConfig,
    shared: Arc<Shared>,
    core: EngineCore,
    conns: Vec<Conn>,
    next_conn: u64,
    next_nonce: u64,
}

impl ServerLoop {
    fn run(&mut self, stop: impl Fn() -> bool) {
        let mut backoff = MIN_IDLE_BACKOFF;
        let mut scratch = vec![0u8; READ_CHUNK];
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) || stop() {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            let mut progress = self.accept_new();
            let now = Instant::now();
            let Self {
                conns,
                core,
                config,
                shared,
                next_nonce,
                ..
            } = self;
            for conn in conns.iter_mut() {
                progress |= sweep_read(conn, &mut scratch, now);
                progress |= parse_and_dispatch(conn, core, config, shared, now);
                check_timeouts(conn, config, next_nonce, now);
                progress |= flush(conn);
                if conn.closing && conn.outbox.is_empty() {
                    conn.dead = true;
                }
            }
            // Reap dead connections; a connection's unfinished sessions die
            // with it, orderly exit or not.
            if conns.iter().any(|c| c.dead) {
                progress = true;
                for conn in conns.iter().filter(|c| c.dead) {
                    abort_owned(core, conn.id);
                }
                conns.retain(|c| !c.dead);
            }
            if progress {
                backoff = MIN_IDLE_BACKOFF;
            } else {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_IDLE_BACKOFF);
            }
        }
        // Shutdown: one best-effort flush, then abort whatever is left.
        for conn in &mut self.conns {
            let _ = flush(conn);
            abort_owned(&mut self.core, conn.id);
        }
        self.conns.clear();
    }

    /// Drains the accept queue. Connections past the cap get a typed
    /// `OVERLOADED` goodbye instead of a silent reset or an unbounded
    /// backlog.
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    any = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn_id = self.next_conn;
                    self.next_conn += 1;
                    let now = Instant::now();
                    let mut conn = Conn::new(stream, conn_id, now);
                    let live = self.conns.iter().filter(|c| !c.closing).count();
                    if self.config.max_conns > 0 && live >= self.config.max_conns {
                        conn.queue(
                            0,
                            &WireFrame::Error {
                                code: code::OVERLOADED,
                                reason: format!(
                                    "server is at its connection limit ({})",
                                    self.config.max_conns
                                ),
                            },
                        );
                        conn.begin_close(now);
                    }
                    self.conns.push(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }
}

/// Reads whatever the socket has ready (bounded per sweep) into the
/// connection's reassembly buffer.
fn sweep_read(conn: &mut Conn, scratch: &mut [u8], now: Instant) -> bool {
    if conn.dead {
        return false;
    }
    let mut progress = false;
    for _ in 0..MAX_READS_PER_SWEEP {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                progress = true;
                conn.last_rx = now;
                conn.ping_sent = None;
                conn.ping_misses = 0;
                if !conn.closing {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    progress
}

/// Dispatches every complete frame sitting in the reassembly buffer.
fn parse_and_dispatch(
    conn: &mut Conn,
    core: &mut EngineCore,
    config: &NetConfig,
    shared: &Shared,
    now: Instant,
) -> bool {
    let mut progress = false;
    while !conn.dead && !conn.closing && conn.rbuf.len() >= HEADER_LEN {
        let payload_len = match decode_header(&conn.rbuf[..HEADER_LEN], config.max_payload) {
            Ok((_, _, payload_len)) => payload_len as usize,
            Err(e) => {
                conn.fail(now, e.to_string());
                break;
            }
        };
        let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
        if conn.rbuf.len() < total {
            break;
        }
        progress = true;
        let decoded = decode_frame(&conn.rbuf[..total], config.max_payload);
        conn.rbuf.drain(..total);
        match decoded {
            Ok((wire_id, frame)) => dispatch(conn, core, config, shared, wire_id, frame, now),
            Err(e) => {
                conn.fail(now, e.to_string());
                break;
            }
        }
    }
    progress
}

/// Handles one complete inbound frame.
fn dispatch(
    conn: &mut Conn,
    core: &mut EngineCore,
    config: &NetConfig,
    shared: &Shared,
    wire_id: u64,
    frame: WireFrame,
    now: Instant,
) {
    if !conn.hello_done {
        match frame {
            WireFrame::Hello => {
                conn.hello_done = true;
                conn.queue(
                    0,
                    &WireFrame::HelloOk {
                        max_payload: config.max_payload,
                        queue_capacity: config.serve.queue_capacity() as u64,
                    },
                );
            }
            other => {
                conn.fail(
                    now,
                    WireError::UnexpectedFrame {
                        expected: "Hello",
                        found: other.kind_name(),
                    }
                    .to_string(),
                );
            }
        }
        return;
    }
    match frame {
        WireFrame::Bye => {
            conn.queue(0, &WireFrame::ByeOk);
            conn.begin_close(now);
        }
        WireFrame::Ping { nonce } => {
            conn.queue(wire_id, &WireFrame::Pong { nonce });
        }
        WireFrame::Pong { .. } => {
            // Liveness was already proven by the bytes themselves
            // (`sweep_read` cleared the outstanding ping); nothing to
            // answer.
        }
        WireFrame::Metrics => {
            let json = core.engine.metrics_snapshot().to_json();
            conn.queue(wire_id, &WireFrame::MetricsReply { json });
        }
        WireFrame::Admit { manifest } => {
            let reply = admit(core, config, shared, conn.id, wire_id, &manifest);
            conn.queue(wire_id, &reply);
        }
        WireFrame::Poses { samples } => {
            let reply = with_session(core, conn.id, wire_id, |core, id| {
                for (timestamp, pose) in &samples {
                    if let Err(e) = core.engine.enqueue_pose(id, *timestamp, *pose) {
                        return serve_error_reply(&e);
                    }
                }
                WireFrame::Ok
            });
            conn.queue(wire_id, &reply);
        }
        WireFrame::Events { events } => {
            let reply = with_session(core, conn.id, wire_id, |core, id| {
                let accepted = match core.engine.enqueue_events(id, &events) {
                    Ok(n) => n,
                    Err(ServeError::Session {
                        source: EmvsError::Backpressure { .. },
                        ..
                    }) => {
                        // The queue is full: pump once and retry. A client
                        // that respects its credit grant never lands here; a
                        // misbehaving one gets a zero-accept ack
                        // (short-write semantics — the excess was NOT
                        // buffered).
                        core.engine.pump();
                        match core.engine.enqueue_events(id, &events) {
                            Ok(n) => n,
                            Err(ServeError::Session {
                                source: EmvsError::Backpressure { .. },
                                ..
                            }) => 0,
                            Err(e) => return serve_error_reply(&e),
                        }
                    }
                    Err(e) => return serve_error_reply(&e),
                };
                WireFrame::EventsAck {
                    accepted: accepted as u64,
                    credits: core.credits(id),
                }
            });
            conn.queue(wire_id, &reply);
        }
        WireFrame::Poll => poll_into(conn, core, wire_id),
        WireFrame::Close => {
            let reply = with_session(core, conn.id, wire_id, |core, id| {
                match core.engine.close(id) {
                    Ok(()) => WireFrame::Ok,
                    Err(e) => serve_error_reply(&e),
                }
            });
            conn.queue(wire_id, &reply);
        }
        WireFrame::Discard => {
            let reply = with_session(core, conn.id, wire_id, |core, id| {
                match core.engine.discard_pending(id) {
                    Ok(_) => WireFrame::Ok,
                    Err(e) => serve_error_reply(&e),
                }
            });
            conn.queue(wire_id, &reply);
        }
        WireFrame::Finish => finish_into(conn, core, wire_id),
        other => {
            conn.fail(
                now,
                WireError::UnexpectedFrame {
                    expected: "a client request",
                    found: other.kind_name(),
                }
                .to_string(),
            );
        }
    }
}

/// Timeout and keepalive bookkeeping — runs **after** the read sweep, so
/// bytes already delivered by the kernel always clear a stall before it can
/// be punished.
fn check_timeouts(conn: &mut Conn, config: &NetConfig, next_nonce: &mut u64, now: Instant) {
    if conn.dead {
        return;
    }
    if conn.closing {
        // Bound the final drain: a peer that never reads its goodbye does
        // not pin the buffer forever.
        if let Some(since) = conn.closing_since {
            if now.duration_since(since) >= config.read_timeout {
                conn.dead = true;
            }
        }
        return;
    }
    // A partial frame is a promise: stalling mid-frame past the read
    // timeout is a wire-level violation.
    if !conn.rbuf.is_empty() && now.duration_since(conn.last_rx) >= config.read_timeout {
        conn.fail(now, WireError::Timeout { mid_frame: true }.to_string());
        return;
    }
    // Keepalive: only quiet, fully-framed, handshaken peers are probed.
    let ka = config.keepalive;
    if !ka.enabled() || !conn.hello_done || !conn.rbuf.is_empty() {
        return;
    }
    match conn.ping_sent {
        None => {
            if now.duration_since(conn.last_rx) >= ka.interval {
                let nonce = *next_nonce;
                *next_nonce += 1;
                conn.queue(0, &WireFrame::Ping { nonce });
                conn.ping_sent = Some(now);
            }
        }
        Some(sent) => {
            if now.duration_since(sent) >= ka.interval {
                conn.ping_misses += 1;
                if conn.ping_misses >= ka.max_misses.max(1) {
                    conn.fail(
                        now,
                        format!(
                            "keepalive expired: {} pings unanswered over {:?}",
                            conn.ping_misses,
                            ka.interval * (conn.ping_misses + 1),
                        ),
                    );
                } else {
                    let nonce = *next_nonce;
                    *next_nonce += 1;
                    conn.queue(0, &WireFrame::Ping { nonce });
                    conn.ping_sent = Some(now);
                }
            }
        }
    }
}

/// Flushes as much of the outbox as the socket will take, vectored.
fn flush(conn: &mut Conn) -> bool {
    if conn.dead {
        return false;
    }
    if conn.out_bytes > MAX_OUTBOX_BYTES {
        conn.dead = true;
        return false;
    }
    let mut progress = false;
    while !conn.outbox.is_empty() {
        let mut slices: Vec<IoSlice<'_>> =
            Vec::with_capacity(MAX_WRITE_SLICES.min(conn.outbox.len()));
        for (i, buf) in conn.outbox.iter().take(MAX_WRITE_SLICES).enumerate() {
            let part = if i == 0 {
                &buf[conn.out_head..]
            } else {
                &buf[..]
            };
            slices.push(IoSlice::new(part));
        }
        match conn.stream.write_vectored(&slices) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(mut n) => {
                progress = true;
                conn.out_bytes -= n;
                while n > 0 {
                    let front_remaining = conn.outbox[0].len() - conn.out_head;
                    if n >= front_remaining {
                        n -= front_remaining;
                        conn.outbox.pop_front();
                        conn.out_head = 0;
                    } else {
                        conn.out_head += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    progress
}

/// Converts a retired key frame into its wire rendering.
fn depth_map_frame(index: usize, k: &KeyframeReconstruction) -> DepthMapFrame {
    DepthMapFrame {
        index: index as u64,
        width: k.depth_map.width() as u64,
        height: k.depth_map.height() as u64,
        votes_cast: k.votes_cast,
        depths: k
            .depth_map
            .depth_data()
            .iter()
            .map(|d| d.to_bits())
            .collect(),
    }
}

fn serve_error_reply(e: &ServeError) -> WireFrame {
    let (code, reason) = match e {
        ServeError::UnknownSession { .. } => (code::UNKNOWN_SESSION, e.to_string()),
        ServeError::SessionClosed { .. } => (code::SESSION_CLOSED, e.to_string()),
        other => (code::SESSION, other.to_string()),
    };
    WireFrame::Error { code, reason }
}

impl EngineCore {
    /// Remaining ingest-queue credits of one session (events the client may
    /// send before the next ack).
    fn credits(&self, id: eventor_serve::SessionId) -> u64 {
        self.engine
            .session_metrics(id)
            .map(|m| m.queue_capacity.saturating_sub(m.queue_depth) as u64)
            .unwrap_or(0)
    }

    /// Looks a wire session up in the connection's namespace. A wire id
    /// admitted by another connection is indistinguishable from one that
    /// was never admitted — cross-connection hijack is impossible by
    /// construction, so [`code::NOT_OWNER`] stays reserved on this server.
    fn resolve(&self, wire_id: u64, conn: u64) -> Result<eventor_serve::SessionId, WireFrame> {
        match self.sessions.get(&(conn, wire_id)) {
            None => Err(WireFrame::Error {
                code: code::UNKNOWN_SESSION,
                reason: format!("wire session {wire_id} was never admitted"),
            }),
            Some(s) => Ok(s.engine_id),
        }
    }
}

/// Aborts every unfinished session the connection owns (client vanished or
/// violated the protocol). Finished sessions keep their outputs.
fn abort_owned(core: &mut EngineCore, conn: u64) {
    let owned: Vec<eventor_serve::SessionId> = core
        .sessions
        .iter()
        .filter(|((owner, _), _)| *owner == conn)
        .map(|(_, s)| s.engine_id)
        .collect();
    for id in owned {
        let _ = core.engine.abort(
            id,
            EmvsError::InvalidConfig {
                reason: "wire client disconnected before finishing the session".into(),
            },
        );
    }
    core.sessions.retain(|(owner, _), _| *owner != conn);
}

/// Runs `op` with the wire id resolved; ownership and existence failures
/// become their typed reply without touching the engine.
fn with_session(
    core: &mut EngineCore,
    conn: u64,
    wire_id: u64,
    op: impl FnOnce(&mut EngineCore, eventor_serve::SessionId) -> WireFrame,
) -> WireFrame {
    match core.resolve(wire_id, conn) {
        Ok(id) => op(core, id),
        Err(reply) => reply,
    }
}

fn admit(
    core: &mut EngineCore,
    config: &NetConfig,
    shared: &Shared,
    conn: u64,
    wire_id: u64,
    manifest: &SessionManifest,
) -> WireFrame {
    if shared.shutdown.load(Ordering::SeqCst) {
        return WireFrame::Rejected {
            code: code::SHUTTING_DOWN,
            reason: "server is shutting down".into(),
        };
    }
    if wire_id == 0 {
        return WireFrame::Rejected {
            code: code::BAD_SESSION_ID,
            reason: "session id 0 is reserved for connection-level frames".into(),
        };
    }
    if let Some(reject) = admission_reject(core, &config.admission, config.serve.queue_capacity()) {
        return reject;
    }
    // Resolve the manifest before touching the engine: building a session
    // is pure and needs no engine state.
    let session = match manifest.resolve() {
        Ok(s) => s,
        Err(WireError::Rejected { code, reason }) => {
            return WireFrame::Rejected { code, reason };
        }
        Err(other) => {
            return WireFrame::Rejected {
                code: code::PROTOCOL,
                reason: other.to_string(),
            };
        }
    };
    if core.sessions.contains_key(&(conn, wire_id)) {
        return WireFrame::Rejected {
            code: code::DUPLICATE_SESSION,
            reason: format!("wire session {wire_id} already exists"),
        };
    }
    let engine_id = core.engine.admit(session);
    core.sessions.insert(
        (conn, wire_id),
        NetSession {
            engine_id,
            sent_keyframes: 0,
        },
    );
    WireFrame::Admitted {
        credits: core.credits(engine_id),
    }
}

/// Evaluates the admission gates against the engine's live metrics.
fn admission_reject(
    core: &EngineCore,
    admission: &AdmissionConfig,
    queue_capacity: usize,
) -> Option<WireFrame> {
    if admission.max_sessions == 0 && admission.max_queue_fraction <= 0.0 {
        return None;
    }
    let metrics = core.engine.metrics();
    let live = metrics.live_sessions();
    if admission.max_sessions > 0 && live >= admission.max_sessions {
        return Some(WireFrame::Rejected {
            code: code::OVERLOADED,
            reason: format!(
                "admission refused: {live} live sessions at the cap of {}",
                admission.max_sessions
            ),
        });
    }
    if admission.max_queue_fraction > 0.0 {
        let fraction = metrics.queue_fraction(queue_capacity);
        if fraction >= admission.max_queue_fraction {
            return Some(WireFrame::Rejected {
                code: code::OVERLOADED,
                reason: format!(
                    "admission refused: ingest queues {:.0}% full (gate {:.0}%)",
                    fraction * 100.0,
                    admission.max_queue_fraction * 100.0
                ),
            });
        }
    }
    None
}

/// `Poll`: pump once, then stream everything new — lifecycle events first,
/// then any newly retired depth maps, then the `PollDone` credit grant.
fn poll_into(conn: &mut Conn, core: &mut EngineCore, wire_id: u64) {
    let id = match core.resolve(wire_id, conn.id) {
        Ok(id) => id,
        Err(reply) => {
            conn.queue(wire_id, &reply);
            return;
        }
    };
    core.engine.pump();
    let lifecycle = core.engine.poll_session(id).unwrap_or_default();
    if !lifecycle.is_empty() {
        conn.queue(
            wire_id,
            &WireFrame::Lifecycle {
                events: lifecycle
                    .iter()
                    .filter_map(WireSessionEvent::from_session)
                    .collect(),
            },
        );
    }
    let sent = core
        .sessions
        .get(&(conn.id, wire_id))
        .map(|s| s.sent_keyframes)
        .unwrap_or(0);
    let keyframes = core.engine.keyframes(id).unwrap_or(&[]);
    let total = keyframes.len();
    let maps: Vec<WireFrame> = keyframes
        .iter()
        .enumerate()
        .skip(sent)
        .map(|(offset, k)| WireFrame::DepthMap(depth_map_frame(offset, k)))
        .collect();
    for frame in &maps {
        conn.queue(wire_id, frame);
    }
    if let Some(s) = core.sessions.get_mut(&(conn.id, wire_id)) {
        s.sent_keyframes = total.max(s.sent_keyframes);
    }
    conn.queue(
        wire_id,
        &WireFrame::PollDone {
            credits: core.credits(id),
        },
    );
}

/// `Finish`: drain the session to completion, stream the leftovers, reply
/// with the terminal summary, and release the wire id.
fn finish_into(conn: &mut Conn, core: &mut EngineCore, wire_id: u64) {
    let id = match core.resolve(wire_id, conn.id) {
        Ok(id) => id,
        Err(reply) => {
            conn.queue(wire_id, &reply);
            return;
        }
    };
    let output = match core.engine.finish_session(id) {
        Ok(output) => output,
        Err(e) => {
            let reply = serve_error_reply(&e);
            conn.queue(wire_id, &reply);
            return;
        }
    };
    // Lifecycle events polled into the outbox during the drain, then the
    // final-flush events the engine stashed in the output (the two sets are
    // disjoint by construction).
    let mut lifecycle = core.engine.poll_session(id).unwrap_or_default();
    lifecycle.extend(output.events.iter().cloned());
    if !lifecycle.is_empty() {
        conn.queue(
            wire_id,
            &WireFrame::Lifecycle {
                events: lifecycle
                    .iter()
                    .filter_map(WireSessionEvent::from_session)
                    .collect(),
            },
        );
    }
    let sent = core
        .sessions
        .get(&(conn.id, wire_id))
        .map(|s| s.sent_keyframes)
        .unwrap_or(0);
    for (offset, k) in output.output.keyframes.iter().enumerate().skip(sent) {
        conn.queue(wire_id, &WireFrame::DepthMap(depth_map_frame(offset, k)));
    }
    core.sessions.remove(&(conn.id, wire_id));
    conn.queue(
        wire_id,
        &WireFrame::Finished {
            digest: digest_output(&output),
            keyframes: output.output.keyframes.len() as u64,
            events_processed: output.output.profile.events_processed,
        },
    );
}
