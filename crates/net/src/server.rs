//! The `eventor-wire/1` TCP server: a thread-per-connection front-end over
//! one shared [`ServeEngine`].
//!
//! ## Connection protocol
//!
//! Every connection opens with `Hello` / `HelloOk` (capability exchange),
//! then issues any number of session and connection frames, and ends with
//! `Bye` / `ByeOk` — the ordered shutdown. Sessions are **owned by the
//! connection that admitted them**: frames naming another connection's
//! session get a typed `Error` reply, and when a connection ends — orderly
//! or not — every unfinished session it owns is
//! [`abort`](ServeEngine::abort)ed, so a vanished client surfaces as
//! `SessionFailed` in the engine's lifecycle feed instead of wedging the
//! drain.
//!
//! ## Error discipline
//!
//! *Wire-level* violations (bad magic, checksum mismatch, malformed
//! payloads, a mid-frame stall past the read timeout) are unrecoverable for
//! the connection: the server sends a best-effort `Error` frame naming the
//! violation and closes. *Semantic* refusals (unknown scenario, duplicate
//! session id, closed session) are typed `Rejected`/`Error` replies and the
//! connection stays usable. No client bytes — corrupt, truncated, hostile —
//! ever panic the server (`tests/` corruption suite).

use crate::frame_io::{read_frame, write_frame, IdleWait};
use crate::manifest::SessionManifest;
use crate::wire::{
    code, DepthMapFrame, WireError, WireFrame, WireSessionEvent, DEFAULT_MAX_PAYLOAD,
};
use eventor_emvs::{EmvsError, KeyframeReconstruction};
use eventor_scenarios::digest_output;
use eventor_serve::{ServeConfig, ServeEngine, ServeError};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Configuration of the underlying serving engine.
    pub serve: ServeConfig,
    /// Largest payload accepted per frame, in bytes (advertised in
    /// `HelloOk`).
    pub max_payload: u32,
    /// How long a peer may stall **mid-frame** (or the server may take to
    /// reply) before the read is abandoned with [`WireError::Timeout`].
    /// Idle waits between frames are not bounded by this on the server.
    pub read_timeout: Duration,
}

impl NetConfig {
    /// A configuration suitable for loopback serving and tests.
    pub fn new() -> Self {
        Self {
            serve: ServeConfig::new(),
            max_payload: DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_secs(2),
        }
    }

    /// Replaces the serving-engine configuration.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Replaces the mid-frame read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One wire session's bookkeeping inside the engine core.
struct NetSession {
    /// The engine-side id the wire id maps to.
    engine_id: eventor_serve::SessionId,
    /// Key frames already streamed to the client as `DepthMap` frames.
    sent_keyframes: usize,
}

/// The engine and the wire-id table, guarded by one mutex.
///
/// Wire session ids are a **per-connection namespace** — the table key is
/// `(connection, wire id)`, so independent clients may both call their
/// first session `1` and never observe each other.
struct EngineCore {
    engine: ServeEngine,
    sessions: HashMap<(u64, u64), NetSession>,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    core: Mutex<EngineCore>,
    config: NetConfig,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
}

/// A bound, not-yet-running `eventor-wire/1` server.
pub struct WireServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.listener.local_addr())
            .finish_non_exhaustive()
    }
}

/// Handle to a server running on a background thread; dropping it without
/// [`shutdown`](ServerHandle::shutdown) leaves the server running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the server thread. In-flight connections
    /// observe the flag at their next read tick and close; unfinished
    /// sessions they own are aborted.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Tick used by accept/read loops to notice the shutdown flag.
const TICK: Duration = Duration::from_millis(25);

impl WireServer {
    /// Binds a listener. Use address `"127.0.0.1:0"` to let the OS pick a
    /// loopback port (read it back with [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the bind fails.
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            core: Mutex::new(EngineCore {
                engine: ServeEngine::new(config.serve),
                sessions: HashMap::new(),
            }),
            config,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
        });
        Ok(Self { listener, shared })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the socket cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, WireError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the accept loop on the calling thread until shutdown is
    /// signalled (via the [`ServerHandle`] of [`spawn`](Self::spawn), or by
    /// `stop` returning true). Each connection is served on its own thread.
    pub fn run_until(self, stop: impl Fn() -> bool) {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) || stop() {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                    conns.push(std::thread::spawn(move || {
                        serve_connection(stream, &shared, conn_id);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(TICK);
                }
                Err(_) => std::thread::sleep(TICK),
            }
            conns.retain(|c| !c.is_finished());
        }
        for conn in conns {
            let _ = conn.join();
        }
    }

    /// Spawns the accept loop on a background thread and returns its
    /// handle.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the bound address cannot be read back.
    pub fn spawn(self) -> Result<ServerHandle, WireError> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run_until(|| false));
        Ok(ServerHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// Binds on a loopback port chosen by the OS and spawns the server — the
/// one-liner behind every loopback test and bench.
///
/// # Errors
///
/// [`WireError::Io`] when the bind fails.
pub fn spawn_loopback(config: NetConfig) -> Result<ServerHandle, WireError> {
    WireServer::bind("127.0.0.1:0", config)?.spawn()
}

/// Converts a retired key frame into its wire rendering.
fn depth_map_frame(index: usize, k: &KeyframeReconstruction) -> DepthMapFrame {
    DepthMapFrame {
        index: index as u64,
        width: k.depth_map.width() as u64,
        height: k.depth_map.height() as u64,
        votes_cast: k.votes_cast,
        depths: k
            .depth_map
            .depth_data()
            .iter()
            .map(|d| d.to_bits())
            .collect(),
    }
}

fn serve_error_reply(e: &ServeError) -> WireFrame {
    let (code, reason) = match e {
        ServeError::UnknownSession { .. } => (code::UNKNOWN_SESSION, e.to_string()),
        ServeError::SessionClosed { .. } => (code::SESSION_CLOSED, e.to_string()),
        other => (code::SESSION, other.to_string()),
    };
    WireFrame::Error { code, reason }
}

impl EngineCore {
    /// Remaining ingest-queue credits of one session (events the client may
    /// send before the next ack).
    fn credits(&self, id: eventor_serve::SessionId) -> u64 {
        self.engine
            .session_metrics(id)
            .map(|m| m.queue_capacity.saturating_sub(m.queue_depth) as u64)
            .unwrap_or(0)
    }

    /// Looks a wire session up in the connection's namespace. A wire id
    /// admitted by another connection is indistinguishable from one that
    /// was never admitted — cross-connection hijack is impossible by
    /// construction, so [`code::NOT_OWNER`] stays reserved on this server.
    fn resolve(&self, wire_id: u64, conn: u64) -> Result<eventor_serve::SessionId, WireFrame> {
        match self.sessions.get(&(conn, wire_id)) {
            None => Err(WireFrame::Error {
                code: code::UNKNOWN_SESSION,
                reason: format!("wire session {wire_id} was never admitted"),
            }),
            Some(s) => Ok(s.engine_id),
        }
    }
}

/// Aborts every unfinished session the connection owns (client vanished or
/// violated the protocol). Finished sessions keep their outputs.
fn abort_owned(shared: &Shared, conn: u64) {
    let mut core = shared.core.lock().expect("engine lock");
    let owned: Vec<eventor_serve::SessionId> = core
        .sessions
        .iter()
        .filter(|((owner, _), _)| *owner == conn)
        .map(|(_, s)| s.engine_id)
        .collect();
    for id in owned {
        let _ = core.engine.abort(
            id,
            EmvsError::InvalidConfig {
                reason: "wire client disconnected before finishing the session".into(),
            },
        );
    }
    core.sessions.retain(|(owner, _), _| *owner != conn);
}

/// Serves one connection to completion. All replies carry the request's
/// session id, so a pipelining client can match them up.
fn serve_connection(mut stream: TcpStream, shared: &Shared, conn: u64) {
    let result = connection_loop(&mut stream, shared, conn);
    if let Err(e) = result {
        // Best-effort typed goodbye; the peer may be long gone.
        let reason = e.to_string();
        if !matches!(e, WireError::ConnectionClosed | WireError::Io { .. }) {
            let _ = write_frame(
                &mut stream,
                0,
                &WireFrame::Error {
                    code: code::PROTOCOL,
                    reason,
                },
            );
        }
    }
    abort_owned(shared, conn);
}

fn connection_loop(stream: &mut TcpStream, shared: &Shared, conn: u64) -> Result<(), WireError> {
    let max_payload = shared.config.max_payload;
    let read_timeout = shared.config.read_timeout;
    let stop = || shared.shutdown.load(Ordering::SeqCst);

    // Handshake: the first frame must be Hello.
    let (_, first) = read_frame(
        stream,
        max_payload,
        read_timeout,
        IdleWait::UntilStopped,
        &stop,
    )?;
    match first {
        WireFrame::Hello => {}
        other => {
            return Err(WireError::UnexpectedFrame {
                expected: "Hello",
                found: other.kind_name(),
            });
        }
    }
    write_frame(
        stream,
        0,
        &WireFrame::HelloOk {
            max_payload,
            queue_capacity: shared.config.serve.queue_capacity() as u64,
        },
    )?;

    loop {
        let (wire_id, frame) = match read_frame(
            stream,
            max_payload,
            read_timeout,
            IdleWait::UntilStopped,
            &stop,
        ) {
            Ok(f) => f,
            Err(WireError::ConnectionClosed) if stop() => return Ok(()),
            Err(e) => return Err(e),
        };
        match frame {
            WireFrame::Bye => {
                write_frame(stream, 0, &WireFrame::ByeOk)?;
                return Ok(());
            }
            WireFrame::Metrics => {
                let json = shared
                    .core
                    .lock()
                    .expect("engine lock")
                    .engine
                    .metrics_snapshot()
                    .to_json();
                write_frame(stream, wire_id, &WireFrame::MetricsReply { json })?;
            }
            WireFrame::Admit { manifest } => {
                let reply = admit(shared, conn, wire_id, &manifest);
                write_frame(stream, wire_id, &reply)?;
            }
            WireFrame::Poses { samples } => {
                let reply = with_session(shared, conn, wire_id, |core, id| {
                    for (timestamp, pose) in &samples {
                        if let Err(e) = core.engine.enqueue_pose(id, *timestamp, *pose) {
                            return serve_error_reply(&e);
                        }
                    }
                    WireFrame::Ok
                });
                write_frame(stream, wire_id, &reply)?;
            }
            WireFrame::Events { events } => {
                let reply = with_session(shared, conn, wire_id, |core, id| {
                    let accepted = match core.engine.enqueue_events(id, &events) {
                        Ok(n) => n,
                        Err(ServeError::Session {
                            source: EmvsError::Backpressure { .. },
                            ..
                        }) => {
                            // The queue is full: pump once and retry. A
                            // client that respects its credit grant never
                            // lands here; a misbehaving one gets a
                            // zero-accept ack (short-write semantics — the
                            // excess was NOT buffered).
                            core.engine.pump();
                            match core.engine.enqueue_events(id, &events) {
                                Ok(n) => n,
                                Err(ServeError::Session {
                                    source: EmvsError::Backpressure { .. },
                                    ..
                                }) => 0,
                                Err(e) => return serve_error_reply(&e),
                            }
                        }
                        Err(e) => return serve_error_reply(&e),
                    };
                    WireFrame::EventsAck {
                        accepted: accepted as u64,
                        credits: core.credits(id),
                    }
                });
                write_frame(stream, wire_id, &reply)?;
            }
            WireFrame::Poll => {
                poll_session(stream, shared, conn, wire_id)?;
            }
            WireFrame::Close => {
                let reply = with_session(shared, conn, wire_id, |core, id| {
                    match core.engine.close(id) {
                        Ok(()) => WireFrame::Ok,
                        Err(e) => serve_error_reply(&e),
                    }
                });
                write_frame(stream, wire_id, &reply)?;
            }
            WireFrame::Discard => {
                let reply = with_session(shared, conn, wire_id, |core, id| {
                    match core.engine.discard_pending(id) {
                        Ok(_) => WireFrame::Ok,
                        Err(e) => serve_error_reply(&e),
                    }
                });
                write_frame(stream, wire_id, &reply)?;
            }
            WireFrame::Finish => {
                finish_session(stream, shared, conn, wire_id)?;
            }
            other => {
                return Err(WireError::UnexpectedFrame {
                    expected: "a client request",
                    found: other.kind_name(),
                });
            }
        }
    }
}

/// Runs `op` with the engine lock held and the wire id resolved; ownership
/// and existence failures become their typed reply without touching the
/// engine.
fn with_session(
    shared: &Shared,
    conn: u64,
    wire_id: u64,
    op: impl FnOnce(&mut EngineCore, eventor_serve::SessionId) -> WireFrame,
) -> WireFrame {
    let mut core = shared.core.lock().expect("engine lock");
    match core.resolve(wire_id, conn) {
        Ok(id) => op(&mut core, id),
        Err(reply) => reply,
    }
}

fn admit(shared: &Shared, conn: u64, wire_id: u64, manifest: &SessionManifest) -> WireFrame {
    if shared.shutdown.load(Ordering::SeqCst) {
        return WireFrame::Rejected {
            code: code::SHUTTING_DOWN,
            reason: "server is shutting down".into(),
        };
    }
    if wire_id == 0 {
        return WireFrame::Rejected {
            code: code::BAD_SESSION_ID,
            reason: "session id 0 is reserved for connection-level frames".into(),
        };
    }
    // Resolve the manifest before taking the engine lock: building a
    // session is pure and needs no engine state.
    let session = match manifest.resolve() {
        Ok(s) => s,
        Err(WireError::Rejected { code, reason }) => {
            return WireFrame::Rejected { code, reason };
        }
        Err(other) => {
            return WireFrame::Rejected {
                code: code::PROTOCOL,
                reason: other.to_string(),
            };
        }
    };
    let mut core = shared.core.lock().expect("engine lock");
    if core.sessions.contains_key(&(conn, wire_id)) {
        return WireFrame::Rejected {
            code: code::DUPLICATE_SESSION,
            reason: format!("wire session {wire_id} already exists"),
        };
    }
    let engine_id = core.engine.admit(session);
    core.sessions.insert(
        (conn, wire_id),
        NetSession {
            engine_id,
            sent_keyframes: 0,
        },
    );
    WireFrame::Admitted {
        credits: core.credits(engine_id),
    }
}

/// `Poll`: pump once, then stream everything new — lifecycle events first,
/// then any newly retired depth maps, then the `PollDone` credit grant.
fn poll_session(
    stream: &mut TcpStream,
    shared: &Shared,
    conn: u64,
    wire_id: u64,
) -> Result<(), WireError> {
    // Collect under the lock, write after releasing it: a slow client must
    // not hold the engine hostage while frames drain into the socket.
    let (frames, done) = {
        let mut core = shared.core.lock().expect("engine lock");
        let core = &mut *core;
        let id = match core.resolve(wire_id, conn) {
            Ok(id) => id,
            Err(reply) => return write_frame(stream, wire_id, &reply),
        };
        core.engine.pump();
        let mut frames = Vec::new();
        let lifecycle = core.engine.poll_session(id).unwrap_or_default();
        if !lifecycle.is_empty() {
            frames.push(WireFrame::Lifecycle {
                events: lifecycle
                    .iter()
                    .filter_map(WireSessionEvent::from_session)
                    .collect(),
            });
        }
        let sent = core
            .sessions
            .get(&(conn, wire_id))
            .map(|s| s.sent_keyframes)
            .unwrap_or(0);
        let keyframes = core.engine.keyframes(id).unwrap_or(&[]);
        for (offset, k) in keyframes.iter().enumerate().skip(sent) {
            frames.push(WireFrame::DepthMap(depth_map_frame(offset, k)));
        }
        let total = keyframes.len();
        if let Some(s) = core.sessions.get_mut(&(conn, wire_id)) {
            s.sent_keyframes = total.max(s.sent_keyframes);
        }
        (
            frames,
            WireFrame::PollDone {
                credits: core.credits(id),
            },
        )
    };
    for frame in &frames {
        write_frame(stream, wire_id, frame)?;
    }
    write_frame(stream, wire_id, &done)
}

/// `Finish`: drain the session to completion, stream the leftovers, reply
/// with the terminal summary, and release the wire id.
fn finish_session(
    stream: &mut TcpStream,
    shared: &Shared,
    conn: u64,
    wire_id: u64,
) -> Result<(), WireError> {
    let (frames, done) = {
        let mut core = shared.core.lock().expect("engine lock");
        let core = &mut *core;
        let id = match core.resolve(wire_id, conn) {
            Ok(id) => id,
            Err(reply) => return write_frame(stream, wire_id, &reply),
        };
        let output = match core.engine.finish_session(id) {
            Ok(output) => output,
            Err(e) => {
                let reply = serve_error_reply(&e);
                return write_frame(stream, wire_id, &reply);
            }
        };
        let mut frames = Vec::new();
        // Lifecycle events polled into the outbox during the drain, then
        // the final-flush events the engine stashed in the output (the two
        // sets are disjoint by construction).
        let mut lifecycle = core.engine.poll_session(id).unwrap_or_default();
        lifecycle.extend(output.events.iter().cloned());
        if !lifecycle.is_empty() {
            frames.push(WireFrame::Lifecycle {
                events: lifecycle
                    .iter()
                    .filter_map(WireSessionEvent::from_session)
                    .collect(),
            });
        }
        let sent = core
            .sessions
            .get(&(conn, wire_id))
            .map(|s| s.sent_keyframes)
            .unwrap_or(0);
        for (offset, k) in output.output.keyframes.iter().enumerate().skip(sent) {
            frames.push(WireFrame::DepthMap(depth_map_frame(offset, k)));
        }
        core.sessions.remove(&(conn, wire_id));
        (
            frames,
            WireFrame::Finished {
                digest: digest_output(&output),
                keyframes: output.output.keyframes.len() as u64,
                events_processed: output.output.profile.events_processed,
            },
        )
    };
    for frame in &frames {
        write_frame(stream, wire_id, frame)?;
    }
    write_frame(stream, wire_id, &done)
}
