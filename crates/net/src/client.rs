//! The `eventor-wire/1` client: a blocking, single-connection front-end
//! mirror of the server's state machine, used by the CLI `connect`
//! subcommand, the loopback equivalence suites and the wire bench.
//!
//! The client accumulates everything the server streams back — lifecycle
//! notifications and depth-map frames per session — so after
//! [`finish`](WireClient::finish) the caller can recompute the scenario
//! digest locally ([`digest_of_depth_maps`])
//! and compare it against both the server's `Finished` digest and the
//! committed golden table: three independent hashes of the same bits.

use crate::frame_io::{read_frame, write_frame, IdleWait};
use crate::manifest::SessionManifest;
use crate::wire::{
    digest_of_depth_maps, trajectory_samples, DepthMapFrame, WireError, WireFrame,
    WireSessionEvent, DEFAULT_MAX_PAYLOAD,
};
use eventor_events::Event;
use eventor_geom::{Pose, Trajectory};
use eventor_serve::LoadShape;
use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side record of one admitted wire session.
#[derive(Debug, Default)]
struct ClientSession {
    credits: u64,
    depth_maps: Vec<DepthMapFrame>,
    lifecycle: Vec<WireSessionEvent>,
}

/// A session's terminal summary, as reported by the server's `Finished`
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishReport {
    /// The server-side scenario digest over the session's depth maps.
    pub digest: u64,
    /// Key frames the session produced.
    pub keyframes: u64,
    /// Events the session's datapath processed.
    pub events_processed: u64,
}

/// A blocking `eventor-wire/1` client over one TCP connection.
pub struct WireClient {
    stream: TcpStream,
    /// Largest payload the *server* accepts (from `HelloOk`).
    max_payload: u32,
    /// Per-session ingest-queue capacity (from `HelloOk`).
    queue_capacity: u64,
    reply_timeout: Duration,
    read_timeout: Duration,
    sessions: HashMap<u64, ClientSession>,
    next_id: u64,
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireClient")
            .field("peer", &self.stream.peer_addr())
            .field("sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

const NEVER_STOP: fn() -> bool = || false;

impl WireClient {
    /// Connects and performs the `Hello`/`HelloOk` handshake with default
    /// timeouts (generous reply window: under heavy multi-session load a
    /// `Finish` legitimately takes a while).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on connect failure, any wire error from the
    /// handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with(addr, Duration::from_secs(600), Duration::from_secs(30))
    }

    /// [`connect`](Self::connect) with explicit reply and mid-frame
    /// timeouts.
    ///
    /// # Errors
    ///
    /// Same contract as [`connect`](Self::connect).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        reply_timeout: Duration,
        read_timeout: Duration,
    ) -> Result<Self, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, 0, &WireFrame::Hello)?;
        let mut client = Self {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
            queue_capacity: 0,
            reply_timeout,
            read_timeout,
            sessions: HashMap::new(),
            next_id: 1,
        };
        match client.read_reply(0)? {
            WireFrame::HelloOk {
                max_payload,
                queue_capacity,
            } => {
                client.max_payload = max_payload;
                client.queue_capacity = queue_capacity;
                Ok(client)
            }
            other => Err(WireError::UnexpectedFrame {
                expected: "HelloOk",
                found: other.kind_name(),
            }),
        }
    }

    /// The per-session ingest-queue capacity the server advertised.
    pub fn queue_capacity(&self) -> u64 {
        self.queue_capacity
    }

    /// Reads one reply frame for `session`, surfacing typed
    /// `Rejected`/`Error` replies as [`WireError::Rejected`].
    ///
    /// Server keepalive `Ping`s interleaved with the reply are answered
    /// transparently with a `Pong` and never surfaced — so a client that is
    /// blocked awaiting a slow reply (a long `Finish` drain, say) stays
    /// provably alive. A client idle *between* requests reads nothing and
    /// cannot answer; the server's keepalive interval is sized for that
    /// (`docs/WIRE.md` §7).
    fn read_reply(&mut self, session: u64) -> Result<WireFrame, WireError> {
        loop {
            let (got_session, frame) = read_frame(
                &mut self.stream,
                // The *client's* receive bound: accept whatever the server
                // sends (it bounds its own frames by its config).
                u32::MAX,
                self.read_timeout,
                IdleWait::Timeout(self.reply_timeout),
                &NEVER_STOP,
            )?;
            match frame {
                WireFrame::Ping { nonce } => {
                    write_frame(&mut self.stream, got_session, &WireFrame::Pong { nonce })?;
                }
                WireFrame::Rejected { code, reason } | WireFrame::Error { code, reason } => {
                    return Err(WireError::Rejected { code, reason });
                }
                frame if got_session == session => return Ok(frame),
                frame => {
                    return Err(WireError::UnexpectedFrame {
                        expected: "a reply for the requested session",
                        found: frame.kind_name(),
                    });
                }
            }
        }
    }

    fn request(&mut self, session: u64, frame: &WireFrame) -> Result<WireFrame, WireError> {
        write_frame(&mut self.stream, session, frame)?;
        self.read_reply(session)
    }

    fn expect_ok(&mut self, session: u64, frame: &WireFrame) -> Result<(), WireError> {
        match self.request(session, frame)? {
            WireFrame::Ok => Ok(()),
            other => Err(WireError::UnexpectedFrame {
                expected: "Ok",
                found: other.kind_name(),
            }),
        }
    }

    fn session_mut(&mut self, id: u64) -> Result<&mut ClientSession, WireError> {
        self.sessions
            .get_mut(&id)
            .ok_or_else(|| WireError::Malformed {
                reason: format!("wire session {id} is not admitted on this client"),
            })
    }

    /// Admits a session for `manifest` and returns its wire id.
    ///
    /// # Errors
    ///
    /// [`WireError::Rejected`] with the server's refusal code, or any wire
    /// error.
    pub fn admit(&mut self, manifest: &SessionManifest) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.request(
            id,
            &WireFrame::Admit {
                manifest: manifest.clone(),
            },
        )? {
            WireFrame::Admitted { credits } => {
                self.sessions.insert(
                    id,
                    ClientSession {
                        credits,
                        ..ClientSession::default()
                    },
                );
                Ok(id)
            }
            other => Err(WireError::UnexpectedFrame {
                expected: "Admitted",
                found: other.kind_name(),
            }),
        }
    }

    /// Sends a batch of pose samples.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn send_poses(&mut self, id: u64, samples: Vec<(f64, Pose)>) -> Result<(), WireError> {
        self.expect_ok(id, &WireFrame::Poses { samples })
    }

    /// Sends a whole trajectory as one `Poses` frame.
    ///
    /// # Errors
    ///
    /// Same contract as [`send_poses`](Self::send_poses).
    pub fn send_trajectory(&mut self, id: u64, trajectory: &Trajectory) -> Result<(), WireError> {
        self.send_poses(id, trajectory_samples(trajectory))
    }

    /// Sends an event batch; returns how many the server accepted
    /// (short-write semantics) and updates the session's credit balance.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn send_events(&mut self, id: u64, events: &[Event]) -> Result<u64, WireError> {
        match self.request(
            id,
            &WireFrame::Events {
                events: events.to_vec(),
            },
        )? {
            WireFrame::EventsAck { accepted, credits } => {
                self.session_mut(id)?.credits = credits;
                Ok(accepted)
            }
            other => Err(WireError::UnexpectedFrame {
                expected: "EventsAck",
                found: other.kind_name(),
            }),
        }
    }

    /// The session's current flow-control credit balance (events the server
    /// guarantees to accept).
    pub fn credits(&self, id: u64) -> u64 {
        self.sessions.get(&id).map(|s| s.credits).unwrap_or(0)
    }

    /// Polls the session: asks the server to pump, accumulates streamed
    /// lifecycle events and depth maps, refreshes the credit balance.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn poll(&mut self, id: u64) -> Result<(), WireError> {
        write_frame(&mut self.stream, id, &WireFrame::Poll)?;
        self.drain_stream(id, "PollDone")?;
        Ok(())
    }

    /// Reads streamed `Lifecycle`/`DepthMap` frames into the session until
    /// the terminator arrives; returns the terminator frame.
    fn drain_stream(&mut self, id: u64, terminator: &'static str) -> Result<WireFrame, WireError> {
        loop {
            match self.read_reply(id)? {
                WireFrame::Lifecycle { events } => {
                    self.session_mut(id)?.lifecycle.extend(events);
                }
                WireFrame::DepthMap(map) => {
                    self.session_mut(id)?.depth_maps.push(map);
                }
                WireFrame::PollDone { credits } => {
                    self.session_mut(id)?.credits = credits;
                    if terminator == "PollDone" {
                        return Ok(WireFrame::PollDone { credits });
                    }
                    return Err(WireError::UnexpectedFrame {
                        expected: terminator,
                        found: "PollDone",
                    });
                }
                frame @ WireFrame::Finished { .. } => {
                    if terminator == "Finished" {
                        return Ok(frame);
                    }
                    return Err(WireError::UnexpectedFrame {
                        expected: terminator,
                        found: "Finished",
                    });
                }
                other => {
                    return Err(WireError::UnexpectedFrame {
                        expected: terminator,
                        found: other.kind_name(),
                    });
                }
            }
        }
    }

    /// Declares end-of-stream for the session.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn close(&mut self, id: u64) -> Result<(), WireError> {
        self.expect_ok(id, &WireFrame::Close)
    }

    /// Drops the session's queued input server-side.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn discard(&mut self, id: u64) -> Result<(), WireError> {
        self.expect_ok(id, &WireFrame::Discard)
    }

    /// Drains the session to completion: accumulates every remaining
    /// lifecycle event and depth map, returns the server's terminal
    /// summary. The wire id is released server-side; the accumulated state
    /// stays readable on this client.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn finish(&mut self, id: u64) -> Result<FinishReport, WireError> {
        write_frame(&mut self.stream, id, &WireFrame::Finish)?;
        match self.drain_stream(id, "Finished")? {
            WireFrame::Finished {
                digest,
                keyframes,
                events_processed,
            } => Ok(FinishReport {
                digest,
                keyframes,
                events_processed,
            }),
            other => Err(WireError::UnexpectedFrame {
                expected: "Finished",
                found: other.kind_name(),
            }),
        }
    }

    /// Requests the engine-wide byte-reproducible `eventor-metrics/1`
    /// document.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn metrics(&mut self) -> Result<String, WireError> {
        match self.request(0, &WireFrame::Metrics)? {
            WireFrame::MetricsReply { json } => Ok(json),
            other => Err(WireError::UnexpectedFrame {
                expected: "MetricsReply",
                found: other.kind_name(),
            }),
        }
    }

    /// Probes the server with a keepalive `Ping` and waits for the matching
    /// `Pong` — a cheap round-trip liveness check.
    ///
    /// # Errors
    ///
    /// Any wire error; a `Pong` with the wrong nonce is
    /// [`WireError::UnexpectedFrame`].
    pub fn ping(&mut self) -> Result<(), WireError> {
        let nonce = self.next_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        match self.request(0, &WireFrame::Ping { nonce })? {
            WireFrame::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            WireFrame::Pong { .. } => Err(WireError::UnexpectedFrame {
                expected: "a Pong echoing the ping nonce",
                found: "Pong",
            }),
            other => Err(WireError::UnexpectedFrame {
                expected: "Pong",
                found: other.kind_name(),
            }),
        }
    }

    /// Ordered shutdown: `Bye`/`ByeOk`, then the connection is dropped.
    ///
    /// # Errors
    ///
    /// Any wire error.
    pub fn bye(mut self) -> Result<(), WireError> {
        match self.request(0, &WireFrame::Bye)? {
            WireFrame::ByeOk => Ok(()),
            other => Err(WireError::UnexpectedFrame {
                expected: "ByeOk",
                found: other.kind_name(),
            }),
        }
    }

    /// Every depth map streamed for the session so far, in key-frame order.
    pub fn depth_maps(&self, id: u64) -> &[DepthMapFrame] {
        self.sessions
            .get(&id)
            .map(|s| s.depth_maps.as_slice())
            .unwrap_or(&[])
    }

    /// Every lifecycle event streamed for the session so far, in order.
    pub fn lifecycle(&self, id: u64) -> &[WireSessionEvent] {
        self.sessions
            .get(&id)
            .map(|s| s.lifecycle.as_slice())
            .unwrap_or(&[])
    }

    /// The scenario digest recomputed client-side from the streamed depth
    /// maps — must equal the server's [`FinishReport::digest`] and the
    /// committed golden digest.
    pub fn digest(&self, id: u64) -> u64 {
        digest_of_depth_maps(self.depth_maps(id))
    }

    /// Streams one complete world through a session under a
    /// [`LoadShape`]-dictated cadence, then finishes it. `Churn` (a
    /// fleet-level shape — admission waves, not a per-stream cadence) is
    /// driven as a steady stream here; benches build the waves around this.
    ///
    /// # Errors
    ///
    /// Any wire error; typed server refusals as [`WireError::Rejected`].
    pub fn drive(
        &mut self,
        id: u64,
        trajectory: &Trajectory,
        events: &[Event],
        shape: LoadShape,
    ) -> Result<FinishReport, WireError> {
        self.send_trajectory(id, trajectory)?;
        let (chunk, poll_every, polls_per_step) = match shape {
            LoadShape::Steady { chunk } => (chunk, 1, 1),
            LoadShape::Bursty { burst, idle_pumps } => (burst, 1, idle_pumps.max(1)),
            LoadShape::Churn { .. } => (1024, 1, 1),
            LoadShape::SlowConsumer { chunk, pump_every } => (chunk, pump_every.max(1), 1),
        };
        let chunk = chunk.max(1);
        let mut offset = 0usize;
        let mut sends = 0usize;
        while offset < events.len() {
            let credits = self.credits(id) as usize;
            if credits == 0 {
                self.poll(id)?;
                continue;
            }
            let take = chunk.min(events.len() - offset).min(credits);
            let accepted = self.send_events(id, &events[offset..offset + take])? as usize;
            offset += accepted;
            sends += 1;
            if accepted == 0 || sends.is_multiple_of(poll_every) {
                for _ in 0..polls_per_step {
                    self.poll(id)?;
                }
            }
        }
        self.finish(id)
    }
}
