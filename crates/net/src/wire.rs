//! The `eventor-wire/1` frame codec: typed frames, a strict decoder, and
//! the [`WireError`] taxonomy every corruption must map onto.
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! magic        [u8; 4]  = b"EWIR"
//! version      u32      = 1
//! kind         u16      (frame kind code; unknown codes rejected)
//! reserved     u16      = 0  (writers write zero; readers reject nonzero)
//! session      u64      (wire session id; 0 = connection-level frame)
//! payload_len  u32      (bytes; bounded by the negotiated maximum)
//! payload      [u8; payload_len]
//! checksum     u64      FNV-1a 64 over every preceding byte of the frame
//! ```
//!
//! The layout deliberately follows the `eventor-evtr/1` container
//! conventions (`crates/events/src/evtr.rs`): little-endian integers, a
//! versioned header whose reserved bytes are zero-checked, length-prefixed
//! variable parts, and a trailing shared [`Fnv64`] checksum. The decoder is
//! *strict*: bad magic, version skew, nonzero reserved bytes, oversized or
//! inexact lengths, checksum mismatches, unknown kinds and malformed
//! payloads each map to a distinct [`WireError`] variant — never a panic,
//! whatever the bytes (`tests/` corruption suite + proptests).

use crate::manifest::SessionManifest;
use eventor_emvs::SessionEvent;
use eventor_events::{Event, Fnv64, Polarity};
use eventor_geom::{Pose, Trajectory, UnitQuaternion, Vec3};

/// Magic bytes opening every `eventor-wire/1` frame.
pub const WIRE_MAGIC: [u8; 4] = *b"EWIR";

/// Protocol version spoken by this codec.
pub const WIRE_VERSION: u32 = 1;

/// Fixed frame-header length in bytes (everything before the payload).
pub const HEADER_LEN: usize = 4 + 4 + 2 + 2 + 8 + 4;

/// Trailing checksum length in bytes.
pub const CHECKSUM_LEN: usize = 8;

/// Default maximum payload a peer accepts, in bytes. Depth-map frames for
/// the corpus camera are ~38 KiB; 16 MiB leaves room for far larger sensors
/// while still bounding a hostile peer's allocation.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Reply codes carried by [`WireFrame::Rejected`] and
/// [`WireFrame::Error`] frames (`docs/WIRE.md` §5).
pub mod code {
    /// The peer's frame failed wire-level validation.
    pub const PROTOCOL: u16 = 1;
    /// Admission named a scenario the server does not know.
    pub const UNKNOWN_SCENARIO: u16 = 2;
    /// Admission carried an unparsable or out-of-range world spec.
    pub const BAD_SPEC: u16 = 3;
    /// Admission reused a wire session id that already exists.
    pub const DUPLICATE_SESSION: u16 = 4;
    /// The frame named a wire session this connection never admitted.
    pub const UNKNOWN_SESSION: u16 = 5;
    /// The frame named a session owned by a different connection. Reserved:
    /// the reference server scopes wire ids per connection, so a foreign id
    /// resolves to [`UNKNOWN_SESSION`] instead; implementations with a
    /// shared namespace use this code.
    pub const NOT_OWNER: u16 = 6;
    /// The session no longer accepts this operation (closed / finished).
    pub const SESSION_CLOSED: u16 = 7;
    /// A session-layer error (out-of-order input, unservable stream, …);
    /// the reason carries the `EmvsError` rendering.
    pub const SESSION: u16 = 8;
    /// Admission used the reserved connection-level session id 0.
    pub const BAD_SESSION_ID: u16 = 9;
    /// The server is shutting down.
    pub const SHUTTING_DOWN: u16 = 10;
    /// The server refused the work for capacity reasons: the connection
    /// limit is reached (`Error` at accept time, then close) or admission
    /// control tripped on the engine's queue-depth/utilization metrics
    /// (`Rejected` at `Admit` time; the connection stays usable and the
    /// client may retry later). Never a hang, never silence.
    pub const OVERLOADED: u16 = 11;
}

/// Everything that can go wrong speaking `eventor-wire/1`. Every corruption
/// or protocol violation maps onto exactly one variant; none of them panic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// An operating-system I/O failure (connection reset, refused, …).
    Io {
        /// The failing operation's error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// The peer closed the connection cleanly between frames.
    ConnectionClosed,
    /// The connection ended (or the declared length ran out) mid-frame.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes the reader needed.
        expected: usize,
        /// Bytes actually available.
        found: usize,
    },
    /// The frame did not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version the frame declared.
        found: u32,
    },
    /// The reserved header bytes were not zero.
    NonzeroReserved {
        /// The value found.
        found: u16,
    },
    /// The frame kind code is not part of `eventor-wire/1`.
    UnknownKind {
        /// The code found.
        found: u16,
    },
    /// The declared payload length exceeds the negotiated maximum.
    Oversized {
        /// The declared payload length.
        declared: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The trailing checksum does not match the frame bytes.
    ChecksumMismatch {
        /// The checksum the frame declared.
        declared: u64,
        /// What the content actually hashes to.
        actual: u64,
    },
    /// The payload failed its kind-specific grammar.
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
    /// The peer replied with a typed rejection or error frame.
    Rejected {
        /// A [`code`] constant.
        code: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// The peer sent a validly-encoded frame that violates the protocol
    /// state machine (e.g. a request where a reply was due).
    UnexpectedFrame {
        /// The frame kind the state machine expected.
        expected: &'static str,
        /// The frame kind that arrived.
        found: &'static str,
    },
    /// The peer stopped sending mid-frame (or a reply never arrived) for
    /// longer than the configured read timeout.
    Timeout {
        /// Whether bytes of a partial frame had already arrived.
        mid_frame: bool,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { kind, detail } => write!(f, "i/o error ({kind:?}): {detail}"),
            Self::ConnectionClosed => write!(f, "connection closed"),
            Self::Truncated {
                what,
                expected,
                found,
            } => write!(
                f,
                "truncated while reading {what}: needed {expected} bytes, got {found}"
            ),
            Self::BadMagic { found } => {
                write!(f, "bad magic {found:?}, expected \"EWIR\"")
            }
            Self::UnsupportedVersion { found } => write!(
                f,
                "unsupported wire version {found} (this peer speaks {WIRE_VERSION})"
            ),
            Self::NonzeroReserved { found } => write!(
                f,
                "reserved header bytes must be zero (got {found:#06x})"
            ),
            Self::UnknownKind { found } => write!(f, "unknown frame kind {found:#06x}"),
            Self::Oversized { declared, max } => write!(
                f,
                "declared payload of {declared} bytes exceeds the {max}-byte maximum"
            ),
            Self::ChecksumMismatch { declared, actual } => write!(
                f,
                "checksum mismatch: frame declares {declared:#018x}, content hashes to {actual:#018x}"
            ),
            Self::Malformed { reason } => write!(f, "malformed payload: {reason}"),
            Self::Rejected { code, reason } => {
                write!(f, "peer rejected the request (code {code}): {reason}")
            }
            Self::UnexpectedFrame { expected, found } => {
                write!(f, "expected a {expected} frame, got {found}")
            }
            Self::Timeout { mid_frame } => {
                if *mid_frame {
                    write!(f, "peer stalled mid-frame past the read timeout")
                } else {
                    write!(f, "timed out waiting for a frame")
                }
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

fn malformed(reason: impl Into<String>) -> WireError {
    WireError::Malformed {
        reason: reason.into(),
    }
}

/// One `eventor-wire/1` lifecycle notification — the wire rendering of
/// [`SessionEvent`], with every count widened to `u64` so the encoding is
/// identical on 32- and 64-bit hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSessionEvent {
    /// A key frame's voting segment closed.
    SegmentRetired {
        /// Key-frame index.
        index: u64,
        /// Event frames voted into the segment.
        frames: u64,
        /// Events voted into the segment.
        events: u64,
    },
    /// Structure detection ran on the retired segment's DSI.
    DepthMapReady {
        /// Key-frame index.
        index: u64,
        /// Semi-dense pixels estimated.
        valid_pixels: u64,
    },
    /// The key frame's full reconstruction is available.
    KeyframeReady {
        /// Key-frame index.
        index: u64,
        /// DSI votes cast.
        votes_cast: u64,
        /// Points contributed to the global cloud.
        map_points: u64,
    },
    /// The key frame's cloud was fused into the incremental global map.
    MapFused {
        /// Key-frame index.
        index: u64,
        /// Points inserted.
        points: u64,
        /// Voxels newly occupied.
        new_voxels: u64,
    },
}

impl WireSessionEvent {
    /// The wire rendering of a [`SessionEvent`]. Returns `None` for
    /// lifecycle variants newer than this protocol version (the enum is
    /// non-exhaustive); `eventor-wire/1` drops what it cannot name rather
    /// than guessing.
    pub fn from_session(e: &SessionEvent) -> Option<Self> {
        Some(match *e {
            SessionEvent::SegmentRetired {
                index,
                frames,
                events,
            } => Self::SegmentRetired {
                index: index as u64,
                frames: frames as u64,
                events: events as u64,
            },
            SessionEvent::DepthMapReady {
                index,
                valid_pixels,
            } => Self::DepthMapReady {
                index: index as u64,
                valid_pixels: valid_pixels as u64,
            },
            SessionEvent::KeyframeReady {
                index,
                votes_cast,
                map_points,
            } => Self::KeyframeReady {
                index: index as u64,
                votes_cast,
                map_points: map_points as u64,
            },
            SessionEvent::MapFused {
                index,
                points,
                new_voxels,
            } => Self::MapFused {
                index: index as u64,
                points: points as u64,
                new_voxels: new_voxels as u64,
            },
            _ => return None,
        })
    }
}

/// One streamed depth map: the wire rendering of a retired key frame's
/// reconstruction, carrying the exact `f64` bit patterns so the receiver
/// can recompute the scenario digest bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthMapFrame {
    /// Key-frame index (position in the session's key-frame list).
    pub index: u64,
    /// Depth-map width in pixels.
    pub width: u64,
    /// Depth-map height in pixels.
    pub height: u64,
    /// DSI votes cast for this key frame.
    pub votes_cast: u64,
    /// Raw `f64` bit patterns of every depth sample, row-major.
    pub depths: Vec<u64>,
}

/// The scenario digest recomputed from streamed [`DepthMapFrame`]s — the
/// exact algorithm of `eventor_scenarios::digest_output` (key-frame count,
/// then per key frame its dimensions, vote count and every depth sample's
/// raw bit pattern), so a remote client can verify bit-identity against the
/// committed golden digests without the terminal output in hand.
pub fn digest_of_depth_maps(maps: &[DepthMapFrame]) -> u64 {
    let mut h = Fnv64::new();
    h.update_u64(maps.len() as u64);
    for m in maps {
        h.update_u64(m.width);
        h.update_u64(m.height);
        h.update_u64(m.votes_cast);
        for &bits in &m.depths {
            h.update_u64(bits);
        }
    }
    h.finish()
}

/// Every frame of the `eventor-wire/1` protocol, request and reply sides
/// alike. The session id travels in the frame header, not here — a frame is
/// `(session, WireFrame)` on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    // ---- client → server ----
    /// Connection handshake request.
    Hello,
    /// Session admission: the declarative config manifest. The header's
    /// session id is the **client-chosen** wire id for the new session.
    Admit {
        /// What to serve and on which backend.
        manifest: SessionManifest,
    },
    /// A batch of timestamped pose samples for one session.
    Poses {
        /// `(timestamp, pose)` samples, strictly time-ordered.
        samples: Vec<(f64, Pose)>,
    },
    /// A time-ordered event batch for one session.
    Events {
        /// The events, time-ordered.
        events: Vec<Event>,
    },
    /// Ask the server to pump and return new lifecycle events, new depth
    /// maps and a fresh credit grant for one session.
    Poll,
    /// Declare end-of-stream for one session (no further events).
    Close,
    /// Drain one session to completion and return its terminal summary.
    Finish,
    /// Drop one session's queued input and clear its failure state.
    Discard,
    /// Request the engine-wide `eventor-metrics/1` snapshot.
    Metrics,
    /// Ordered connection shutdown.
    Bye,

    // ---- either direction (keepalive, wire v1.1) ----
    /// Keepalive probe. Direction-neutral: the server pings idle
    /// connections to distinguish idle-but-alive peers from dead ones, and
    /// a client may probe a server the same way. The receiver answers with
    /// a [`Pong`](Self::Pong) echoing the nonce; it is never ignored.
    Ping {
        /// Opaque echo token chosen by the sender.
        nonce: u64,
    },
    /// Keepalive answer: echoes the [`Ping`](Self::Ping) nonce verbatim.
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },

    // ---- server → client ----
    /// Handshake accept.
    HelloOk {
        /// Largest payload the server accepts per frame, in bytes.
        max_payload: u32,
        /// Per-session ingest-queue capacity, in events.
        queue_capacity: u64,
    },
    /// The session was admitted.
    Admitted {
        /// Initial flow-control credit grant, in events.
        credits: u64,
    },
    /// The admission was refused (the connection stays usable).
    Rejected {
        /// A [`code`] constant.
        code: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// Generic success reply (poses accepted, session closed, discarded).
    Ok,
    /// Events reply: how many were accepted (short-write semantics — the
    /// excess was **not** buffered) and the remaining credit grant.
    EventsAck {
        /// Events accepted into the session's ingest queue.
        accepted: u64,
        /// Events the client may send before the next ack or poll.
        credits: u64,
    },
    /// New lifecycle notifications since the last poll, in order.
    Lifecycle {
        /// The notifications.
        events: Vec<WireSessionEvent>,
    },
    /// One newly retired depth map.
    DepthMap(DepthMapFrame),
    /// Poll reply terminator, carrying a fresh credit grant.
    PollDone {
        /// Events the client may send before the next ack or poll.
        credits: u64,
    },
    /// Finish reply terminator: the session's terminal summary.
    Finished {
        /// Server-side scenario digest over the session's depth maps.
        digest: u64,
        /// Key frames the session produced.
        keyframes: u64,
        /// Events the session's datapath processed.
        events_processed: u64,
    },
    /// Metrics reply: the byte-reproducible `eventor-metrics/1` document.
    MetricsReply {
        /// The JSON document.
        json: String,
    },
    /// Typed failure reply (the connection stays open unless the error was
    /// a wire-level corruption).
    Error {
        /// A [`code`] constant.
        code: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// Ordered shutdown acknowledgement; the server closes after sending.
    ByeOk,
}

impl WireFrame {
    /// The kind code written into the frame header.
    pub fn kind(&self) -> u16 {
        match self {
            Self::Hello => 0x0001,
            Self::Admit { .. } => 0x0002,
            Self::Poses { .. } => 0x0003,
            Self::Events { .. } => 0x0004,
            Self::Poll => 0x0005,
            Self::Close => 0x0006,
            Self::Finish => 0x0007,
            Self::Discard => 0x0008,
            Self::Metrics => 0x0009,
            Self::Bye => 0x000a,
            Self::Ping { .. } => 0x000b,
            Self::Pong { .. } => 0x000c,
            Self::HelloOk { .. } => 0x8001,
            Self::Admitted { .. } => 0x8002,
            Self::Rejected { .. } => 0x8003,
            Self::Ok => 0x8004,
            Self::EventsAck { .. } => 0x8005,
            Self::Lifecycle { .. } => 0x8006,
            Self::DepthMap(_) => 0x8007,
            Self::PollDone { .. } => 0x8008,
            Self::Finished { .. } => 0x8009,
            Self::MetricsReply { .. } => 0x800a,
            Self::Error { .. } => 0x800b,
            Self::ByeOk => 0x800c,
        }
    }

    /// Human-readable kind name (state-machine diagnostics).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::Hello => "Hello",
            Self::Admit { .. } => "Admit",
            Self::Poses { .. } => "Poses",
            Self::Events { .. } => "Events",
            Self::Poll => "Poll",
            Self::Close => "Close",
            Self::Finish => "Finish",
            Self::Discard => "Discard",
            Self::Metrics => "Metrics",
            Self::Bye => "Bye",
            Self::Ping { .. } => "Ping",
            Self::Pong { .. } => "Pong",
            Self::HelloOk { .. } => "HelloOk",
            Self::Admitted { .. } => "Admitted",
            Self::Rejected { .. } => "Rejected",
            Self::Ok => "Ok",
            Self::EventsAck { .. } => "EventsAck",
            Self::Lifecycle { .. } => "Lifecycle",
            Self::DepthMap(_) => "DepthMap",
            Self::PollDone { .. } => "PollDone",
            Self::Finished { .. } => "Finished",
            Self::MetricsReply { .. } => "MetricsReply",
            Self::Error { .. } => "Error",
            Self::ByeOk => "ByeOk",
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Hello
            | Self::Poll
            | Self::Close
            | Self::Finish
            | Self::Discard
            | Self::Metrics
            | Self::Bye
            | Self::Ok
            | Self::ByeOk => {}
            Self::Admit { manifest } => out = manifest.encode(),
            Self::Poses { samples } => {
                out.reserve(8 + samples.len() * 64);
                out.extend_from_slice(&(samples.len() as u64).to_le_bytes());
                for (timestamp, pose) in samples {
                    let t = pose.translation;
                    let q = pose.rotation;
                    for v in [*timestamp, t.x, t.y, t.z, q.x, q.y, q.z, q.w] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Self::Events { events } => {
                out.reserve(8 + events.len() * 13);
                out.extend_from_slice(&(events.len() as u64).to_le_bytes());
                for e in events {
                    out.extend_from_slice(&e.t.to_le_bytes());
                    out.extend_from_slice(&e.x.to_le_bytes());
                    out.extend_from_slice(&e.y.to_le_bytes());
                    out.push(match e.polarity {
                        Polarity::Positive => 1,
                        Polarity::Negative => 0,
                    });
                }
            }
            Self::HelloOk {
                max_payload,
                queue_capacity,
            } => {
                out.extend_from_slice(&max_payload.to_le_bytes());
                out.extend_from_slice(&queue_capacity.to_le_bytes());
            }
            Self::Admitted { credits } | Self::PollDone { credits } => {
                out.extend_from_slice(&credits.to_le_bytes());
            }
            Self::Ping { nonce } | Self::Pong { nonce } => {
                out.extend_from_slice(&nonce.to_le_bytes());
            }
            Self::Rejected { code, reason } | Self::Error { code, reason } => {
                out.extend_from_slice(&code.to_le_bytes());
                out.extend_from_slice(&(reason.len() as u32).to_le_bytes());
                out.extend_from_slice(reason.as_bytes());
            }
            Self::EventsAck { accepted, credits } => {
                out.extend_from_slice(&accepted.to_le_bytes());
                out.extend_from_slice(&credits.to_le_bytes());
            }
            Self::Lifecycle { events } => {
                out.extend_from_slice(&(events.len() as u64).to_le_bytes());
                for e in events {
                    let (tag, a, b, c) = match *e {
                        WireSessionEvent::SegmentRetired {
                            index,
                            frames,
                            events,
                        } => (1u8, index, frames, events),
                        WireSessionEvent::DepthMapReady {
                            index,
                            valid_pixels,
                        } => (2, index, valid_pixels, 0),
                        WireSessionEvent::KeyframeReady {
                            index,
                            votes_cast,
                            map_points,
                        } => (3, index, votes_cast, map_points),
                        WireSessionEvent::MapFused {
                            index,
                            points,
                            new_voxels,
                        } => (4, index, points, new_voxels),
                    };
                    out.push(tag);
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&b.to_le_bytes());
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            Self::DepthMap(m) => {
                out.reserve(40 + m.depths.len() * 8);
                out.extend_from_slice(&m.index.to_le_bytes());
                out.extend_from_slice(&m.width.to_le_bytes());
                out.extend_from_slice(&m.height.to_le_bytes());
                out.extend_from_slice(&m.votes_cast.to_le_bytes());
                out.extend_from_slice(&(m.depths.len() as u64).to_le_bytes());
                for &bits in &m.depths {
                    out.extend_from_slice(&bits.to_le_bytes());
                }
            }
            Self::Finished {
                digest,
                keyframes,
                events_processed,
            } => {
                out.extend_from_slice(&digest.to_le_bytes());
                out.extend_from_slice(&keyframes.to_le_bytes());
                out.extend_from_slice(&events_processed.to_le_bytes());
            }
            Self::MetricsReply { json } => {
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
        }
        out
    }
}

/// Serializes one frame — header, payload, trailing checksum — into its
/// exact wire bytes.
pub fn encode_frame(session: u64, frame: &WireFrame) -> Vec<u8> {
    let payload = frame.encode_payload();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&frame.kind().to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = {
        let mut h = Fnv64::new();
        h.update(&out);
        h.finish()
    };
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A little-endian byte cursor with bounds-checked reads (the `evtr` reader
/// idiom).
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Truncated {
                what,
                expected: n,
                found: self.bytes.len().saturating_sub(self.at),
            })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| malformed(format!("{what} is not valid UTF-8")))
    }

    fn done(&self, what: &'static str) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after the {what} payload",
                self.bytes.len() - self.at
            )))
        }
    }
}

/// Checks that a length-prefixed array's declared count fits the remaining
/// payload exactly — with checked arithmetic, so a crafted count yields a
/// typed error, never an overflow panic or a capacity abort.
fn check_count(
    count: u64,
    elem_size: usize,
    remaining: usize,
    what: &'static str,
) -> Result<usize, WireError> {
    let count = usize::try_from(count)
        .map_err(|_| malformed(format!("{what} count {count} does not fit this host")))?;
    match count.checked_mul(elem_size) {
        Some(bytes) if bytes == remaining => Ok(count),
        _ => Err(malformed(format!(
            "{what} declares {count} entries but holds {remaining} payload bytes"
        ))),
    }
}

fn decode_payload(kind: u16, payload: &[u8]) -> Result<WireFrame, WireError> {
    let empty = |frame: WireFrame| -> Result<WireFrame, WireError> {
        if payload.is_empty() {
            Ok(frame)
        } else {
            Err(malformed(format!(
                "{} frames carry no payload (got {} bytes)",
                frame.kind_name(),
                payload.len()
            )))
        }
    };
    let mut c = Cursor::new(payload);
    match kind {
        0x0001 => empty(WireFrame::Hello),
        0x0002 => {
            let manifest = SessionManifest::decode(payload)?;
            Ok(WireFrame::Admit { manifest })
        }
        0x0003 => {
            let count = c.u64("pose sample count")?;
            let count = check_count(count, 64, payload.len() - 8, "Poses")?;
            let mut samples = Vec::with_capacity(count);
            for _ in 0..count {
                let what = "pose sample";
                let timestamp = c.f64(what)?;
                let translation = Vec3::new(c.f64(what)?, c.f64(what)?, c.f64(what)?);
                let (qx, qy, qz, qw) = (c.f64(what)?, c.f64(what)?, c.f64(what)?, c.f64(what)?);
                if !timestamp.is_finite() {
                    return Err(malformed("pose sample has a non-finite timestamp"));
                }
                // Bit-preserving, as in the evtr reader: renormalizing could
                // perturb the rotation by a ULP and break bit-exact serving.
                let rotation = UnitQuaternion::from_normalized(qw, qx, qy, qz, 1e-6)
                    .ok_or_else(|| malformed("pose sample rotation is not unit norm"))?;
                samples.push((timestamp, Pose::new(rotation, translation)));
            }
            Ok(WireFrame::Poses { samples })
        }
        0x0004 => {
            let count = c.u64("event count")?;
            let count = check_count(count, 13, payload.len() - 8, "Events")?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let what = "event";
                let t = c.f64(what)?;
                let x = c.u16(what)?;
                let y = c.u16(what)?;
                let polarity = match c.take(1, what)?[0] {
                    1 => Polarity::Positive,
                    0 => Polarity::Negative,
                    other => {
                        return Err(malformed(format!("invalid polarity byte {other}")));
                    }
                };
                if !t.is_finite() {
                    return Err(malformed("event has a non-finite timestamp"));
                }
                events.push(Event::new(t, x, y, polarity));
            }
            Ok(WireFrame::Events { events })
        }
        0x0005 => empty(WireFrame::Poll),
        0x0006 => empty(WireFrame::Close),
        0x0007 => empty(WireFrame::Finish),
        0x0008 => empty(WireFrame::Discard),
        0x0009 => empty(WireFrame::Metrics),
        0x000a => empty(WireFrame::Bye),
        0x000b | 0x000c => {
            let nonce = c.u64("keepalive nonce")?;
            c.done("keepalive")?;
            Ok(if kind == 0x000b {
                WireFrame::Ping { nonce }
            } else {
                WireFrame::Pong { nonce }
            })
        }
        0x8001 => {
            let max_payload = c.u32("HelloOk max_payload")?;
            let queue_capacity = c.u64("HelloOk queue_capacity")?;
            c.done("HelloOk")?;
            Ok(WireFrame::HelloOk {
                max_payload,
                queue_capacity,
            })
        }
        0x8002 => {
            let credits = c.u64("Admitted credits")?;
            c.done("Admitted")?;
            Ok(WireFrame::Admitted { credits })
        }
        0x8003 | 0x800b => {
            let code = c.u16("reply code")?;
            let reason = c.string("reply reason")?;
            c.done("reply")?;
            Ok(if kind == 0x8003 {
                WireFrame::Rejected { code, reason }
            } else {
                WireFrame::Error { code, reason }
            })
        }
        0x8004 => empty(WireFrame::Ok),
        0x8005 => {
            let accepted = c.u64("EventsAck accepted")?;
            let credits = c.u64("EventsAck credits")?;
            c.done("EventsAck")?;
            Ok(WireFrame::EventsAck { accepted, credits })
        }
        0x8006 => {
            let count = c.u64("lifecycle event count")?;
            let count = check_count(count, 25, payload.len() - 8, "Lifecycle")?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let what = "lifecycle event";
                let tag = c.take(1, what)?[0];
                let (a, b, cc) = (c.u64(what)?, c.u64(what)?, c.u64(what)?);
                events.push(match tag {
                    1 => WireSessionEvent::SegmentRetired {
                        index: a,
                        frames: b,
                        events: cc,
                    },
                    2 if cc == 0 => WireSessionEvent::DepthMapReady {
                        index: a,
                        valid_pixels: b,
                    },
                    3 => WireSessionEvent::KeyframeReady {
                        index: a,
                        votes_cast: b,
                        map_points: cc,
                    },
                    4 => WireSessionEvent::MapFused {
                        index: a,
                        points: b,
                        new_voxels: cc,
                    },
                    other => {
                        return Err(malformed(format!(
                            "unknown lifecycle tag {other} (or nonzero padding)"
                        )));
                    }
                });
            }
            Ok(WireFrame::Lifecycle { events })
        }
        0x8007 => {
            let what = "DepthMap";
            let index = c.u64(what)?;
            let width = c.u64(what)?;
            let height = c.u64(what)?;
            let votes_cast = c.u64(what)?;
            let count = c.u64("depth sample count")?;
            let count = check_count(count, 8, payload.len() - 40, "DepthMap samples")?;
            let mut depths = Vec::with_capacity(count);
            for _ in 0..count {
                depths.push(c.u64("depth sample")?);
            }
            // Dimensions must cover the sample count (width × height with
            // checked arithmetic — a crafted pair must not overflow).
            match width.checked_mul(height) {
                Some(pixels) if pixels == count as u64 => {}
                _ => {
                    return Err(malformed(format!(
                        "DepthMap declares {width}x{height} pixels but carries {count} samples"
                    )));
                }
            }
            Ok(WireFrame::DepthMap(DepthMapFrame {
                index,
                width,
                height,
                votes_cast,
                depths,
            }))
        }
        0x8008 => {
            let credits = c.u64("PollDone credits")?;
            c.done("PollDone")?;
            Ok(WireFrame::PollDone { credits })
        }
        0x8009 => {
            let digest = c.u64("Finished digest")?;
            let keyframes = c.u64("Finished keyframes")?;
            let events_processed = c.u64("Finished events_processed")?;
            c.done("Finished")?;
            Ok(WireFrame::Finished {
                digest,
                keyframes,
                events_processed,
            })
        }
        0x800a => {
            let json = c.string("metrics document")?;
            c.done("MetricsReply")?;
            Ok(WireFrame::MetricsReply { json })
        }
        0x800c => empty(WireFrame::ByeOk),
        found => Err(WireError::UnknownKind { found }),
    }
}

/// Validates the fixed header of a frame and returns `(kind, session,
/// payload_len)`. Used both by [`decode_frame`] and by the streaming reader
/// (which must learn the payload length before the payload arrives).
pub(crate) fn decode_header(header: &[u8], max_payload: u32) -> Result<(u16, u64, u32), WireError> {
    let mut c = Cursor::new(header);
    let magic = c.take(4, "frame magic")?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic {
            found: magic.try_into().unwrap(),
        });
    }
    let version = c.u32("frame version")?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let kind = c.u16("frame kind")?;
    let reserved = c.u16("reserved header bytes")?;
    if reserved != 0 {
        return Err(WireError::NonzeroReserved { found: reserved });
    }
    let session = c.u64("frame session id")?;
    let payload_len = c.u32("frame payload length")?;
    if payload_len > max_payload {
        return Err(WireError::Oversized {
            declared: payload_len,
            max: max_payload,
        });
    }
    Ok((kind, session, payload_len))
}

/// Decodes one complete frame from its exact wire bytes: header checks
/// (magic, version, reserved, size bound), exact-length check, checksum
/// check, kind dispatch, payload grammar.
///
/// # Errors
///
/// The [`WireError`] variant naming the first violation found.
pub fn decode_frame(bytes: &[u8], max_payload: u32) -> Result<(u64, WireFrame), WireError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(WireError::Truncated {
            what: "frame",
            expected: HEADER_LEN + CHECKSUM_LEN,
            found: bytes.len(),
        });
    }
    let (kind, session, payload_len) = decode_header(&bytes[..HEADER_LEN], max_payload)?;
    let expected = HEADER_LEN + payload_len as usize + CHECKSUM_LEN;
    if bytes.len() != expected {
        return Err(WireError::Truncated {
            what: "frame payload",
            expected,
            found: bytes.len(),
        });
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let declared = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
    let actual = {
        let mut h = Fnv64::new();
        h.update(body);
        h.finish()
    };
    if declared != actual {
        return Err(WireError::ChecksumMismatch { declared, actual });
    }
    let frame = decode_payload(kind, &body[HEADER_LEN..])?;
    Ok((session, frame))
}

/// Encodes a trajectory as the [`WireFrame::Poses`] sample list.
pub fn trajectory_samples(trajectory: &Trajectory) -> Vec<(f64, Pose)> {
    trajectory.iter().map(|s| (s.timestamp, s.pose)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ManifestSource;
    use eventor_scenarios::BackendKind;

    fn sample_frames() -> Vec<(u64, WireFrame)> {
        vec![
            (0, WireFrame::Hello),
            (
                7,
                WireFrame::Admit {
                    manifest: SessionManifest {
                        backend: BackendKind::Sharded,
                        source: ManifestSource::Scenario {
                            name: "shake_closeup".into(),
                            seed: 0xdead_beef,
                        },
                    },
                },
            ),
            (
                7,
                WireFrame::Poses {
                    samples: vec![
                        (0.0, Pose::identity()),
                        (
                            0.5,
                            Pose::new(
                                UnitQuaternion::from_euler(0.02, -0.01, 0.3),
                                Vec3::new(0.4, -0.1, 0.05),
                            ),
                        ),
                    ],
                },
            ),
            (
                7,
                WireFrame::Events {
                    events: vec![
                        Event::new(0.001, 3, 4, Polarity::Positive),
                        Event::new(0.002, 5, 6, Polarity::Negative),
                    ],
                },
            ),
            (7, WireFrame::Poll),
            (7, WireFrame::Close),
            (7, WireFrame::Finish),
            (7, WireFrame::Discard),
            (0, WireFrame::Metrics),
            (0, WireFrame::Bye),
            (
                0,
                WireFrame::Ping {
                    nonce: 0xfeed_face_cafe_f00d,
                },
            ),
            (
                0,
                WireFrame::Pong {
                    nonce: 0xfeed_face_cafe_f00d,
                },
            ),
            (
                0,
                WireFrame::HelloOk {
                    max_payload: DEFAULT_MAX_PAYLOAD,
                    queue_capacity: 65536,
                },
            ),
            (7, WireFrame::Admitted { credits: 65536 }),
            (
                7,
                WireFrame::Rejected {
                    code: code::UNKNOWN_SCENARIO,
                    reason: "no such scenario".into(),
                },
            ),
            (7, WireFrame::Ok),
            (
                7,
                WireFrame::EventsAck {
                    accepted: 100,
                    credits: 65436,
                },
            ),
            (
                7,
                WireFrame::Lifecycle {
                    events: vec![
                        WireSessionEvent::SegmentRetired {
                            index: 0,
                            frames: 12,
                            events: 3400,
                        },
                        WireSessionEvent::DepthMapReady {
                            index: 0,
                            valid_pixels: 210,
                        },
                        WireSessionEvent::KeyframeReady {
                            index: 0,
                            votes_cast: 99,
                            map_points: 210,
                        },
                        WireSessionEvent::MapFused {
                            index: 0,
                            points: 210,
                            new_voxels: 11,
                        },
                    ],
                },
            ),
            (
                7,
                WireFrame::DepthMap(DepthMapFrame {
                    index: 0,
                    width: 3,
                    height: 2,
                    votes_cast: 42,
                    depths: vec![
                        1.0f64.to_bits(),
                        f64::NAN.to_bits(),
                        2.5f64.to_bits(),
                        0.0f64.to_bits(),
                        3.25f64.to_bits(),
                        4.5f64.to_bits(),
                    ],
                }),
            ),
            (7, WireFrame::PollDone { credits: 65536 }),
            (
                7,
                WireFrame::Finished {
                    digest: 0x0123_4567_89ab_cdef,
                    keyframes: 4,
                    events_processed: 24_000,
                },
            ),
            (
                0,
                WireFrame::MetricsReply {
                    json: "{\n  \"format\": \"eventor-metrics/1\"\n}\n".into(),
                },
            ),
            (
                7,
                WireFrame::Error {
                    code: code::SESSION,
                    reason: "event at t=3 pushed out of time order".into(),
                },
            ),
            (0, WireFrame::ByeOk),
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        for (session, frame) in sample_frames() {
            let bytes = encode_frame(session, &frame);
            let (s, decoded) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD)
                .unwrap_or_else(|e| panic!("{} failed to decode: {e}", frame.kind_name()));
            assert_eq!(s, session, "{}", frame.kind_name());
            assert_eq!(decoded, frame, "{}", frame.kind_name());
        }
    }

    #[test]
    fn kind_codes_are_distinct() {
        let frames = sample_frames();
        let codes: std::collections::HashSet<u16> = frames.iter().map(|(_, f)| f.kind()).collect();
        assert_eq!(codes.len(), frames.len());
    }

    #[test]
    fn depth_map_digest_matches_manual_fnv() {
        let maps = vec![DepthMapFrame {
            index: 0,
            width: 2,
            height: 1,
            votes_cast: 5,
            depths: vec![1.5f64.to_bits(), f64::NAN.to_bits()],
        }];
        let mut h = Fnv64::new();
        h.update_u64(1);
        h.update_u64(2);
        h.update_u64(1);
        h.update_u64(5);
        h.update_u64(1.5f64.to_bits());
        h.update_u64(f64::NAN.to_bits());
        assert_eq!(digest_of_depth_maps(&maps), h.finish());
        assert_ne!(digest_of_depth_maps(&maps), digest_of_depth_maps(&[]));
    }

    #[test]
    fn short_buffers_are_truncation_errors() {
        let bytes = encode_frame(3, &WireFrame::Poll);
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "prefix of {cut} bytes: {err}"
            );
        }
    }

    #[test]
    fn oversized_declared_payload_is_rejected_before_allocation() {
        let mut bytes = encode_frame(1, &WireFrame::Poll);
        bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }), "{err}");
    }

    #[test]
    fn absurd_event_count_is_malformed_not_a_panic() {
        // An Events payload declaring 2^56 events in 8 bytes: the count
        // check must use checked arithmetic, as in the evtr reader.
        let mut payload = Vec::new();
        payload.extend_from_slice(&(1u64 << 56).to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0x0004u16.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut h = Fnv64::new();
        h.update(&bytes);
        let checksum = h.finish();
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::Malformed { .. }), "{err}");
    }
}
