//! # eventor-net
//!
//! The TCP serving front-end of the Eventor reproduction: the versioned
//! **`eventor-wire/1`** protocol putting the multi-session serving engine
//! (`eventor-serve`) behind a socket, entirely on `std::net` — no runtime,
//! no framework, hermetic like everything else in the workspace.
//!
//! `eventor-wire/1` is a length-prefixed binary protocol following the
//! `eventor-evtr/1` container conventions: little-endian integers, a
//! versioned header with zero-checked reserved bytes, length-prefixed
//! sections and a trailing FNV-1a 64 checksum per frame. A connection
//! admits sessions from declarative manifests (corpus scenario by name, or
//! an inline `eventor-fuzzworld/1` spec), streams poses and events in,
//! receives lifecycle notifications and bit-exact depth maps back, and
//! ends with an ordered shutdown. Engine backpressure is surfaced as
//! **credit-grant flow control**: every ack and poll reply carries how many
//! events the server guarantees to accept next, so a well-behaved client
//! never loses data, while a misbehaving one gets a typed short-write ack —
//! never silent truncation. The full grammar and state machine live in
//! `docs/WIRE.md`.
//!
//! Served sessions are built through the exact golden construction path
//! (`eventor_scenarios::session_for_profile`), so a depth map streamed over
//! TCP is **bit-identical** to one computed in-process: the loopback
//! equivalence suite pins every corpus world's remote digest to the
//! committed golden table, and the `wire_loopback` bench holds the line at
//! hundreds of concurrent clients.
//!
//! The server is a **single-threaded readiness loop** over nonblocking
//! sockets (no thread per connection, no fixed poll tick): per-connection
//! read/write state machines, vectored-write send buffering, a connection
//! limit and metrics-driven session admission control that answer overload
//! with a typed [`code::OVERLOADED`] reply, and `Ping`/`Pong` keepalive
//! (wire v1.1) so idle-but-alive clients are distinguishable from dead
//! peers — see [`NetConfig`], [`AdmissionConfig`] and [`KeepaliveConfig`].
//!
//! ## Example
//!
//! ```
//! use eventor_net::{
//!     spawn_loopback, ManifestSource, NetConfig, SessionManifest, WireClient,
//! };
//! use eventor_scenarios::{find, BackendKind, Scenario};
//!
//! # fn main() -> Result<(), eventor_net::WireError> {
//! let server = spawn_loopback(NetConfig::new())?;
//! let mut client = WireClient::connect(server.addr())?;
//!
//! let scenario = find("shake_closeup").expect("corpus scenario");
//! let world = scenario.build(scenario.default_seed()).expect("world");
//! let id = client.admit(&SessionManifest {
//!     backend: BackendKind::Software,
//!     source: ManifestSource::Scenario {
//!         name: "shake_closeup".into(),
//!         seed: scenario.default_seed(),
//!     },
//! })?;
//! client.send_trajectory(id, &world.trajectory)?;
//! let mut offset = 0;
//! while offset < world.events.len() {
//!     let take = (world.events.len() - offset).min(client.credits(id) as usize);
//!     if take == 0 {
//!         client.poll(id)?;
//!         continue;
//!     }
//!     let events = &world.events.as_slice()[offset..offset + take];
//!     offset += client.send_events(id, events)? as usize;
//! }
//! let report = client.finish(id)?;
//! // Server digest, client recomputation and the golden table all agree.
//! assert_eq!(report.digest, client.digest(id));
//! assert_eq!(report.digest, eventor_scenarios::golden_digest("shake_closeup").unwrap());
//! client.bye()?;
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod frame_io;
mod manifest;
mod server;
mod wire;

pub use client::{FinishReport, WireClient};
pub use frame_io::{read_frame, write_frame, IdleWait};
pub use manifest::{ManifestSource, SessionManifest};
pub use server::{
    spawn_loopback, AdmissionConfig, KeepaliveConfig, NetConfig, ServerHandle, WireServer,
};
pub use wire::{
    code, decode_frame, digest_of_depth_maps, encode_frame, trajectory_samples, DepthMapFrame,
    WireError, WireFrame, WireSessionEvent, CHECKSUM_LEN, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
    WIRE_MAGIC, WIRE_VERSION,
};
