//! Session admission manifests: the declarative payload of a
//! [`WireFrame::Admit`](crate::WireFrame::Admit) frame.
//!
//! A manifest names **what to serve** (a corpus scenario by name and seed,
//! or a committed `eventor-fuzzworld/1` spec inline) and **which backend**
//! to build the session on. The server resolves it through the exact
//! construction path the golden digest table was computed with
//! ([`eventor_scenarios::session_for_profile`]), so a remotely admitted
//! session is bit-identical to its in-process twin.

use crate::wire::{code, WireError};
use eventor_core::EventorSession;
use eventor_emvs::EmvsConfig;
use eventor_geom::CameraModel;
use eventor_scenarios::{find, session_for_profile, BackendKind, WorldSpec};

/// What a session should reconstruct.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestSource {
    /// A corpus scenario, addressed by its catalog name and a seed.
    Scenario {
        /// Catalog name (`eventor_scenarios::find`).
        name: String,
        /// World seed.
        seed: u64,
    },
    /// An inline `eventor-fuzzworld/1` spec (the text form of
    /// [`WorldSpec`]).
    Spec {
        /// The spec text, header line included.
        text: String,
    },
}

/// The admission manifest: source plus execution backend.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionManifest {
    /// Execution path to build the session on.
    pub backend: BackendKind,
    /// What to reconstruct.
    pub source: ManifestSource,
}

const BACKEND_SOFTWARE: u8 = 0;
const BACKEND_SHARDED: u8 = 1;
const BACKEND_COSIM: u8 = 2;
const SOURCE_SCENARIO: u8 = 1;
const SOURCE_SPEC: u8 = 2;

impl SessionManifest {
    /// Serializes the manifest as an `Admit` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(match self.backend {
            BackendKind::Software | BackendKind::Serve => BACKEND_SOFTWARE,
            BackendKind::Sharded => BACKEND_SHARDED,
            BackendKind::Cosim => BACKEND_COSIM,
        });
        match &self.source {
            ManifestSource::Scenario { name, seed } => {
                out.push(SOURCE_SCENARIO);
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ManifestSource::Spec { text } => {
                out.push(SOURCE_SPEC);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
        }
        out
    }

    /// Parses an `Admit` payload. Structural problems (unknown tags, bad
    /// lengths, non-UTF-8 text) are [`WireError::Malformed`] — the server
    /// closes the connection on those; *semantic* problems (an unknown
    /// scenario name, an out-of-range spec) are diagnosed later by
    /// [`Self::resolve`] and rejected without dropping the connection.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] naming the structural violation.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let malformed = |reason: String| WireError::Malformed { reason };
        let take = |at: &mut usize, n: usize, what: &str| -> Result<&[u8], WireError> {
            let end = at
                .checked_add(n)
                .filter(|&end| end <= payload.len())
                .ok_or_else(|| malformed(format!("manifest truncated reading {what}")))?;
            let slice = &payload[*at..end];
            *at = end;
            Ok(slice)
        };
        let mut at = 0usize;
        let backend = match take(&mut at, 1, "backend tag")?[0] {
            BACKEND_SOFTWARE => BackendKind::Software,
            BACKEND_SHARDED => BackendKind::Sharded,
            BACKEND_COSIM => BackendKind::Cosim,
            other => return Err(malformed(format!("unknown backend tag {other}"))),
        };
        let source_tag = take(&mut at, 1, "source tag")?[0];
        let len = u32::from_le_bytes(take(&mut at, 4, "source length")?.try_into().unwrap());
        let text = String::from_utf8(take(&mut at, len as usize, "source text")?.to_vec())
            .map_err(|_| malformed("manifest source text is not valid UTF-8".into()))?;
        let source = match source_tag {
            SOURCE_SCENARIO => {
                let seed =
                    u64::from_le_bytes(take(&mut at, 8, "scenario seed")?.try_into().unwrap());
                ManifestSource::Scenario { name: text, seed }
            }
            SOURCE_SPEC => ManifestSource::Spec { text },
            other => return Err(malformed(format!("unknown source tag {other}"))),
        };
        if at != payload.len() {
            return Err(malformed(format!(
                "{} trailing bytes after the manifest",
                payload.len() - at
            )));
        }
        Ok(Self { backend, source })
    }

    /// The admission profile this manifest describes, **without**
    /// simulating any events.
    ///
    /// # Errors
    ///
    /// [`WireError::Rejected`] with [`code::UNKNOWN_SCENARIO`] or
    /// [`code::BAD_SPEC`] — semantic refusals that leave the connection
    /// usable.
    pub fn profile(&self) -> Result<(CameraModel, EmvsConfig), WireError> {
        match &self.source {
            ManifestSource::Scenario { name, seed } => match find(name) {
                Some(scenario) => Ok(scenario.session_profile(*seed)),
                None => Err(WireError::Rejected {
                    code: code::UNKNOWN_SCENARIO,
                    reason: format!("unknown scenario {name:?}"),
                }),
            },
            ManifestSource::Spec { text } => match WorldSpec::parse(text) {
                Ok(spec) => Ok(spec.session_profile()),
                Err(e) => Err(WireError::Rejected {
                    code: code::BAD_SPEC,
                    reason: e.to_string(),
                }),
            },
        }
    }

    /// Builds the session this manifest admits, through the golden
    /// construction path.
    ///
    /// # Errors
    ///
    /// [`WireError::Rejected`] for semantic refusals (unknown scenario, bad
    /// spec, or a profile the session builder itself refuses).
    pub fn resolve(&self) -> Result<EventorSession, WireError> {
        let (camera, config) = self.profile()?;
        session_for_profile(camera, config, self.backend).map_err(|e| WireError::Rejected {
            code: code::BAD_SPEC,
            reason: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_scenarios::Scenario;

    #[test]
    fn manifests_round_trip() {
        let spec_text = WorldSpec::generate(42, 0).to_text();
        let manifests = [
            SessionManifest {
                backend: BackendKind::Software,
                source: ManifestSource::Scenario {
                    name: "shake_closeup".into(),
                    seed: 99,
                },
            },
            SessionManifest {
                backend: BackendKind::Sharded,
                source: ManifestSource::Spec { text: spec_text },
            },
        ];
        for m in &manifests {
            let decoded = SessionManifest::decode(&m.encode()).unwrap();
            assert_eq!(&decoded, m);
        }
    }

    #[test]
    fn serve_backend_encodes_as_software() {
        // The wire protocol has no "serve" backend: the server *is* the
        // serving tier, and both kinds build the same software session.
        let m = SessionManifest {
            backend: BackendKind::Serve,
            source: ManifestSource::Scenario {
                name: "orbit_dense".into(),
                seed: 1,
            },
        };
        let decoded = SessionManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded.backend, BackendKind::Software);
    }

    #[test]
    fn structural_and_semantic_errors_are_distinct() {
        assert!(matches!(
            SessionManifest::decode(&[]).unwrap_err(),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            SessionManifest::decode(&[9, SOURCE_SCENARIO, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
                .unwrap_err(),
            WireError::Malformed { .. }
        ));
        let unknown = SessionManifest {
            backend: BackendKind::Software,
            source: ManifestSource::Scenario {
                name: "no_such_world".into(),
                seed: 0,
            },
        };
        assert!(matches!(
            unknown.profile().unwrap_err(),
            WireError::Rejected {
                code: code::UNKNOWN_SCENARIO,
                ..
            }
        ));
        let bad_spec = SessionManifest {
            backend: BackendKind::Software,
            source: ManifestSource::Spec {
                text: "not a fuzzworld".into(),
            },
        };
        assert!(matches!(
            bad_spec.profile().unwrap_err(),
            WireError::Rejected {
                code: code::BAD_SPEC,
                ..
            }
        ));
    }

    #[test]
    fn corpus_manifest_resolves_to_the_profile_camera() {
        let scenario = find("dolly_corridor").unwrap();
        let m = SessionManifest {
            backend: BackendKind::Software,
            source: ManifestSource::Scenario {
                name: "dolly_corridor".into(),
                seed: scenario.default_seed(),
            },
        };
        assert!(m.resolve().is_ok());
        let (camera, _) = m.profile().unwrap();
        assert_eq!(camera, scenario.session_profile(scenario.default_seed()).0);
    }
}
