//! Structure-aware corruption suite for the `eventor-wire/1` codec and
//! server: every way a frame can rot on the wire maps to one **typed**
//! [`WireError`] variant, corruption is *never* a panic, and a live server
//! that receives garbage sends a best-effort typed `Error` frame, closes
//! that connection cleanly, and keeps serving everyone else.
//!
//! Byte offsets used below follow the frame layout pinned in
//! `docs/WIRE.md`: `magic[0..4] | version[4..8] | kind[8..10] |
//! reserved[10..12] | session[12..20] | payload_len[20..24] | payload |
//! checksum (trailing 8)`.

use eventor_events::{fnv1a_64, Event, Polarity};
use eventor_geom::Pose;
use eventor_net::{
    code, decode_frame, encode_frame, read_frame, write_frame, DepthMapFrame, IdleWait,
    ManifestSource, NetConfig, SessionManifest, WireClient, WireError, WireFrame, WireSessionEvent,
    CHECKSUM_LEN, DEFAULT_MAX_PAYLOAD, HEADER_LEN, WIRE_MAGIC,
};
use proptest::prelude::*;
use std::time::Duration;

/// Recomputes the trailing checksum after a deliberate payload/header edit,
/// so the corruption under test is the *only* violation in the frame.
fn reseal(bytes: &mut [u8]) {
    let body_len = bytes.len() - CHECKSUM_LEN;
    let sum = fnv1a_64(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
}

/// A representative frame of every traffic class (fixed, variable-length,
/// nested, string-bearing) to corrupt.
fn sample_frames() -> Vec<(u64, WireFrame)> {
    vec![
        (0, WireFrame::Hello),
        (
            7,
            WireFrame::Admit {
                manifest: SessionManifest {
                    backend: eventor_scenarios::BackendKind::Sharded,
                    source: ManifestSource::Scenario {
                        name: "orbit_burst".into(),
                        seed: 0xD1CE,
                    },
                },
            },
        ),
        (
            7,
            WireFrame::Poses {
                samples: vec![(0.25, Pose::identity())],
            },
        ),
        (
            7,
            WireFrame::Events {
                events: vec![
                    Event::new(0.5, 3, 4, Polarity::Positive),
                    Event::new(0.625, 5, 6, Polarity::Negative),
                ],
            },
        ),
        (
            7,
            WireFrame::Lifecycle {
                events: vec![
                    WireSessionEvent::DepthMapReady {
                        index: 0,
                        valid_pixels: 99,
                    },
                    WireSessionEvent::MapFused {
                        index: 1,
                        points: 12,
                        new_voxels: 5,
                    },
                ],
            },
        ),
        (
            9,
            WireFrame::DepthMap(DepthMapFrame {
                index: 2,
                width: 2,
                height: 1,
                votes_cast: 44,
                depths: vec![1.5f64.to_bits(), f64::NAN.to_bits()],
            }),
        ),
        (
            0,
            WireFrame::Rejected {
                code: code::UNKNOWN_SCENARIO,
                reason: "no such scenario".into(),
            },
        ),
        (
            0,
            WireFrame::MetricsReply {
                json: "{\"format\": \"eventor-metrics/1\"}".into(),
            },
        ),
        // Wire v1.1 additions: keepalive pair and the overload refusal.
        (
            0,
            WireFrame::Ping {
                nonce: 0x0123_4567_89ab_cdef,
            },
        ),
        (
            0,
            WireFrame::Pong {
                nonce: 0x0123_4567_89ab_cdef,
            },
        ),
        (
            3,
            WireFrame::Rejected {
                code: code::OVERLOADED,
                reason: "admission refused: 4 live sessions at the cap of 4".into(),
            },
        ),
    ]
}

fn events_frame_bytes() -> Vec<u8> {
    encode_frame(
        7,
        &WireFrame::Events {
            events: vec![Event::new(0.5, 3, 4, Polarity::Positive)],
        },
    )
}

#[test]
fn corrupt_magic_is_bad_magic() {
    let mut bytes = events_frame_bytes();
    bytes[0..4].copy_from_slice(b"EVIL");
    reseal(&mut bytes);
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
        Err(WireError::BadMagic { found: *b"EVIL" })
    );
}

#[test]
fn skewed_version_is_unsupported_version() {
    let mut bytes = events_frame_bytes();
    bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
    reseal(&mut bytes);
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
        Err(WireError::UnsupportedVersion { found: 2 })
    );
}

#[test]
fn nonzero_reserved_bytes_are_rejected() {
    let mut bytes = events_frame_bytes();
    bytes[10] = 0x80;
    reseal(&mut bytes);
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
        Err(WireError::NonzeroReserved { found: 0x80 })
    );
}

#[test]
fn unknown_kind_survives_the_checksum_and_is_typed() {
    let mut bytes = events_frame_bytes();
    bytes[8..10].copy_from_slice(&0x7fffu16.to_le_bytes());
    reseal(&mut bytes);
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
        Err(WireError::UnknownKind { found: 0x7fff })
    );
}

#[test]
fn flipped_length_prefix_is_truncation_both_ways() {
    // Length inflated by one: the buffer no longer holds a whole frame.
    let mut bytes = events_frame_bytes();
    let declared = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    bytes[20..24].copy_from_slice(&(declared + 1).to_le_bytes());
    reseal(&mut bytes);
    let expected = HEADER_LEN + declared as usize + 1 + CHECKSUM_LEN;
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
        Err(WireError::Truncated {
            what: "frame payload",
            expected,
            found: bytes.len(),
        })
    );

    // Length deflated by one: trailing bytes make the frame over-long.
    let mut bytes = events_frame_bytes();
    bytes[20..24].copy_from_slice(&(declared - 1).to_le_bytes());
    reseal(&mut bytes);
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
        Err(WireError::Truncated {
            what: "frame payload",
            expected: bytes.len() - 1,
            found: bytes.len(),
        })
    );
}

#[test]
fn truncation_mid_section_names_the_section() {
    let bytes = events_frame_bytes();
    // Cut inside the header.
    match decode_frame(&bytes[..10], DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Truncated { what: "frame", .. }) => {}
        other => panic!("header cut: {other:?}"),
    }
    // Cut inside the trailing checksum (header survives intact).
    match decode_frame(&bytes[..bytes.len() - 4], DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Truncated {
            what: "frame payload",
            ..
        }) => {}
        other => panic!("payload cut: {other:?}"),
    }
}

#[test]
fn corrupted_checksum_reports_declared_and_actual() {
    let mut bytes = events_frame_bytes();
    let n = bytes.len();
    bytes[n - 1] ^= 0x01;
    let declared = u64::from_le_bytes(bytes[n - CHECKSUM_LEN..].try_into().unwrap());
    let actual = fnv1a_64(&bytes[..n - CHECKSUM_LEN]);
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
        Err(WireError::ChecksumMismatch { declared, actual })
    );
}

#[test]
fn oversized_declared_payload_respects_the_negotiated_cap() {
    let bytes = events_frame_bytes();
    let declared = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    assert_eq!(
        decode_frame(&bytes, declared - 1),
        Err(WireError::Oversized {
            declared,
            max: declared - 1,
        })
    );
}

#[test]
fn bad_polarity_byte_is_malformed() {
    // Events payload: count u64, then 13-byte records (t f64, x u16, y u16,
    // polarity u8) — the first polarity byte sits at payload offset 20.
    let mut bytes = events_frame_bytes();
    bytes[HEADER_LEN + 20] = 7;
    reseal(&mut bytes);
    match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Malformed { reason }) => {
            assert!(reason.contains("polarity"), "reason: {reason}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn non_finite_event_timestamp_is_malformed() {
    let mut bytes = events_frame_bytes();
    bytes[HEADER_LEN + 8..HEADER_LEN + 16].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    reseal(&mut bytes);
    match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Malformed { reason }) => {
            assert!(reason.contains("non-finite"), "reason: {reason}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn bad_lifecycle_tag_and_nonzero_pad_are_malformed() {
    let frame = WireFrame::Lifecycle {
        events: vec![WireSessionEvent::DepthMapReady {
            index: 3,
            valid_pixels: 10,
        }],
    };
    // Lifecycle payload: count u64, then 25-byte records (tag u8 + 3×u64);
    // the first tag sits at payload offset 8.
    let mut bytes = encode_frame(9, &frame);
    bytes[HEADER_LEN + 8] = 9;
    reseal(&mut bytes);
    match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Malformed { reason }) => {
            assert!(reason.contains("tag"), "reason: {reason}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }

    // `DepthMapReady` (tag 2) carries only two meaningful words; the third
    // is a zero-checked pad.
    let mut bytes = encode_frame(9, &frame);
    let pad = HEADER_LEN + 8 + 1 + 16; // count, tag, index, valid_pixels
    bytes[pad] = 1;
    reseal(&mut bytes);
    match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Malformed { reason }) => {
            assert!(reason.contains("pad"), "reason: {reason}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn absurd_count_prefix_is_malformed_not_an_allocation() {
    let mut bytes = events_frame_bytes();
    bytes[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&(1u64 << 56).to_le_bytes());
    reseal(&mut bytes);
    match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Malformed { reason }) => {
            assert!(reason.contains("Events"), "reason: {reason}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

/// Exhaustive single-byte-flip sweep: because the trailing checksum covers
/// every preceding byte and all header checks precede the checksum check,
/// **any** one-byte change to a valid frame must decode to a typed error —
/// never `Ok`, never a panic.
#[test]
fn every_single_byte_flip_is_a_typed_error() {
    for (session, frame) in sample_frames() {
        let good = encode_frame(session, &frame);
        assert!(decode_frame(&good, DEFAULT_MAX_PAYLOAD).is_ok());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xA5;
            assert!(
                decode_frame(&bad, DEFAULT_MAX_PAYLOAD).is_err(),
                "{}: flip at byte {i} of {} decoded as Ok",
                frame.kind_name(),
                good.len()
            );
        }
    }
}

/// Keepalive frames carry exactly one u64 nonce: trailing bytes after it
/// are a `Malformed` violation, not silently ignored slack.
#[test]
fn trailing_bytes_after_a_keepalive_nonce_are_malformed() {
    for frame in [WireFrame::Ping { nonce: 42 }, WireFrame::Pong { nonce: 42 }] {
        let good = encode_frame(0, &frame);
        let mut bytes = good.clone();
        // Splice one extra payload byte in and fix the declared length.
        bytes.insert(good.len() - CHECKSUM_LEN, 0);
        let declared = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        bytes[20..24].copy_from_slice(&(declared + 1).to_le_bytes());
        reseal(&mut bytes);
        match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            Err(WireError::Malformed { reason }) => {
                assert!(reason.contains("keepalive"), "reason: {reason}");
            }
            other => panic!("{}: expected Malformed, got {other:?}", frame.kind_name()),
        }
    }
}

/// A keepalive nonce truncated mid-word names what was cut.
#[test]
fn truncated_keepalive_nonce_is_typed() {
    let mut bytes = encode_frame(0, &WireFrame::Ping { nonce: 42 });
    // Shrink the payload to 4 bytes of nonce and fix the declared length.
    let cut = HEADER_LEN + 4;
    bytes.truncate(cut);
    bytes[20..24].copy_from_slice(&4u32.to_le_bytes());
    bytes.extend_from_slice(&[0u8; CHECKSUM_LEN]);
    reseal(&mut bytes);
    match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Truncated { what, .. }) => {
            assert!(what.contains("nonce"), "what: {what}");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

/// The overload refusal code is part of the deployed protocol surface —
/// pinned, like the magic.
#[test]
fn overloaded_code_is_pinned() {
    assert_eq!(code::OVERLOADED, 11);
}

proptest! {
    /// Random single-byte XOR masks over random frame/offset choices: the
    /// flip property holds for every nonzero mask, not just `0xA5`.
    #[test]
    fn random_byte_flips_never_decode(idx in 0usize..11, offset in 0usize..4096, mask in 1u64..256) {
        let frames = sample_frames();
        let (session, frame) = &frames[idx % frames.len()];
        let mut bytes = encode_frame(*session, frame);
        let i = offset % bytes.len();
        bytes[i] ^= mask as u8;
        prop_assert!(decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).is_err());
    }

    /// Arbitrary garbage never panics the decoder (it may, vanishingly
    /// rarely, decode — in which case it must re-encode to the same bytes).
    #[test]
    fn arbitrary_bytes_never_panic(raw in collection::vec(0u64..256, 0..256)) {
        let bytes: Vec<u8> = raw.iter().map(|b| *b as u8).collect();
        if let Ok((session, frame)) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            prop_assert_eq!(encode_frame(session, &frame), bytes);
        }
    }
}

#[test]
fn live_server_answers_garbage_with_a_typed_error_and_keeps_serving() {
    let server = eventor_net::spawn_loopback(NetConfig::new()).expect("server spawns");

    // Connection A: a valid Hello, then garbage mid-stream.
    let mut rogue = std::net::TcpStream::connect(server.addr()).expect("rogue connects");
    write_frame(&mut rogue, 0, &WireFrame::Hello).expect("hello");
    let (_, reply) = read_frame(
        &mut rogue,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    )
    .expect("hello reply");
    assert!(matches!(reply, WireFrame::HelloOk { .. }));
    // Exactly one header's worth of garbage, so the server consumes it all
    // before rejecting (leftover unread bytes would turn the close into an
    // RST on some kernels).
    use std::io::Write;
    rogue
        .write_all(b"this is not a wire frame")
        .expect("garbage");
    rogue.flush().expect("flush");
    // The server replies with a best-effort typed Error frame, then closes.
    let (_, reply) = read_frame(
        &mut rogue,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    )
    .expect("typed goodbye");
    match reply {
        WireFrame::Error { code: c, .. } => assert_eq!(c, code::PROTOCOL),
        other => panic!("expected Error frame, got {other:?}"),
    }
    match read_frame(
        &mut rogue,
        DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(10),
        IdleWait::Timeout(Duration::from_secs(10)),
        &|| false,
    ) {
        Err(WireError::ConnectionClosed) | Err(WireError::Io { .. }) => {}
        other => panic!("expected a close after the Error frame, got {other:?}"),
    }

    // Connection B, after the corruption: still served, bit-identically.
    let world = {
        use eventor_scenarios::Scenario;
        let s = eventor_scenarios::find("shake_closeup").expect("corpus scenario");
        s.build(s.default_seed()).expect("world builds")
    };
    let mut client = WireClient::connect(server.addr()).expect("client connects");
    let id = client
        .admit(&SessionManifest {
            backend: eventor_scenarios::BackendKind::Software,
            source: ManifestSource::Scenario {
                name: world.name.clone(),
                seed: world.seed,
            },
        })
        .expect("admission");
    let report = client
        .drive(
            id,
            &world.trajectory,
            world.events.as_slice(),
            eventor_serve::LoadShape::Steady { chunk: 2048 },
        )
        .expect("drive");
    assert_eq!(
        report.digest,
        eventor_scenarios::golden_digest("shake_closeup").expect("golden"),
        "a healthy connection diverged after another connection sent garbage"
    );
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn wire_magic_is_pinned() {
    // The magic is a protocol constant, not an implementation detail: a
    // rename breaks every deployed peer.
    assert_eq!(WIRE_MAGIC, *b"EWIR");
}
