//! In-tree shim for the `rand` crate used by hermetic builds of this
//! workspace (no registry access). Implements the subset of the `rand` 0.8
//! API the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng`] with `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast and fully reproducible for a fixed seed, but the sequences are *not*
//! numerically identical to upstream `rand`'s `StdRng` (ChaCha12). Every
//! consumer in this repository only relies on seed-reproducibility.

#![deny(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "natural" domain by
/// [`Rng::gen`] (`[0, 1)` for floats, the full domain for integers/bool).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is < 2^-32 for all spans used in this repo.
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its natural domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset: [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_reproduces() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u16..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }
}
