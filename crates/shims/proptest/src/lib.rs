//! In-tree shim for the `proptest` crate used by hermetic builds of this
//! workspace (no registry access).
//!
//! Supported surface — exactly what the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(...)]`), generating one `#[test]` per contained fn,
//! * `name in strategy` bindings where a strategy is a numeric [`Range`],
//!   a tuple of strategies, or [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`ProptestConfig::with_cases`],
//! * the `PROPTEST_CASES_MULTIPLIER` environment variable, which scales
//!   every test's case count proportionally (see [`scaled_cases`]; CI's
//!   nightly job runs the suite at 10×).
//!
//! Cases are generated deterministically from the test's module path, name
//! and case index; there is no shrinking. A rejected case (`prop_assume!`) is
//! retried with the next index and does not count towards the case budget.
//!
//! ## Corpus-seed persistence
//!
//! When a case fails, its `(test identity, case index)` pair is appended to a
//! persistence file (default `proptest-regressions.txt` in the working
//! directory, overridable via the `PROPTEST_PERSISTENCE` environment
//! variable; set it to `off` to disable). On the next run every persisted
//! case for a test is **replayed before any fresh cases**, so a failure found
//! once — locally or by the nightly deep run — keeps reproducing until the
//! bug is fixed and the line is deleted. Because case generation is
//! deterministic, the index alone reconstructs the exact failing inputs; no
//! serialized values are needed. See [`persistence`].

#![deny(missing_docs)]

use std::ops::Range;

/// Per-test configuration (subset of the upstream type).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated before the test
    /// aborts (mirrors upstream's `max_global_rejects` in spirit).
    pub max_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// The effective case count for a test configured with `base` cases:
/// `base × PROPTEST_CASES_MULTIPLIER` when that environment variable is a
/// positive integer, `base` otherwise.
///
/// Upstream proptest's `PROPTEST_CASES` replaces the *default* case count;
/// this workspace sets an explicit count on almost every test, so an
/// absolute override would distort the suite's carefully budgeted expensive
/// tests. The multiplier scales every test proportionally instead — CI's
/// scheduled nightly job runs the whole suite at 10× depth with
/// `PROPTEST_CASES_MULTIPLIER=10`.
pub fn scaled_cases(base: u32) -> u32 {
    static MULTIPLIER: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    let m = *MULTIPLIER.get_or_init(|| {
        std::env::var("PROPTEST_CASES_MULTIPLIER")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&m| m > 0)
            .unwrap_or(1)
    });
    base.saturating_mul(m)
}

/// Corpus-seed persistence: failing case indices are written to a text file
/// and replayed ahead of fresh cases on subsequent runs.
///
/// The file format is one `<test identity> <case index>` pair per line
/// (identity is `module_path!()::test_name`); blank lines and lines starting
/// with `#` are ignored. The file location comes from the
/// `PROPTEST_PERSISTENCE` environment variable — a path, or `off`/`0` to
/// disable persistence — and defaults to [`DEFAULT_FILE`] in the working
/// directory (for `cargo test` that is the crate root, so each crate keeps
/// its own corpus). The environment is consulted on every call rather than
/// cached: the fuzz CLI spawns per-run files and tests point it at scratch
/// paths.
///
/// [`DEFAULT_FILE`]: persistence::DEFAULT_FILE
pub mod persistence {
    use std::io::Write;
    use std::path::PathBuf;

    /// Default persistence file name, relative to the working directory.
    pub const DEFAULT_FILE: &str = "proptest-regressions.txt";

    /// Environment variable naming the persistence file (`off`/`0` disables).
    pub const ENV_VAR: &str = "PROPTEST_PERSISTENCE";

    fn file() -> Option<PathBuf> {
        match std::env::var(ENV_VAR) {
            Ok(v) if v == "off" || v == "0" => None,
            Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
            _ => Some(PathBuf::from(DEFAULT_FILE)),
        }
    }

    /// The recorded failing case indices for `ident`, sorted and deduplicated.
    ///
    /// Returns an empty vector when persistence is disabled, the file does
    /// not exist, or no line matches. Unparseable lines are skipped (a stale
    /// or hand-edited corpus must never break the suite outright).
    pub fn persisted_cases(ident: &str) -> Vec<u64> {
        let Some(path) = file() else {
            return Vec::new();
        };
        let Ok(content) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut cases: Vec<u64> = content
            .lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    return None;
                }
                let (id, case) = line.rsplit_once(' ')?;
                if id.trim() != ident {
                    return None;
                }
                case.parse().ok()
            })
            .collect();
        cases.sort_unstable();
        cases.dedup();
        cases
    }

    /// Records `case` as a failing corpus seed for `ident`.
    ///
    /// Appends one line, deduplicating against already-persisted cases. All
    /// I/O errors are swallowed: persistence is best-effort bookkeeping and
    /// must never mask the assertion failure that triggered it.
    pub fn record_failure(ident: &str, case: u64) {
        let Some(path) = file() else { return };
        if persisted_cases(ident).contains(&case) {
            return;
        }
        let header_needed = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            return;
        };
        if header_needed {
            let _ = writeln!(
                f,
                "# proptest corpus seeds: one `<test identity> <case index>` per line.\n\
                 # Persisted failures replay before fresh cases; delete a line once fixed."
            );
        }
        let _ = writeln!(f, "{ident} {case}");
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "test case failed: {m}"),
            Self::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case RNG (SplitMix64 keyed by test identity and case
/// index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for `ident` (usually `module_path!() :: test name`)
    /// and the given case index.
    pub fn deterministic(ident: &str, case: u64) -> Self {
        // FNV-1a over the identity, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in ident.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values (vastly simplified from upstream: a strategy
/// produces a value directly; there is no value tree and no shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// A strategy producing a constant value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (subset: [`collection::vec`]).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    /// Upstream re-exports the crate itself as `prop` inside the prelude so
    /// paths like `prop::collection::vec` resolve.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` ({:?} != {:?}) at {}:{}",
                        stringify!($left), stringify!($right), l, r, file!(), line!()
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` ({:?} != {:?}) at {}:{}: {}",
                        stringify!($left), stringify!($right), l, r, file!(), line!(),
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Fails the current test case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}` (both {:?}) at {}:{}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        file!(),
                        line!()
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let ident = concat!(module_path!(), "::", stringify!($name));
            let run_case = |case: u64| -> $crate::TestCaseResult {
                let mut __proptest_rng = $crate::TestRng::deterministic(ident, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                $body
                ::std::result::Result::Ok(())
            };
            // Replay the persisted failure corpus before any fresh cases: a
            // failure found once keeps reproducing until its line is removed.
            for case in $crate::persistence::persisted_cases(ident) {
                match run_case(case) {
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{} (persisted corpus case #{} of {})",
                            msg, case, stringify!($name)
                        );
                    }
                    // Ok: the recorded bug is fixed (stale line). Reject: the
                    // strategy changed under the corpus. Neither blocks fresh
                    // exploration.
                    _ => {}
                }
            }
            let target_cases = $crate::scaled_cases(config.cases);
            let mut executed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while executed < target_cases {
                let result = run_case(case);
                case += 1;
                match result {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_rejects {
                            panic!(
                                "{}: too many rejected cases ({} rejects for {} accepted)",
                                stringify!($name), rejected, executed
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        $crate::persistence::record_failure(ident, case - 1);
                        panic!(
                            "{} (case #{} of {}; seed persisted for replay)",
                            msg, case - 1, stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in prop::collection::vec((0u16..240, 0u16..180), 1..50),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (x, y) in &v {
                prop_assert!(*x < 240 && *y < 180, "({}, {}) out of sensor", x, y);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u8..10) {
            prop_assert_ne!(x, 200);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::deterministic("ident", 5);
        let mut b = TestRng::deterministic("ident", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("ident", 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    mod persistence_tests {
        use crate::persistence::{self, ENV_VAR};
        use std::path::PathBuf;
        use std::sync::Mutex;

        /// Serializes env-var mutation across the persistence tests; other
        /// tests in this binary only ever read the variable.
        static ENV_LOCK: Mutex<()> = Mutex::new(());

        fn scratch(name: &str) -> PathBuf {
            std::env::temp_dir().join(format!("proptest-shim-{}-{}.txt", std::process::id(), name))
        }

        fn with_corpus_file<R>(name: &str, f: impl FnOnce(&PathBuf) -> R) -> R {
            let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let path = scratch(name);
            let _ = std::fs::remove_file(&path);
            std::env::set_var(ENV_VAR, &path);
            let out = f(&path);
            std::env::remove_var(ENV_VAR);
            let _ = std::fs::remove_file(&path);
            out
        }

        #[test]
        fn record_then_replay_round_trips_and_dedups() {
            with_corpus_file("roundtrip", |_| {
                assert!(persistence::persisted_cases("mod::test_a").is_empty());
                persistence::record_failure("mod::test_a", 17);
                persistence::record_failure("mod::test_a", 3);
                persistence::record_failure("mod::test_a", 17); // duplicate
                persistence::record_failure("mod::test_b", 99);
                assert_eq!(persistence::persisted_cases("mod::test_a"), vec![3, 17]);
                assert_eq!(persistence::persisted_cases("mod::test_b"), vec![99]);
                assert!(persistence::persisted_cases("mod::test_c").is_empty());
            });
        }

        #[test]
        fn comments_blanks_and_garbage_lines_are_ignored() {
            with_corpus_file("garbage", |path| {
                std::fs::write(
                    path,
                    "# header\n\nmod::t 5\nmod::t not-a-number\nno-space-line\nmod::t 5\nmod::t 2\n",
                )
                .unwrap();
                assert_eq!(persistence::persisted_cases("mod::t"), vec![2, 5]);
            });
        }

        #[test]
        fn off_disables_persistence_entirely() {
            let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            std::env::set_var(ENV_VAR, "off");
            persistence::record_failure("mod::disabled", 1);
            assert!(persistence::persisted_cases("mod::disabled").is_empty());
            std::env::remove_var(ENV_VAR);
        }
    }
}
