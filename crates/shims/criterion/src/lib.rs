//! In-tree shim for the `criterion` crate used by hermetic builds of this
//! workspace (no registry access).
//!
//! Implements the subset of the Criterion API the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`, `iter` / `iter_batched`, [`Throughput`] — with a simple
//! wall-clock sampler: a short warm-up, then `sample_size` timed samples of an
//! adaptively chosen iteration count. Reports mean / best / worst time per
//! iteration and derived throughput.
//!
//! Every benchmark additionally appends a machine-readable JSON document to
//! `target/criterion-shim/<group>/<benchmark>.json` (schema documented in
//! `docs/BENCHMARKS.md`) so figures can be regenerated without scraping
//! stdout.

#![deny(missing_docs)]

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Prevents the optimizer from eliding a value (re-export of
/// [`std::hint::black_box`], which is what upstream criterion uses too).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How much work one benchmark iteration represents, for derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (events, votes, ...) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times each batch
/// individually, so the variants only influence the *number* of batches used
/// per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many batches per sample.
    SmallInput,
    /// Large inputs: one batch per sample.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One measured sample set for a benchmark.
#[derive(Debug, Clone, Copy, Default)]
struct Measurement {
    samples: u64,
    iters_per_sample: u64,
    mean_ns: f64,
    best_ns: f64,
    worst_ns: f64,
}

/// The per-benchmark timing driver handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement: Option<Measurement>,
}

const TARGET_SAMPLE_NS: f64 = 20_000_000.0; // aim for ~20 ms per sample
const MAX_CALIBRATION_ITERS: u64 = 1 << 20;

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            measurement: None,
        }
    }

    /// Benchmarks `routine` by running it repeatedly and timing batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit the per-sample budget?
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            if elapsed >= TARGET_SAMPLE_NS / 4.0 || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            iters *= 2;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(&samples, iters);
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        self.record(&samples, 1);
    }

    fn record(&mut self, samples: &[f64], iters: u64) {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = samples.iter().copied().fold(0.0, f64::max);
        self.measurement = Some(Measurement {
            samples: samples.len() as u64,
            iters_per_sample: iters,
            mean_ns: mean,
            best_ns: best,
            worst_ns: worst,
        });
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    context: Vec<(String, String)>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration of subsequent benchmarks does.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Attaches a key/value annotation to every subsequent benchmark in the
    /// group. Annotations are emitted as a `"context"` object in the
    /// `eventor-bench/1` JSON document (an additive schema extension; the
    /// object is omitted when no annotations are set) so run conditions that
    /// affect the numbers — e.g. which SIMD dispatch tier actually executed —
    /// travel with the measurement. Not part of upstream criterion; benches
    /// relying on it are shim-only.
    pub fn context(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let key = key.into();
        self.context.retain(|(k, _)| *k != key);
        self.context.push((key, value.into()));
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let m = bencher
            .measurement
            .unwrap_or_else(|| panic!("benchmark {id} never called iter()/iter_batched()"));
        self.criterion
            .report(&self.name, &id, self.throughput, &self.context, m);
        self
    }

    /// Finishes the group (stdout separator only; reports are flushed as each
    /// benchmark completes).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver (subset of upstream `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    out_dir: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            out_dir: output_dir(),
        }
    }
}

/// Where this shim writes its per-benchmark JSON documents
/// (`<target>/criterion-shim`): `CARGO_TARGET_DIR` when set, else the first
/// `target` ancestor of the running executable. Exposed so benches that
/// post-process their own JSON (e.g. to compute a speedup ratio) resolve
/// the directory through the same logic that produced the files, instead
/// of re-implementing it.
pub fn output_dir() -> Option<PathBuf> {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .or_else(|| {
            std::env::current_exe().ok().and_then(|exe| {
                // target/release/deps/bench-... -> target
                exe.ancestors()
                    .find(|p| p.file_name() == Some("target".as_ref()))
                    .map(PathBuf::from)
            })
        })
        .map(|t| t.join("criterion-shim"))
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 10,
            context: Vec::new(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("ungrouped").bench_function(id, f);
        self
    }

    fn report(
        &self,
        group: &str,
        id: &str,
        throughput: Option<Throughput>,
        context: &[(String, String)],
        m: Measurement,
    ) {
        let mut line = format!(
            "{group}/{id}: mean {} (best {}, worst {}, {} samples x {} iters)",
            fmt_ns(m.mean_ns),
            fmt_ns(m.best_ns),
            fmt_ns(m.worst_ns),
            m.samples,
            m.iters_per_sample,
        );
        let per_sec = |n: u64| n as f64 / (m.mean_ns * 1e-9);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let _ = write!(line, "; {:.3} Melem/s", per_sec(n) / 1e6);
            }
            Some(Throughput::Bytes(n)) => {
                let _ = write!(line, "; {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0));
            }
            None => {}
        }
        for (k, v) in context {
            let _ = write!(line, "; {k}={v}");
        }
        println!("{line}");
        self.write_json(group, id, throughput, context, m);
    }

    fn write_json(
        &self,
        group: &str,
        id: &str,
        throughput: Option<Throughput>,
        context: &[(String, String)],
        m: Measurement,
    ) {
        let Some(dir) = self.out_dir.as_ref() else {
            return;
        };
        let dir = dir.join(sanitize(group));
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let (tp_kind, tp_amount) = match throughput {
            Some(Throughput::Elements(n)) => ("elements", n),
            Some(Throughput::Bytes(n)) => ("bytes", n),
            None => ("none", 0),
        };
        // Hand-rolled JSON: group/benchmark ids and context annotations in
        // this workspace are simple identifiers (context values may also
        // carry decimal numbers), so sanitize()/sanitize_value() guarantee
        // no escaping is needed. The "context" object is additive
        // (eventor-bench/1 readers must ignore unknown keys) and omitted
        // when empty.
        let context_json = if context.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = context
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", sanitize(k), sanitize_value(v)))
                .collect();
            format!(",\n  \"context\": {{ {} }}", pairs.join(", "))
        };
        let json = format!(
            concat!(
                "{{\n",
                "  \"schema\": \"eventor-bench/1\",\n",
                "  \"group\": \"{}\",\n",
                "  \"benchmark\": \"{}\",\n",
                "  \"samples\": {},\n",
                "  \"iters_per_sample\": {},\n",
                "  \"mean_ns\": {:.3},\n",
                "  \"best_ns\": {:.3},\n",
                "  \"worst_ns\": {:.3},\n",
                "  \"throughput\": {{ \"kind\": \"{}\", \"amount_per_iter\": {} }}{}\n",
                "}}\n"
            ),
            sanitize(group),
            sanitize(id),
            m.samples,
            m.iters_per_sample,
            m.mean_ns,
            m.best_ns,
            m.worst_ns,
            tp_kind,
            tp_amount,
            context_json,
        );
        let _ = std::fs::write(dir.join(format!("{}.json", sanitize(id))), json);
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Like [`sanitize`] but also keeps `.`, so context values can carry
/// decimal numbers (e.g. a p99 in seconds) without mangling.
fn sanitize_value(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..100u64).sum::<u64>());
        let m = b.measurement.unwrap();
        assert!(m.mean_ns > 0.0);
        assert!(m.best_ns <= m.worst_ns);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut b = Bencher::new(3);
        b.iter_batched(
            || vec![1u8; 1024],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(b.measurement.unwrap().samples == 3);
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { out_dir: None };
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn sanitize_keeps_identifiers() {
        assert_eq!(sanitize("voting/bilinear_f32"), "voting_bilinear_f32");
    }

    #[test]
    fn context_annotations_land_in_the_json_document() {
        let dir =
            std::env::temp_dir().join(format!("criterion-shim-ctx-test-{}", std::process::id()));
        let mut c = Criterion {
            out_dir: Some(dir.clone()),
        };
        let mut group = c.benchmark_group("ctx_selftest");
        group.sample_size(2);
        group.context("dispatch_tier", "swar");
        group.context("dispatch_tier", "avx2"); // later set wins
        group.context("p99_seconds", "1.250000");
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.finish();
        let json = std::fs::read_to_string(dir.join("ctx_selftest").join("sum.json")).unwrap();
        assert!(json.contains(
            "\"context\": { \"dispatch_tier\": \"avx2\", \"p99_seconds\": \"1.250000\" }"
        ));
        assert!(!json.contains("swar"));
        assert!(json.contains("\"schema\": \"eventor-bench/1\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_omits_context_when_unset() {
        let dir =
            std::env::temp_dir().join(format!("criterion-shim-noctx-test-{}", std::process::id()));
        let mut c = Criterion {
            out_dir: Some(dir.clone()),
        };
        let mut group = c.benchmark_group("noctx_selftest");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.finish();
        let json = std::fs::read_to_string(dir.join("noctx_selftest").join("sum.json")).unwrap();
        assert!(!json.contains("context"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
