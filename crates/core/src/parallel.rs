//! The **parallel sharded voting engine** for the reformulated (quantized)
//! Eventor datapath.
//!
//! This module is the `eventor-core` half of the engine whose shard-running
//! primitives live in [`eventor_emvs`] (see [`run_sharded`],
//! [`ParallelConfig`]); key-frame segmentation is performed live by the
//! session driver's key-frame selector:
//!
//! * [`parallel_map`] — chunked, order-preserving parallel map used for the
//!   streaming distortion-correction and Q9.7 transport-encoding stages
//!   (per-event pure functions, so the parallel result is bit-identical),
//! * [`QuantizedFrameParams`] — the per-frame `H_{Z0}` / `φ` parameter block
//!   with the fixed-point decode hoisted out of the per-event hot loop,
//! * the fused per-packet vote kernels that project, transfer and vote in a
//!   single allocation-free pass over a [`VotePacket`](eventor_events::VotePacket),
//!   writing into a per-shard [`DsiVolume`] tile.
//!
//! ## Determinism and bit-identity
//!
//! Work is assigned round-robin: packet `p` goes to shard `p mod shards`,
//! independent of thread timing. Each shard votes into a private tile;
//! tiles are merged with [`DsiVolume::tree_reduce`], whose shape depends only
//! on the shard count. For the accelerator datapath (`u16` scores, nearest
//! voting, unit votes) the merged volume is **bit-identical to the
//! sequential golden path for every shard count** — saturating unit-count
//! accumulation is order-independent — which the `parallel_equivalence`
//! integration tests assert on the `ThreePlanes` sequence. The float
//! ablation datapaths are deterministic for a fixed shard count; nearest
//! voting is still bit-identical (whole `f32` increments are exact), while
//! bilinear voting can differ from the sequential float summation order by
//! ULPs.
//!
//! The quantized hot-loop kernels delegate their arithmetic to the bit-true
//! integer kernel ([`eventor_fixed::kernel`]) — the same functions the
//! sequential golden model ([`QuantizedHomography`] /
//! [`QuantizedCoefficients`]) and the `eventor-hwsim` device model call —
//! so the fused fast path cannot drift from the reference implementation.
//! [`QuantizedFrameParams`] hoists the **raw fixed-point words** out of the
//! per-event loop (not an `f64` decode: there is none anymore), so the hot
//! loop runs on integers end to end.

use crate::quantized::{QuantizedCoefficients, QuantizedHomography};
use eventor_dsi::{DsiVolume, VoteArena, VoxelScore};
use eventor_emvs::{FrameGeometry, VotingMode};
use eventor_fixed::kernel::{self, batch, PhiWords};
use eventor_fixed::PackedCoord;
use eventor_geom::Vec2;

pub use eventor_emvs::{run_sharded, shard_packets, ParallelConfig};

/// Per-shard working state: the private DSI tile plus the canonical-point
/// scratch buffer the fused kernels reuse across packets and key frames (no
/// per-packet allocation).
#[derive(Debug)]
pub(crate) struct ShardState<S: VoxelScore> {
    /// The shard's private DSI tile.
    pub tile: DsiVolume<S>,
    /// Canonical-plane points of the packet being processed, in the Q9.7
    /// transport format (raw words — the kernels never decode them).
    pub canon: Vec<PackedCoord>,
    /// Slab-index scratch of the cache-blocked batched vote path, reused
    /// across every packet segment the shard processes.
    pub arena: VoteArena,
}

impl<S: VoxelScore> ShardState<S> {
    pub(crate) fn new(tile: DsiVolume<S>, packet_events: usize) -> Self {
        Self {
            tile,
            canon: Vec::with_capacity(packet_events),
            arena: VoteArena::new(),
        }
    }
}

/// Order-preserving parallel map: splits `input` into up to `shards`
/// contiguous chunks (capped at the available hardware threads), maps each
/// chunk on its own scoped worker thread, and concatenates the results in
/// chunk order.
///
/// Because `f` is applied per element and the output order is the input
/// order, the result is identical to `input.iter().map(f).collect()` for any
/// shard count — this is what makes the parallel distortion-correction and
/// transport-encoding stages bit-exact.
pub fn parallel_map<T, U, F>(input: &[T], shards: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shards = shards.min(available).max(1);
    if shards == 1 || input.len() < 2 * shards {
        return input.iter().map(f).collect();
    }
    let chunk = input.len().div_ceil(shards);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = input
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(input.len());
        for handle in handles {
            out.extend(handle.join().expect("parallel_map worker panicked"));
        }
        out
    })
}

/// Per-frame quantized datapath parameters hoisted out of the per-event
/// loop as **raw fixed-point words**: the nine Q11.21 `Buf_H` words of
/// `H_{Z0}` and the per-plane Q11.21 `Buf_P` word triples of `φ` — exactly
/// the payloads the DMA would ship to the device, consumed directly by the
/// integer kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedFrameParams {
    homography: [i32; 9],
    coefficients: Vec<PhiWords>,
}

impl QuantizedFrameParams {
    /// Quantizes and hoists one frame's geometry.
    pub fn from_geometry(geometry: &FrameGeometry) -> Self {
        let qh = QuantizedHomography::from_homography(&geometry.homography);
        let qphi = QuantizedCoefficients::from_coefficients(&geometry.coefficients);
        Self {
            homography: qh.raw_words(),
            coefficients: qphi.words().to_vec(),
        }
    }

    /// Number of depth planes covered.
    pub fn num_planes(&self) -> usize {
        self.coefficients.len()
    }

    /// The per-plane raw coefficient words.
    #[inline]
    pub fn coefficients(&self) -> &[PhiWords] {
        &self.coefficients
    }

    /// The nine raw Q11.21 `Buf_H` words of `H_{Z0}`, row-major — the
    /// batched kernel entry points consume them directly.
    #[inline]
    pub fn homography_words(&self) -> &[i32; 9] {
        &self.homography
    }

    /// The canonical projection `𝒫{Z0}` (delegates to the bit-true
    /// [`kernel::project_z0`], the same function the golden model and the
    /// device model call).
    #[inline]
    pub fn project(&self, coord: PackedCoord) -> Option<PackedCoord> {
        kernel::project_z0(&self.homography, coord)
    }
}

/// Fused `PE_Z0` → `PE_Zi` → Nearest Voxel Finder → vote kernel for one
/// packet of the quantized nearest-voting (accelerator) datapath.
///
/// Equivalent, vote for vote, to the sequential
/// `EventorPipeline::process_frame_quantized` path — both run the same
/// integer kernel on the same raw words; the only difference is scheduling
/// (one packet instead of one frame).
/// The kernel runs plane-major through the **batched, vectorized** faces of
/// the integer kernel: all canonical points of the packet are computed once
/// into the shard's scratch buffer ([`batch::project_z0_batch`], lanes per
/// the session's dispatch tier), then [`DsiVolume::vote_batch`] transfers
/// and votes each depth plane's slab cache-blocked, reusing the shard's
/// index arena across packets (mirroring the `PE_Zi` array structure, and
/// keeping the write working-set at one plane instead of the whole volume).
/// Reordering votes from the sequential event-major schedule to plane-major
/// is exact for this datapath: saturating integer unit-vote accumulation is
/// order-independent, and every dispatch tier is proven byte-identical to
/// the scalar kernel. The in-sensor judgement runs against the tile
/// dimensions, which every constructor sets to the sensor dimensions.
#[inline]
pub(crate) fn vote_packet_quantized_nearest(
    state: &mut ShardState<u16>,
    params: &QuantizedFrameParams,
    events: &[PackedCoord],
) {
    batch::project_z0_batch(&params.homography, events, &mut state.canon);
    state
        .tile
        .vote_batch(&state.canon, &params.coefficients, &mut state.arena);
}

/// Fused kernel for one packet of the quantized **bilinear** ablation
/// (`EventorOptions::quantized_only`): quantized projection and transfer,
/// float sub-pixel voting.
/// Unlike the nearest kernel this one keeps the sequential event-major vote
/// order, so the single-shard batched engine stays bit-identical even though
/// bilinear `f32` accumulation is order-sensitive.
#[inline]
pub(crate) fn vote_packet_quantized_bilinear(
    state: &mut ShardState<f32>,
    params: &QuantizedFrameParams,
    events: &[PackedCoord],
) {
    for &coord in events {
        let Some(canonical) = params.project(coord) else {
            continue;
        };
        for (i, phi) in params.coefficients.iter().enumerate() {
            let (x, y) = kernel::transfer_subpixel(phi, canonical);
            state.tile.vote_bilinear(x, y, i, 1.0);
        }
    }
}

/// Fused kernel for one packet of the full-precision ablation datapaths
/// (`EventorOptions::{exact, nearest_only}`): float canonical projection and
/// plane transfer on the frame geometry, voting in the configured mode.
/// Keeps the sequential event-major vote order (see
/// [`vote_packet_quantized_bilinear`]).
#[inline]
pub(crate) fn vote_packet_float(
    state: &mut ShardState<f32>,
    geometry: &FrameGeometry,
    events: &[Vec2],
    voting: VotingMode,
) {
    let n_planes = geometry.num_planes();
    for &pixel in events {
        let Some(canonical) = geometry.canonical(pixel) else {
            continue;
        };
        for i in 0..n_planes {
            let p = geometry.transfer(canonical, i);
            match voting {
                VotingMode::Bilinear => state.tile.vote_bilinear(p.x, p.y, i, 1.0),
                VotingMode::Nearest => state.tile.vote_nearest(p.x, p.y, i, 1.0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_is_order_preserving_and_exact() {
        let input: Vec<u64> = (0..10_001).collect();
        let sequential: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for shards in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(&input, shards, |x| x * 3 + 1),
                sequential,
                "shards {shards}"
            );
        }
        // Tiny inputs fall back to the sequential path.
        assert_eq!(parallel_map(&input[..3], 8, |x| x + 1), vec![1, 2, 3]);
        assert_eq!(
            parallel_map::<u64, u64, _>(&[], 4, |x| *x),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn shard_packets_partition_all_packets() {
        use eventor_events::VotePacket;
        let packets: Vec<VotePacket> = (0..13)
            .map(|i| VotePacket {
                frame: i,
                range: i * 10..i * 10 + 10,
            })
            .collect();
        let shards = 4;
        let mut seen: Vec<usize> = Vec::new();
        for s in 0..shards {
            for p in shard_packets(&packets, s, shards) {
                seen.push(p.frame);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn hoisted_params_match_golden_model() {
        use eventor_dsi::DepthPlanes;
        use eventor_emvs::FrameGeometry;
        use eventor_geom::{CameraIntrinsics, Pose, Vec3};

        let intrinsics = CameraIntrinsics::davis240_default();
        let planes = DepthPlanes::uniform_inverse_depth(1.0, 5.0, 30).unwrap();
        let geometry = FrameGeometry::compute(
            &Pose::identity(),
            &Pose::from_translation(Vec3::new(0.06, -0.03, 0.01)),
            &intrinsics,
            &planes,
        )
        .unwrap();
        let params = QuantizedFrameParams::from_geometry(&geometry);
        let qh = QuantizedHomography::from_homography(&geometry.homography);
        let qphi = QuantizedCoefficients::from_coefficients(&geometry.coefficients);
        assert_eq!(params.num_planes(), qphi.len());
        // The hoisted block is the golden model's raw words, verbatim — the
        // hoist copies storage, it no longer re-derives arithmetic.
        assert_eq!(params.coefficients(), qphi.words());
        for &(x, y) in &[(10.0, 10.0), (120.5, 90.25), (230.0, 170.0)] {
            let coord = PackedCoord::from_f64(x, y);
            let via_params = params.project(coord);
            let via_golden = qh.project(coord);
            assert_eq!(via_params, via_golden);
            if let Some(c) = via_golden {
                for (i, phi) in params.coefficients().iter().enumerate() {
                    let golden = qphi.transfer_nearest(c, i, 240, 180);
                    assert_eq!(kernel::transfer_nearest(phi, c, 240, 180), golden);
                }
            }
        }
    }
}
