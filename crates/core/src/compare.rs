//! Accuracy comparison harness: runs the baseline and the reformulated
//! variants on a synthetic sequence and reports the AbsRel depth error for
//! each — the machinery behind Fig. 4a, Fig. 4b and Fig. 7a.

use crate::pipeline::{EventorOptions, EventorPipeline};
use eventor_dsi::DepthMetrics;
use eventor_emvs::{EmvsConfig, EmvsError, EmvsMapper, EmvsOutput, VotingMode};
use eventor_events::SyntheticSequence;

/// The pipeline variants compared in the paper's accuracy figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineVariant {
    /// Original EMVS: bilinear voting, full precision (the baseline).
    OriginalBilinear,
    /// Original EMVS with nearest voting (Fig. 4a "Nearest").
    OriginalNearest,
    /// Quantized datapath with bilinear voting (Fig. 4b "Quantized").
    QuantizedBilinear,
    /// Fully reformulated Eventor datapath: rescheduled, nearest voting and
    /// quantized (Fig. 7a "Nearest, Quantized, Rescheduled").
    Reformulated,
}

impl PipelineVariant {
    /// All variants in presentation order.
    pub const ALL: [PipelineVariant; 4] = [
        PipelineVariant::OriginalBilinear,
        PipelineVariant::OriginalNearest,
        PipelineVariant::QuantizedBilinear,
        PipelineVariant::Reformulated,
    ];

    /// Human-readable label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Self::OriginalBilinear => "Bilinear, Unquantized (Original)",
            Self::OriginalNearest => "Nearest Voting",
            Self::QuantizedBilinear => "Quantized",
            Self::Reformulated => "Nearest, Quantized, Rescheduled (Eventor)",
        }
    }
}

impl std::fmt::Display for PipelineVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Accuracy of one variant on one sequence.
#[derive(Debug, Clone)]
pub struct VariantAccuracy {
    /// Which variant was run.
    pub variant: PipelineVariant,
    /// Sequence name.
    pub sequence: &'static str,
    /// Depth metrics of the primary key frame against ground truth.
    pub metrics: DepthMetrics,
    /// Number of key frames reconstructed.
    pub keyframes: usize,
}

/// Runs one variant on a sequence.
///
/// The base configuration's voting mode is overridden per variant; the depth
/// range is taken from the sequence.
///
/// # Errors
///
/// Propagates reconstruction errors from the underlying pipeline.
pub fn run_variant(
    sequence: &SyntheticSequence,
    variant: PipelineVariant,
    base_config: &EmvsConfig,
) -> Result<VariantAccuracy, EmvsError> {
    let config = base_config
        .clone()
        .with_depth_range(sequence.depth_range.0, sequence.depth_range.1);
    let output: EmvsOutput = match variant {
        PipelineVariant::OriginalBilinear => {
            let mapper =
                EmvsMapper::new(sequence.camera, config.with_voting(VotingMode::Bilinear))?;
            mapper.reconstruct(&sequence.events, &sequence.trajectory)?
        }
        PipelineVariant::OriginalNearest => {
            let mapper = EmvsMapper::new(sequence.camera, config.with_voting(VotingMode::Nearest))?;
            mapper.reconstruct(&sequence.events, &sequence.trajectory)?
        }
        PipelineVariant::QuantizedBilinear => {
            let pipeline =
                EventorPipeline::new(sequence.camera, config, EventorOptions::quantized_only())?;
            pipeline.reconstruct(&sequence.events, &sequence.trajectory)?
        }
        PipelineVariant::Reformulated => {
            let pipeline =
                EventorPipeline::new(sequence.camera, config, EventorOptions::accelerator())?;
            pipeline.reconstruct(&sequence.events, &sequence.trajectory)?
        }
    };
    let primary = output.primary().ok_or(EmvsError::NoEvents)?;
    let gt = sequence.ground_truth_depth_at(&primary.reference_pose);
    let metrics = primary.depth_map.compare_to_ground_truth(gt.as_slice())?;
    Ok(VariantAccuracy {
        variant,
        sequence: sequence.name(),
        metrics,
        keyframes: output.keyframes.len(),
    })
}

/// Runs a set of variants on a sequence.
///
/// # Errors
///
/// Fails on the first variant that fails to reconstruct.
pub fn run_variants(
    sequence: &SyntheticSequence,
    variants: &[PipelineVariant],
    base_config: &EmvsConfig,
) -> Result<Vec<VariantAccuracy>, EmvsError> {
    variants
        .iter()
        .map(|&v| run_variant(sequence, v, base_config))
        .collect()
}

/// Picks an EMVS configuration adapted to a sequence: depth range from the
/// sequence metadata and a key-frame distance proportional to the mean scene
/// depth (the heuristic EMVS front-ends use in practice).
pub fn config_for_sequence(sequence: &SyntheticSequence, num_depth_planes: usize) -> EmvsConfig {
    let mean_depth = sequence
        .ground_truth_depth
        .mean_finite()
        .max(sequence.depth_range.0);
    EmvsConfig::default()
        .with_depth_range(sequence.depth_range.0, sequence.depth_range.1)
        .with_depth_planes(num_depth_planes)
        .with_keyframe_distance(0.30 * mean_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_events::{DatasetConfig, SequenceKind};

    #[test]
    fn variant_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            PipelineVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), PipelineVariant::ALL.len());
    }

    #[test]
    fn all_variants_run_and_stay_close_on_a_small_sequence() {
        let seq =
            SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
                .unwrap();
        let config = config_for_sequence(&seq, 60);
        let results = run_variants(&seq, &PipelineVariant::ALL, &config).unwrap();
        assert_eq!(results.len(), 4);
        let baseline = results
            .iter()
            .find(|r| r.variant == PipelineVariant::OriginalBilinear)
            .unwrap()
            .metrics
            .abs_rel;
        for r in &results {
            assert!(r.metrics.compared_pixels > 30, "{}: too sparse", r.variant);
            assert!(
                (r.metrics.abs_rel - baseline).abs() < 0.06,
                "{}: {:.4} vs baseline {:.4}",
                r.variant,
                r.metrics.abs_rel,
                baseline
            );
            assert_eq!(r.sequence, "slider_close");
        }
    }

    #[test]
    fn config_for_sequence_uses_sequence_metadata() {
        let seq = SyntheticSequence::generate(SequenceKind::SliderFar, &DatasetConfig::fast_test())
            .unwrap();
        let config = config_for_sequence(&seq, 80);
        assert_eq!(config.num_depth_planes, 80);
        assert_eq!(config.depth_range, seq.depth_range);
        assert!(config.keyframe_distance > 0.3);
    }
}
