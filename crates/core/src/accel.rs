//! Accelerator evaluation: binds a reconstruction run to the hardware model
//! to produce the Eventor column of Table 3 and the energy-efficiency
//! comparison against the CPU baseline.

use eventor_emvs::StageProfile;
use eventor_hwsim::{
    estimate_resources, performance, sequence_runtime_seconds, AcceleratorConfig,
    AcceleratorPerformance, EnergyComparison, PowerModel, ResourceReport, INTEL_I5_POWER_W,
};

/// Complete accelerator-side evaluation of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorRun {
    /// Per-frame performance figures (Table 3, Eventor column).
    pub performance: AcceleratorPerformance,
    /// Number of normal frames in the workload.
    pub normal_frames: u64,
    /// Number of key frames in the workload.
    pub key_frames: u64,
    /// Total accelerator busy time for the workload, seconds.
    pub total_seconds: f64,
    /// Resource utilization of the configuration (Table 2).
    pub resources: ResourceReport,
    /// Accelerator power, watts.
    pub power_w: f64,
}

impl AcceleratorRun {
    /// Evaluates the accelerator model on a workload of `normal_frames` +
    /// `key_frames` event frames.
    pub fn evaluate(config: &AcceleratorConfig, normal_frames: u64, key_frames: u64) -> Self {
        let resources = estimate_resources(config);
        let power_w = PowerModel::default().accelerator_power_w(config, &resources);
        Self {
            performance: performance(config),
            normal_frames,
            key_frames,
            total_seconds: sequence_runtime_seconds(config, normal_frames, key_frames),
            resources,
            power_w,
        }
    }

    /// Evaluates the accelerator on the same workload a CPU reconstruction
    /// processed, taking the frame/key-frame counts from its profile.
    pub fn evaluate_from_profile(config: &AcceleratorConfig, profile: &StageProfile) -> Self {
        let key_frames = profile.keyframes.min(profile.frames_processed);
        let normal_frames = profile.frames_processed - key_frames;
        Self::evaluate(config, normal_frames, key_frames)
    }

    /// Event processing rate over the whole workload, events per second.
    pub fn event_rate(&self, events_per_frame: usize) -> f64 {
        if self.total_seconds <= 0.0 {
            return 0.0;
        }
        let events = (self.normal_frames + self.key_frames) as f64 * events_per_frame as f64;
        events / self.total_seconds
    }

    /// Builds the energy comparison against a CPU run of the same workload.
    ///
    /// `cpu_profile` is the baseline's measured stage profile: the CPU time
    /// charged to the comparison is the `𝒫 + ℛ` time, i.e. the same portion
    /// of the pipeline the accelerator executes.
    pub fn energy_versus_cpu(&self, cpu_profile: &StageProfile) -> EnergyComparison {
        EnergyComparison {
            cpu_seconds: cpu_profile.projection_raycounting_time().as_secs_f64(),
            accelerator_seconds: self.total_seconds,
            cpu_power_w: INTEL_I5_POWER_W,
            accelerator_power_w: self.power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_emvs::Stage;
    use std::time::Duration;

    #[test]
    fn evaluation_reproduces_table3_eventor_column() {
        let run = AcceleratorRun::evaluate(&AcceleratorConfig::default(), 100, 3);
        assert!((run.performance.canonical_us - 8.24).abs() < 0.1);
        assert!((run.performance.proportional_us - 551.58).abs() < 15.0);
        assert!((run.power_w - 1.86).abs() < 0.15);
        assert_eq!(run.resources.total_luts(), 17_538);
        let rate = run.event_rate(1024);
        assert!(rate > 1.7e6 && rate < 2.0e6, "event rate {rate}");
    }

    #[test]
    fn profile_driven_evaluation_counts_frames() {
        let mut profile = StageProfile::new();
        profile.frames_processed = 50;
        profile.keyframes = 4;
        let run = AcceleratorRun::evaluate_from_profile(&AcceleratorConfig::default(), &profile);
        assert_eq!(run.normal_frames, 46);
        assert_eq!(run.key_frames, 4);
        assert!(run.total_seconds > 0.0);
    }

    #[test]
    fn energy_gain_is_in_the_paper_ballpark() {
        // Build a CPU profile with the paper's per-frame runtime (581.95 us
        // of P+R per frame over 100 frames).
        let mut cpu = StageProfile::new();
        cpu.frames_processed = 100;
        cpu.keyframes = 2;
        cpu.events_processed = 100 * 1024;
        cpu.add(
            Stage::CanonicalProjection,
            Duration::from_secs_f64(22.40e-6 * 100.0),
        );
        cpu.add(
            Stage::ProportionalProjection,
            Duration::from_secs_f64(400.0e-6 * 100.0),
        );
        cpu.add(Stage::VoteDsi, Duration::from_secs_f64(159.55e-6 * 100.0));
        let run = AcceleratorRun::evaluate_from_profile(&AcceleratorConfig::default(), &cpu);
        let cmp = run.energy_versus_cpu(&cpu);
        let gain = cmp.efficiency_gain();
        assert!(gain > 15.0 && gain < 35.0, "efficiency gain {gain}");
        assert!(cmp.power_reduction() > 20.0);
    }

    #[test]
    fn zero_workload_is_safe() {
        let run = AcceleratorRun::evaluate(&AcceleratorConfig::default(), 0, 0);
        assert_eq!(run.total_seconds, 0.0);
        assert_eq!(run.event_rate(1024), 0.0);
    }
}
