//! Durable session checkpoints: the `eventor-evtr/1` `CKPT` container
//! payload.
//!
//! A [`SessionCheckpoint`] is the serializable form of a mid-flight
//! [`EventorSession`]: the driver-layer
//! [`DriverCheckpoint`] (configuration, trajectory, pending events, key-frame
//! bookkeeping, retired reconstructions, partial DSI vote state) plus the
//! provenance needed to resume it — which backend kind produced it and a
//! caller-supplied origin string (e.g. the scenario and seed that generated
//! the stream).
//!
//! ## Encoding
//!
//! The payload is a fixed little-endian binary layout (no self-describing
//! metadata): floats are raw IEEE-754 bit patterns, so a
//! checkpoint → restore → checkpoint round trip is bit-identical. The
//! payload is carried as the single `CKPT` section of an `eventor-evtr/1`
//! container, which contributes the magic, versioning (both the container
//! version and [`CKPT_VERSION`](eventor_events::CKPT_VERSION)) and the
//! trailing FNV-1a-64 checksum; see `docs/ARCHITECTURE.md` §3.
//!
//! ## Error domains
//!
//! The two layers fail differently on purpose:
//!
//! * container-level corruption (bad checksum, truncation, wrong section) is
//!   an [`EventError`](eventor_events::EventError) from
//!   [`read_ckpt`](eventor_events::read_ckpt) — the same domain as any other
//!   corrupt `.evtr` file;
//! * a structurally invalid *payload* inside an intact container (only
//!   reachable by re-sealing the checksum over tampered bytes) is
//!   [`EmvsError::Checkpoint`].

use crate::session::EventorSession;
use eventor_dsi::DsiVolume;
use eventor_emvs::{BackendVoteState, DriverCheckpoint, EmvsConfig, EmvsError, VotingMode};
use eventor_events::{Event, Polarity};
use eventor_geom::{
    CameraIntrinsics, CameraModel, DistortionModel, Pose, Trajectory, UnitQuaternion, Vec3,
};

/// A durable mid-flight session checkpoint: the driver state plus resume
/// provenance. Produced by [`EventorSession::snapshot`], consumed by
/// [`SessionBuilder::restore`](crate::SessionBuilder::restore).
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    driver: DriverCheckpoint,
    backend_kind: String,
    origin: String,
}

impl SessionCheckpoint {
    /// Wraps a driver checkpoint with its resume provenance.
    pub fn new(driver: DriverCheckpoint, backend_kind: &str, origin: &str) -> Self {
        Self {
            driver,
            backend_kind: backend_kind.to_string(),
            origin: origin.to_string(),
        }
    }

    /// The driver-layer checkpoint.
    pub fn driver(&self) -> &DriverCheckpoint {
        &self.driver
    }

    /// Consumes the checkpoint and returns the driver-layer state.
    pub fn into_driver(self) -> DriverCheckpoint {
        self.driver
    }

    /// Short identifier of the backend that produced the checkpoint
    /// (`"software"`, `"sharded"`, `"cosim"`, …) — the default backend to
    /// resume on.
    pub fn backend_kind(&self) -> &str {
        &self.backend_kind
    }

    /// The caller-supplied origin string (e.g. `"scenario=orbit-close seed=7"`).
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The camera model the session ran with.
    pub fn camera(&self) -> &CameraModel {
        &self.driver.camera
    }

    /// The EMVS configuration the session ran with.
    pub fn config(&self) -> &EmvsConfig {
        &self.driver.config
    }

    /// Total events the checkpointed session had ingested.
    pub fn events_pushed(&self) -> u64 {
        self.driver.events_pushed
    }

    /// Key frames the checkpointed session had retired.
    pub fn keyframes_retired(&self) -> usize {
        self.driver.keyframes.len()
    }

    /// Serializes the checkpoint to its raw `CKPT` payload bytes (without
    /// the `eventor-evtr/1` container framing).
    pub fn encode(&self) -> Vec<u8> {
        let d = &self.driver;
        let mut out = Vec::new();
        put_str(&mut out, &self.origin);
        put_str(&mut out, &self.backend_kind);

        // Camera model.
        let i = &d.camera.intrinsics;
        for v in [i.fx, i.fy, i.cx, i.cy] {
            put_f64(&mut out, v);
        }
        out.extend_from_slice(&i.width.to_le_bytes());
        out.extend_from_slice(&i.height.to_le_bytes());
        let dist = &d.camera.distortion;
        for v in [dist.k1, dist.k2, dist.p1, dist.p2, dist.k3] {
            put_f64(&mut out, v);
        }

        // EMVS configuration.
        put_u64(&mut out, d.config.events_per_frame as u64);
        put_u64(&mut out, d.config.num_depth_planes as u64);
        put_f64(&mut out, d.config.depth_range.0);
        put_f64(&mut out, d.config.depth_range.1);
        out.push(match d.config.voting {
            VotingMode::Bilinear => 0,
            VotingMode::Nearest => 1,
        });
        let det = &d.config.detection;
        for v in [
            det.adaptive_sigma,
            det.adaptive_offset,
            det.min_confidence,
            det.min_peak_ratio,
        ] {
            put_f64(&mut out, v);
        }
        out.push(det.subplane_refinement as u8);
        put_u64(&mut out, det.median_filter_size as u64);
        put_f64(&mut out, d.config.keyframe_distance);
        put_u64(&mut out, d.config.min_frames_per_keyframe as u64);
        put_u64(&mut out, d.max_pending_events as u64);

        // Trajectory.
        put_u64(&mut out, d.trajectory.len() as u64);
        for sample in d.trajectory.iter() {
            let t = sample.pose.translation;
            let q = sample.pose.rotation;
            for v in [sample.timestamp, t.x, t.y, t.z, q.x, q.y, q.z, q.w] {
                put_f64(&mut out, v);
            }
        }

        // Pending (unprocessed) events.
        put_u64(&mut out, d.pending.len() as u64);
        for e in &d.pending {
            put_f64(&mut out, e.t);
            out.extend_from_slice(&e.x.to_le_bytes());
            out.extend_from_slice(&e.y.to_le_bytes());
            out.push(match e.polarity {
                Polarity::Positive => 1,
                Polarity::Negative => 0,
            });
        }

        // Stream cursor and key-frame bookkeeping.
        match d.last_event_t {
            Some(t) => {
                out.push(1);
                put_f64(&mut out, t);
            }
            None => out.push(0),
        }
        put_u64(&mut out, d.events_pushed);
        put_u64(&mut out, d.next_frame_index as u64);
        put_u64(&mut out, d.frames_since_switch as u64);
        match &d.reference {
            Some(pose) => {
                out.push(1);
                put_pose(&mut out, pose);
            }
            None => out.push(0),
        }
        put_u64(&mut out, d.frames_in_keyframe as u64);
        put_u64(&mut out, d.events_in_keyframe as u64);

        // Retired key frames. The local cloud is a pure function of the
        // depth map, intrinsics and pose, so it is recomputed on decode
        // rather than stored.
        put_u64(&mut out, d.keyframes.len() as u64);
        for kf in &d.keyframes {
            put_pose(&mut out, &kf.reference_pose);
            put_u64(&mut out, kf.frames_used as u64);
            put_u64(&mut out, kf.events_used as u64);
            put_u64(&mut out, kf.votes_cast);
            let dm = &kf.depth_map;
            put_u64(&mut out, dm.width() as u64);
            put_u64(&mut out, dm.height() as u64);
            for y in 0..dm.height() {
                for x in 0..dm.width() {
                    put_f64(&mut out, dm.depth(x, y));
                    put_f64(&mut out, dm.confidence(x, y));
                }
            }
        }

        // Backend vote state: per-shard tiles, each in the DSI crate's LE
        // vote-state encoding.
        match &d.vote_state {
            BackendVoteState::Quantized(tiles) => {
                out.push(0);
                put_u64(&mut out, tiles.len() as u64);
                for tile in tiles {
                    put_tile_bytes(
                        &mut out,
                        tile.width(),
                        tile.height(),
                        tile.encode_vote_state(),
                    );
                }
            }
            BackendVoteState::Float(tiles) => {
                out.push(1);
                put_u64(&mut out, tiles.len() as u64);
                for tile in tiles {
                    put_tile_bytes(
                        &mut out,
                        tile.width(),
                        tile.height(),
                        tile.encode_vote_state(),
                    );
                }
            }
        }
        out
    }

    /// Deserializes a checkpoint from its raw `CKPT` payload bytes.
    ///
    /// # Errors
    ///
    /// [`EmvsError::Checkpoint`] for any structural violation: truncation,
    /// trailing bytes, invalid enum codes, non-finite timestamps, non-unit
    /// rotations, or vote-state tiles that disagree with their declared
    /// geometry.
    pub fn decode(bytes: &[u8]) -> Result<Self, EmvsError> {
        let mut c = Reader { bytes, at: 0 };
        let origin = c.string("origin")?;
        let backend_kind = c.string("backend kind")?;

        let camera = CameraModel {
            intrinsics: CameraIntrinsics {
                fx: c.f64("camera fx")?,
                fy: c.f64("camera fy")?,
                cx: c.f64("camera cx")?,
                cy: c.f64("camera cy")?,
                width: c.u32("camera width")?,
                height: c.u32("camera height")?,
            },
            distortion: DistortionModel {
                k1: c.f64("distortion k1")?,
                k2: c.f64("distortion k2")?,
                p1: c.f64("distortion p1")?,
                p2: c.f64("distortion p2")?,
                k3: c.f64("distortion k3")?,
            },
        };

        let config = EmvsConfig {
            events_per_frame: c.usize("events_per_frame")?,
            num_depth_planes: c.usize("num_depth_planes")?,
            depth_range: (c.f64("depth_range near")?, c.f64("depth_range far")?),
            voting: match c.u8("voting mode")? {
                0 => VotingMode::Bilinear,
                1 => VotingMode::Nearest,
                other => return Err(corrupt(format!("unknown voting mode code {other}"))),
            },
            detection: eventor_dsi::DetectionConfig {
                adaptive_sigma: c.f64("adaptive_sigma")?,
                adaptive_offset: c.f64("adaptive_offset")?,
                min_confidence: c.f64("min_confidence")?,
                min_peak_ratio: c.f64("min_peak_ratio")?,
                subplane_refinement: c.bool("subplane_refinement")?,
                median_filter_size: c.usize("median_filter_size")?,
            },
            keyframe_distance: c.f64("keyframe_distance")?,
            min_frames_per_keyframe: c.usize("min_frames_per_keyframe")?,
        };
        let max_pending_events = c.usize("max_pending_events")?;

        let samples = c.usize("trajectory sample count")?;
        c.reserve(samples, 64, "trajectory samples")?;
        let mut trajectory = Trajectory::new();
        for i in 0..samples {
            let what = format!("trajectory sample {i}");
            let t = c.f64(&what)?;
            let translation = Vec3::new(c.f64(&what)?, c.f64(&what)?, c.f64(&what)?);
            let (qx, qy, qz, qw) = (c.f64(&what)?, c.f64(&what)?, c.f64(&what)?, c.f64(&what)?);
            let rotation = UnitQuaternion::from_normalized(qw, qx, qy, qz, 1e-6)
                .ok_or_else(|| corrupt(format!("{what}: rotation is not unit norm")))?;
            trajectory
                .push(t, Pose::new(rotation, translation))
                .map_err(|e| corrupt(format!("{what}: {e}")))?;
        }

        let pending_count = c.usize("pending event count")?;
        c.reserve(pending_count, 13, "pending events")?;
        let mut pending = Vec::with_capacity(pending_count);
        for i in 0..pending_count {
            let what = format!("pending event {i}");
            let t = c.f64(&what)?;
            if !t.is_finite() {
                return Err(corrupt(format!("{what}: non-finite timestamp")));
            }
            let x = c.u16(&what)?;
            let y = c.u16(&what)?;
            let polarity = match c.u8(&what)? {
                1 => Polarity::Positive,
                0 => Polarity::Negative,
                other => return Err(corrupt(format!("{what}: invalid polarity byte {other}"))),
            };
            pending.push(Event::new(t, x, y, polarity));
        }

        let last_event_t = match c.u8("last_event_t flag")? {
            0 => None,
            1 => {
                let t = c.f64("last_event_t")?;
                if !t.is_finite() {
                    return Err(corrupt("last_event_t: non-finite timestamp"));
                }
                Some(t)
            }
            other => return Err(corrupt(format!("invalid last_event_t flag {other}"))),
        };
        let events_pushed = c.u64("events_pushed")?;
        let next_frame_index = c.usize("next_frame_index")?;
        let frames_since_switch = c.usize("frames_since_switch")?;
        let reference = match c.u8("reference flag")? {
            0 => None,
            1 => Some(c.pose("reference pose")?),
            other => return Err(corrupt(format!("invalid reference flag {other}"))),
        };
        let frames_in_keyframe = c.usize("frames_in_keyframe")?;
        let events_in_keyframe = c.usize("events_in_keyframe")?;

        let keyframe_count = c.usize("keyframe count")?;
        c.reserve(keyframe_count, 8 * 7 + 8 * 3 + 16, "keyframes")?;
        let mut keyframes = Vec::with_capacity(keyframe_count);
        for i in 0..keyframe_count {
            let what = format!("keyframe {i}");
            let reference_pose = c.pose(&what)?;
            let frames_used = c.usize(&what)?;
            let events_used = c.usize(&what)?;
            let votes_cast = c.u64(&what)?;
            let width = c.usize(&what)?;
            let height = c.usize(&what)?;
            c.reserve(width.saturating_mul(height), 16, "depth-map pixels")?;
            let mut depth_map = eventor_dsi::DepthMap::new(width, height)
                .map_err(|e| corrupt(format!("{what}: {e}")))?;
            for y in 0..height {
                for x in 0..width {
                    let depth = c.f64(&what)?;
                    let confidence = c.f64(&what)?;
                    depth_map.set(x, y, depth, confidence);
                }
            }
            // The local cloud is a pure deterministic function of the stored
            // fields — recompute instead of trusting serialized points.
            let local_cloud = eventor_dsi::PointCloud::from_depth_map(
                &depth_map,
                &camera.intrinsics,
                &reference_pose,
            );
            keyframes.push(eventor_emvs::KeyframeReconstruction {
                reference_pose,
                depth_map,
                local_cloud,
                frames_used,
                events_used,
                votes_cast,
            });
        }

        // Vote-state tiles need the depth planes, which are derived from the
        // (already decoded) configuration. A forged plane count must hit the
        // allocation guard before `depth_planes()` materializes the sweep:
        // every legitimate checkpoint carries at least one vote tile, and
        // each tile's payload spends at least two bytes per plane.
        c.reserve(config.num_depth_planes, 2, "depth planes")?;
        let planes = config.depth_planes().map_err(|e| {
            corrupt(format!(
                "embedded configuration cannot build depth planes: {e}"
            ))
        })?;
        let quantized = match c.u8("vote-state tag")? {
            0 => true,
            1 => false,
            other => return Err(corrupt(format!("unknown vote-state tag {other}"))),
        };
        let tile_count = c.usize("vote-state tile count")?;
        c.reserve(tile_count, 24, "vote-state tiles")?;
        let vote_state = if quantized {
            let mut tiles: Vec<DsiVolume<u16>> = Vec::with_capacity(tile_count);
            for i in 0..tile_count {
                let (w, h, payload) = c.tile_bytes(i)?;
                tiles.push(
                    DsiVolume::decode_vote_state(w, h, planes.clone(), payload)
                        .map_err(|e| corrupt(format!("vote-state tile {i}: {e}")))?,
                );
            }
            BackendVoteState::Quantized(tiles)
        } else {
            let mut tiles: Vec<DsiVolume<f32>> = Vec::with_capacity(tile_count);
            for i in 0..tile_count {
                let (w, h, payload) = c.tile_bytes(i)?;
                tiles.push(
                    DsiVolume::decode_vote_state(w, h, planes.clone(), payload)
                        .map_err(|e| corrupt(format!("vote-state tile {i}: {e}")))?,
                );
            }
            BackendVoteState::Float(tiles)
        };

        if c.at != c.bytes.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the checkpoint payload",
                c.bytes.len() - c.at
            )));
        }

        Ok(Self {
            driver: DriverCheckpoint {
                camera,
                config,
                max_pending_events,
                trajectory,
                pending,
                last_event_t,
                events_pushed,
                next_frame_index,
                frames_since_switch,
                reference,
                frames_in_keyframe,
                events_in_keyframe,
                keyframes,
                vote_state,
            },
            backend_kind,
            origin,
        })
    }

    /// Writes the checkpoint as a complete `eventor-evtr/1` `CKPT` container
    /// (magic, version words, payload, FNV-1a-64 checksum).
    ///
    /// # Errors
    ///
    /// Propagates writer I/O failures.
    pub fn write_to<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        eventor_events::write_ckpt(&self.encode(), writer)
    }

    /// Reads a checkpoint back from an `eventor-evtr/1` `CKPT` container.
    ///
    /// Kept two-step on purpose so callers can tell the error domains apart:
    /// container corruption surfaces as `Err(event_error)` from the outer
    /// [`read_ckpt`](eventor_events::read_ckpt) (same as any corrupt `.evtr`
    /// file), while a structurally invalid payload inside an intact
    /// container surfaces as `Ok(Err(checkpoint_error))`.
    ///
    /// # Errors
    ///
    /// See above — [`eventor_events::EventError`] for the container,
    /// [`EmvsError::Checkpoint`] for the payload.
    pub fn read_from<R: std::io::Read>(
        reader: R,
    ) -> Result<Result<Self, EmvsError>, eventor_events::EventError> {
        let payload = eventor_events::read_ckpt(reader)?;
        Ok(Self::decode(&payload))
    }
}

impl EventorSession {
    /// Captures this session as a durable [`SessionCheckpoint`], recording
    /// `origin` (e.g. the scenario and seed that generated the stream) for
    /// the resume side. The session stays fully usable afterwards.
    ///
    /// # Errors
    ///
    /// [`EmvsError::Checkpoint`] when lifecycle events are undrained
    /// ([`poll`](Self::poll) first), when incremental map fusion is enabled
    /// (the fused map is not checkpointable state) or when the backend does
    /// not support checkpointing.
    pub fn snapshot(&mut self, origin: &str) -> Result<SessionCheckpoint, EmvsError> {
        if self.fusion_enabled() {
            return Err(EmvsError::Checkpoint {
                reason: "sessions with incremental map fusion cannot be checkpointed".into(),
            });
        }
        let backend_kind = self.backend_name();
        let driver = self.driver_mut().snapshot()?;
        Ok(SessionCheckpoint::new(driver, backend_kind, origin))
    }
}

fn corrupt(reason: impl Into<String>) -> EmvsError {
    EmvsError::Checkpoint {
        reason: reason.into(),
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_pose(out: &mut Vec<u8>, pose: &Pose) {
    let t = pose.translation;
    let q = pose.rotation;
    for v in [t.x, t.y, t.z, q.x, q.y, q.z, q.w] {
        put_f64(out, v);
    }
}

fn put_tile_bytes(out: &mut Vec<u8>, width: usize, height: usize, payload: Vec<u8>) {
    put_u64(out, width as u64);
    put_u64(out, height as u64);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// Bounds-checked little-endian reader over the checkpoint payload; every
/// failure names the field being read.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], EmvsError> {
        let available = self.bytes.len() - self.at;
        if available < n {
            return Err(corrupt(format!(
                "truncated while reading {what}: needed {n} bytes, {available} left"
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Rejects declared element counts whose payload cannot possibly fit in
    /// the remaining bytes, so a corrupted count fails fast instead of
    /// attempting a huge allocation.
    fn reserve(&self, count: usize, min_bytes_each: usize, what: &str) -> Result<(), EmvsError> {
        let available = self.bytes.len() - self.at;
        if count.saturating_mul(min_bytes_each) > available {
            return Err(corrupt(format!(
                "declared {count} {what} but only {available} payload bytes remain"
            )));
        }
        Ok(())
    }

    fn u8(&mut self, what: &str) -> Result<u8, EmvsError> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &str) -> Result<bool, EmvsError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(format!("{what}: invalid boolean byte {other}"))),
        }
    }

    fn u16(&mut self, what: &str) -> Result<u16, EmvsError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, EmvsError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, EmvsError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn usize(&mut self, what: &str) -> Result<usize, EmvsError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| corrupt(format!("{what}: {v} overflows this host")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, EmvsError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String, EmvsError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(format!("{what}: invalid UTF-8")))
    }

    fn pose(&mut self, what: &str) -> Result<Pose, EmvsError> {
        let translation = Vec3::new(self.f64(what)?, self.f64(what)?, self.f64(what)?);
        let (qx, qy, qz, qw) = (
            self.f64(what)?,
            self.f64(what)?,
            self.f64(what)?,
            self.f64(what)?,
        );
        let rotation = UnitQuaternion::from_normalized(qw, qx, qy, qz, 1e-6)
            .ok_or_else(|| corrupt(format!("{what}: rotation is not unit norm")))?;
        Ok(Pose::new(rotation, translation))
    }

    fn tile_bytes(&mut self, index: usize) -> Result<(usize, usize, &'a [u8]), EmvsError> {
        let what = format!("vote-state tile {index}");
        let width = self.usize(&what)?;
        let height = self.usize(&what)?;
        let len = self.usize(&what)?;
        let payload = self.take(len, &what)?;
        Ok((width, height, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{config_for_sequence, EventorOptions, EventorSession};
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

    fn checkpoint_fixture() -> (SyntheticSequence, SessionCheckpoint) {
        let seq =
            SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
                .unwrap();
        let config = config_for_sequence(&seq, 60);
        let mut session = EventorSession::builder(seq.camera, config)
            .software(EventorOptions::accelerator())
            .build()
            .unwrap();
        session.push_trajectory(&seq.trajectory).unwrap();
        let events = seq.events.as_slice().to_vec();
        session.push_events(&events[..events.len() / 2]).unwrap();
        session.poll().unwrap();
        let checkpoint = session.snapshot("scenario=test seed=1").unwrap();
        (seq, checkpoint)
    }

    #[test]
    fn encode_decode_round_trip_is_bit_exact() {
        let (_, checkpoint) = checkpoint_fixture();
        let bytes = checkpoint.encode();
        let decoded = SessionCheckpoint::decode(&bytes).unwrap();
        assert_eq!(decoded.origin(), checkpoint.origin());
        assert_eq!(decoded.backend_kind(), checkpoint.backend_kind());
        assert_eq!(decoded.events_pushed(), checkpoint.events_pushed());
        assert_eq!(decoded.keyframes_retired(), checkpoint.keyframes_retired());
        assert_eq!(decoded.camera(), checkpoint.camera());
        assert_eq!(decoded.config(), checkpoint.config());
        // The strongest statement: re-encoding the decoded checkpoint is
        // byte-identical, so every field (including f64 bit patterns)
        // survived.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn container_round_trip_and_error_domains() {
        let (_, checkpoint) = checkpoint_fixture();
        let mut container = Vec::new();
        checkpoint.write_to(&mut container).unwrap();
        let read = SessionCheckpoint::read_from(container.as_slice())
            .expect("container intact")
            .expect("payload intact");
        assert_eq!(read.encode(), checkpoint.encode());

        // A flipped payload byte is a *container* error (checksum).
        let mut corrupted = container.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x01;
        assert!(SessionCheckpoint::read_from(corrupted.as_slice()).is_err());

        // A structurally broken payload inside a re-sealed container is a
        // *checkpoint* error.
        let mut bytes = checkpoint.encode();
        bytes[0] = 0xFF; // origin length explodes past the payload
        let mut resealed = Vec::new();
        eventor_events::write_ckpt(&bytes, &mut resealed).unwrap();
        let inner = SessionCheckpoint::read_from(resealed.as_slice()).expect("container intact");
        assert!(matches!(inner, Err(EmvsError::Checkpoint { .. })));
    }

    #[test]
    fn truncated_payloads_are_typed_errors_at_every_length() {
        let (_, checkpoint) = checkpoint_fixture();
        let bytes = checkpoint.encode();
        // Exhaustive over the structured head of the payload, sampled over
        // the bulky tail.
        let mut lengths: Vec<usize> = (0..bytes.len().min(512)).collect();
        lengths.extend((512..bytes.len()).step_by(997));
        for len in lengths {
            assert!(
                matches!(
                    SessionCheckpoint::decode(&bytes[..len]),
                    Err(EmvsError::Checkpoint { .. })
                ),
                "truncation to {len} bytes must be a typed checkpoint error"
            );
        }
    }

    #[test]
    fn fusion_sessions_refuse_to_snapshot() {
        let seq =
            SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
                .unwrap();
        let config = config_for_sequence(&seq, 60);
        let mut session = EventorSession::builder(seq.camera, config)
            .software(EventorOptions::accelerator())
            .fuse_into_map(eventor_map::GlobalMapConfig::default())
            .build()
            .unwrap();
        session.push_trajectory(&seq.trajectory).unwrap();
        session.push_events(seq.events.as_slice()).unwrap();
        session.poll().unwrap();
        let err = session.snapshot("origin").unwrap_err();
        assert!(matches!(err, EmvsError::Checkpoint { .. }));
        assert!(err.to_string().contains("fusion"));
    }
}
