//! The unified streaming **`EventorSession`** API: push-based incremental
//! reconstruction with pluggable execution backends.
//!
//! This is the public entry point the ROADMAP's online/multi-backend goal
//! asks for. One validated configuration path ([`SessionBuilder`]) selects an
//! [`ExecutionBackend`] trait object —
//!
//! * [`SoftwareBackend`] — the sequential reformulated (optionally
//!   quantized) golden path of [`crate::EventorPipeline`],
//! * [`ShardedBackend`] — the parallel sharded voting engine (private
//!   per-shard DSI tiles, round-robin vote packets, deterministic tree
//!   reduction),
//! * [`CosimBackend`] — the functional
//!   `eventor-hwsim` device driven through its register/DMA interface,
//! * any user type implementing [`ExecutionBackend`]
//!   (`eventor-backend/1`, `docs/ARCHITECTURE.md` §6).
//!
//! Ingestion is push-based and backpressure-aware: [`EventorSession::push_pose`]
//! and [`EventorSession::push_events`] / [`EventorSession::push_packet`] feed
//! the session, [`EventorSession::poll`] drains ready frames and yields
//! [`SessionEvent`] lifecycle notifications, and
//! [`EventorSession::finish`] flushes the trailing partial frame and returns
//! the batch-shaped [`SessionOutput`]. For the quantized nearest-voting
//! datapath the output is **bit-identical** to the batch `reconstruct()`
//! golden path for every backend and for arbitrary packet boundaries
//! (`tests/session_equivalence.rs`).
//!
//! Finished key frames can optionally be fused incrementally into an
//! `eventor-map` [`GlobalMap`] ([`SessionBuilder::fuse_into_map`]), emitting
//! [`SessionEvent::MapFused`] per key frame.

use crate::cosim::CosimBackend;
use crate::parallel::{
    parallel_map, run_sharded, shard_packets, vote_packet_float, vote_packet_quantized_bilinear,
    vote_packet_quantized_nearest, ParallelConfig, QuantizedFrameParams, ShardState,
};
use crate::pipeline::EventorOptions;
use crate::quantized::{quantize_event_pixel, QuantizedCoefficients, QuantizedHomography};
use eventor_dsi::{DepthPlanes, DetectionConfig, DsiVolume, VoteArena, VoxelScore};
use eventor_emvs::{
    finalize_volume, import_vote_tiles, BackendVoteState, EmvsConfig, EmvsError, EmvsOutput,
    FrameGeometry, KeyframeReconstruction, SessionDriver, Stage, StageProfile, VotingMode,
};
use eventor_events::{packetize_frame, Event, EventStream, VotePacket};
use eventor_fixed::kernel;
use eventor_fixed::PackedCoord;
use eventor_geom::{CameraModel, Pose, Trajectory, Vec2};
use eventor_hwsim::AcceleratorConfig;
use eventor_map::{GlobalMap, GlobalMapConfig};
use std::time::Instant;

pub use crate::cosim::CosimReport;
pub use eventor_emvs::{
    ExecutionBackend, FrameWork, SessionEvent, DEFAULT_MAX_PENDING_EVENTS, ENGINE_SPILL_EVENTS,
};

/// DSI storage of the software backend: 16-bit integer scores for the
/// quantized nearest-voting datapath, `f32` otherwise.
#[derive(Debug, Clone)]
enum DsiStorage {
    Float(DsiVolume<f32>),
    Quantized(DsiVolume<u16>),
}

impl DsiStorage {
    fn new(
        width: usize,
        height: usize,
        planes: DepthPlanes,
        options: &EventorOptions,
    ) -> Result<Self, EmvsError> {
        if options.quantize && options.voting == VotingMode::Nearest {
            Ok(Self::Quantized(DsiVolume::new(width, height, planes)?))
        } else {
            Ok(Self::Float(DsiVolume::new(width, height, planes)?))
        }
    }

    fn vote(&mut self, x: f64, y: f64, plane: usize, voting: VotingMode) {
        match (self, voting) {
            (Self::Float(dsi), VotingMode::Bilinear) => dsi.vote_bilinear(x, y, plane, 1.0),
            (Self::Float(dsi), VotingMode::Nearest) => dsi.vote_nearest(x, y, plane, 1.0),
            (Self::Quantized(dsi), VotingMode::Bilinear) => dsi.vote_bilinear(x, y, plane, 1.0),
            (Self::Quantized(dsi), VotingMode::Nearest) => dsi.vote_nearest(x, y, plane, 1.0),
        }
    }

    fn finalize(
        &self,
        detection: &DetectionConfig,
        camera: &CameraModel,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
    ) -> KeyframeReconstruction {
        match self {
            Self::Float(dsi) => finalize_volume(
                dsi,
                detection,
                camera,
                reference_pose,
                frames_used,
                events_used,
            ),
            Self::Quantized(dsi) => finalize_volume(
                dsi,
                detection,
                camera,
                reference_pose,
                frames_used,
                events_used,
            ),
        }
    }

    fn reset(&mut self) {
        match self {
            Self::Float(dsi) => dsi.reset(),
            Self::Quantized(dsi) => dsi.reset(),
        }
    }
}

/// Tree-reduces a set of shard tiles into `states[0]` and finalizes the
/// merged volume — the score-type-generic body of
/// [`ShardedBackend::retire_keyframe`], so a change to the reduction can
/// never silently miss one tile variant.
fn reduce_and_finalize<S: VoxelScore>(
    states: &mut [ShardState<S>],
    detection: &DetectionConfig,
    camera: &CameraModel,
    reference_pose: &Pose,
    frames_used: usize,
    events_used: usize,
) -> KeyframeReconstruction {
    {
        let mut tiles: Vec<&mut DsiVolume<S>> = states.iter_mut().map(|s| &mut s.tile).collect();
        DsiVolume::tree_reduce_refs(&mut tiles);
    }
    finalize_volume(
        &states[0].tile,
        detection,
        camera,
        reference_pose,
        frames_used,
        events_used,
    )
}

/// Resets every shard tile for the next key frame (reused, not
/// reallocated).
fn reset_tiles<S: VoxelScore>(states: &mut [ShardState<S>]) {
    for state in states {
        state.tile.reset();
    }
}

/// The sequential reformulated (Fig. 3 right) datapath behind the session
/// contract: streaming per-event distortion correction, pre-computed
/// `H_{Z0}` / `φ`, nearest or bilinear voting, optional Table 1
/// quantization — exactly the per-frame work of the seed
/// `EventorPipeline::reconstruct` loop.
#[derive(Debug)]
pub struct SoftwareBackend {
    camera: CameraModel,
    options: EventorOptions,
    detection: DetectionConfig,
    dsi: DsiStorage,
    // Scratch buffers reused across frames (cleared, never reallocated), so
    // the per-frame hot path allocates nothing — like the batch loop it
    // replaced, which built these buffers once per stream.
    corrected: Vec<Vec2>,
    transported: Vec<PackedCoord>,
    canonical_packed: Vec<PackedCoord>,
    canonical_float: Vec<Option<Vec2>>,
    vote_arena: VoteArena,
}

impl SoftwareBackend {
    /// Creates the backend, allocating its DSI.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations and
    /// [`EmvsError::Dsi`] when the DSI cannot be allocated.
    pub fn new(
        camera: CameraModel,
        config: &EmvsConfig,
        options: EventorOptions,
    ) -> Result<Self, EmvsError> {
        let planes = config.depth_planes()?;
        let width = camera.intrinsics.width as usize;
        let height = camera.intrinsics.height as usize;
        let dsi = DsiStorage::new(width, height, planes, &options)?;
        Ok(Self {
            camera,
            options,
            detection: config.detection,
            dsi,
            corrected: Vec::with_capacity(config.events_per_frame),
            transported: Vec::with_capacity(config.events_per_frame),
            canonical_packed: Vec::new(),
            canonical_float: Vec::new(),
            vote_arena: VoteArena::new(),
        })
    }

    /// The active reformulation options.
    pub fn options(&self) -> &EventorOptions {
        &self.options
    }

    /// Quantized FPGA datapath for one frame.
    fn process_frame_quantized(
        &mut self,
        events: &[PackedCoord],
        homography: &QuantizedHomography,
        coefficients: &QuantizedCoefficients,
        profile: &mut StageProfile,
    ) {
        let width = self.camera.intrinsics.width;
        let height = self.camera.intrinsics.height;
        // Canonical projection P{Z0} on PE_Z0 through the batched kernel
        // face (lane-parallel per the session's dispatch tier): the scratch
        // buffer keeps only the survivors of the projection-missing
        // judgement, densely, in input order — the same points the scalar
        // `homography.project` loop would keep (buffer taken so the borrow
        // doesn't alias the DSI votes below).
        let t = Instant::now();
        let mut canonical = std::mem::take(&mut self.canonical_packed);
        kernel::batch::project_z0_batch(&homography.raw_words(), events, &mut canonical);
        profile.add(Stage::CanonicalProjection, t.elapsed());

        // Proportional projection + vote generation + voting.
        let t = Instant::now();
        let n_planes = coefficients.len();
        match self.options.voting {
            VotingMode::Nearest => match &mut self.dsi {
                // The accelerator datapath: the cache-blocked batched vote
                // loop transfers every canonical point per plane and votes
                // straight into the u16 DSI slabs — raw words in, integer
                // slab indices out, no `f64` anywhere in the loop. The
                // plane-major order is exact (unit-vote saturation is
                // order-independent), and the DSI dimensions equal the
                // sensor dimensions by construction (`Self::new`).
                DsiStorage::Quantized(dsi) => {
                    dsi.vote_batch(&canonical, coefficients.words(), &mut self.vote_arena);
                }
                // Unreachable through the public options (quantize +
                // nearest always selects integer storage); kept as the
                // generic fallback.
                DsiStorage::Float(dsi) => {
                    for c in &canonical {
                        for i in 0..n_planes {
                            if let Some((x, y)) = coefficients
                                .transfer_nearest(*c, i, width, height)
                                .address()
                            {
                                dsi.vote_nearest(x as f64, y as f64, i, 1.0);
                            }
                        }
                    }
                }
            },
            VotingMode::Bilinear => {
                for c in &canonical {
                    for i in 0..n_planes {
                        let p = coefficients.transfer_subpixel(*c, i);
                        self.dsi.vote(p.x, p.y, i, VotingMode::Bilinear);
                    }
                }
            }
        }
        // The address-generation and vote stages are fused on the FPGA; their
        // combined cost is attributed to the proportional-projection stage,
        // with the DSI update counted under VoteDsi for profile compatibility.
        let elapsed = t.elapsed();
        profile.add(Stage::ProportionalProjection, elapsed / 2);
        profile.add(Stage::VoteDsi, elapsed - elapsed / 2);
        self.canonical_packed = canonical;
    }

    /// Full-precision datapath for one frame (used by the ablations that
    /// disable quantization).
    fn process_frame_float(
        &mut self,
        events: &[Vec2],
        geometry: &FrameGeometry,
        profile: &mut StageProfile,
    ) {
        let t = Instant::now();
        let mut canonical = std::mem::take(&mut self.canonical_float);
        canonical.clear();
        canonical.extend(events.iter().map(|&p| geometry.canonical(p)));
        profile.add(Stage::CanonicalProjection, t.elapsed());

        let t = Instant::now();
        let n_planes = geometry.num_planes();
        for c in canonical.iter().flatten() {
            for i in 0..n_planes {
                let p = geometry.transfer(*c, i);
                self.dsi.vote(p.x, p.y, i, self.options.voting);
            }
        }
        let elapsed = t.elapsed();
        profile.add(Stage::ProportionalProjection, elapsed / 2);
        profile.add(Stage::VoteDsi, elapsed - elapsed / 2);
        self.canonical_float = canonical;
    }
}

impl ExecutionBackend for SoftwareBackend {
    fn name(&self) -> &'static str {
        "software"
    }

    fn vote_frame(
        &mut self,
        work: &FrameWork<'_>,
        profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        // ➊ Streaming event distortion correction (rescheduled stage) and,
        //   under quantization, Q9.7 transport encoding. The scratch buffers
        //   are taken out of `self` for the duration of the frame so they can
        //   be passed to the `&mut self` datapath methods below.
        let t = Instant::now();
        let mut corrected = std::mem::take(&mut self.corrected);
        corrected.clear();
        corrected.extend(work.events.iter().map(|e| {
            self.camera
                .undistort_pixel(Vec2::new(e.x as f64, e.y as f64))
        }));
        let mut transported = std::mem::take(&mut self.transported);
        transported.clear();
        if self.options.quantize {
            transported.extend(corrected.iter().map(|&p| quantize_event_pixel(p)));
        }
        profile.add(Stage::DistortionCorrection, t.elapsed());

        // ➌ Quantize H_Z0 and φ (rescheduled: before the canonical
        //   projection).
        let t = Instant::now();
        let quantized = if self.options.quantize {
            Some((
                QuantizedHomography::from_homography(&work.geometry.homography),
                QuantizedCoefficients::from_coefficients(&work.geometry.coefficients),
            ))
        } else {
            None
        };
        profile.add(Stage::ComputeCoefficients, t.elapsed());

        // ➍ The FPGA datapath: canonical projection, proportional
        //   projection, vote generation and DSI voting.
        match &quantized {
            Some((qh, qphi)) => self.process_frame_quantized(&transported, qh, qphi, profile),
            None => self.process_frame_float(&corrected, work.geometry, profile),
        }
        self.corrected = corrected;
        self.transported = transported;
        Ok(())
    }

    fn retire_keyframe(
        &mut self,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        profile: &mut StageProfile,
    ) -> Result<KeyframeReconstruction, EmvsError> {
        let t = Instant::now();
        let reconstruction = self.dsi.finalize(
            &self.detection,
            &self.camera,
            reference_pose,
            frames_used,
            events_used,
        );
        profile.add(Stage::Detection, t.elapsed());
        let t = Instant::now();
        self.dsi.reset();
        profile.add(Stage::Merging, t.elapsed());
        Ok(reconstruction)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn export_vote_state(
        &mut self,
        _profile: &mut StageProfile,
    ) -> Result<BackendVoteState, EmvsError> {
        Ok(match &self.dsi {
            DsiStorage::Quantized(dsi) => BackendVoteState::Quantized(vec![dsi.clone()]),
            DsiStorage::Float(dsi) => BackendVoteState::Float(vec![dsi.clone()]),
        })
    }

    fn import_vote_state(
        &mut self,
        state: BackendVoteState,
        _profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        match (&mut self.dsi, state) {
            (DsiStorage::Quantized(dsi), BackendVoteState::Quantized(tiles)) => {
                import_vote_tiles(tiles, &mut [dsi], "software")
            }
            (DsiStorage::Float(dsi), BackendVoteState::Float(tiles)) => {
                import_vote_tiles(tiles, &mut [dsi], "software")
            }
            (DsiStorage::Quantized(_), BackendVoteState::Float(_)) => Err(EmvsError::Checkpoint {
                reason: "float vote state cannot restore into the quantized software datapath"
                    .into(),
            }),
            (DsiStorage::Float(_), BackendVoteState::Quantized(_)) => Err(EmvsError::Checkpoint {
                reason: "quantized vote state cannot restore into the float software datapath"
                    .into(),
            }),
        }
    }
}

/// Per-shard tiles of the sharded backend, on the score type the options
/// select.
#[derive(Debug)]
enum ShardTiles {
    Quantized(Vec<ShardState<u16>>),
    Float(Vec<ShardState<f32>>),
}

/// The parallel sharded voting engine behind the session contract: frames
/// buffer (corrected/transported events plus hoisted per-frame parameters)
/// while their key frame is open, and retirement votes the key frame's
/// packets round-robin over worker shards into private DSI tiles, merged
/// with a deterministic tree reduction.
///
/// For the accelerator datapath (`u16` scores, nearest voting) the output is
/// bit-identical to [`SoftwareBackend`] for every shard count; see
/// `docs/ARCHITECTURE.md` §5.
#[derive(Debug)]
pub struct ShardedBackend {
    camera: CameraModel,
    options: EventorOptions,
    detection: DetectionConfig,
    parallel: ParallelConfig,
    tiles: ShardTiles,
    // Buffered state of the open key frame.
    buffered_events: usize,
    frame_lens: Vec<usize>,
    transported: Vec<PackedCoord>,
    corrected: Vec<Vec2>,
    params: Vec<QuantizedFrameParams>,
    geometries: Vec<FrameGeometry>,
}

impl ShardedBackend {
    /// Creates the backend, allocating one private DSI tile per shard.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations and
    /// [`EmvsError::Dsi`] when the tiles cannot be allocated.
    pub fn new(
        camera: CameraModel,
        config: &EmvsConfig,
        options: EventorOptions,
        parallel: ParallelConfig,
    ) -> Result<Self, EmvsError> {
        let planes = config.depth_planes()?;
        let width = camera.intrinsics.width as usize;
        let height = camera.intrinsics.height as usize;
        let shards = parallel.shards();
        let tiles = if options.quantize && options.voting == VotingMode::Nearest {
            ShardTiles::Quantized(
                (0..shards)
                    .map(|_| {
                        DsiVolume::new(width, height, planes.clone())
                            .map(|tile| ShardState::new(tile, parallel.packet_events()))
                    })
                    .collect::<Result<_, _>>()?,
            )
        } else {
            ShardTiles::Float(
                (0..shards)
                    .map(|_| {
                        DsiVolume::new(width, height, planes.clone())
                            .map(|tile| ShardState::new(tile, parallel.packet_events()))
                    })
                    .collect::<Result<_, _>>()?,
            )
        };
        Ok(Self {
            camera,
            options,
            detection: config.detection,
            parallel,
            tiles,
            buffered_events: 0,
            frame_lens: Vec::new(),
            transported: Vec::new(),
            corrected: Vec::new(),
            params: Vec::new(),
            geometries: Vec::new(),
        })
    }

    /// The parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Splits the buffered frames into vote packets addressing the
    /// key-frame-local concatenated event buffer.
    fn packets(&self) -> Vec<VotePacket> {
        let mut packets = Vec::new();
        let mut start = 0usize;
        for (i, &len) in self.frame_lens.iter().enumerate() {
            packetize_frame(
                i,
                start..start + len,
                self.parallel.packet_events(),
                &mut packets,
            );
            start += len;
        }
        packets
    }

    /// Votes every buffered frame into the shard tiles (packet round-robin
    /// over the fused kernels) and clears the key-frame buffer. Called at
    /// retirement and whenever the buffer crosses [`ENGINE_SPILL_EVENTS`],
    /// so an arbitrarily long key frame never buffers unboundedly — only
    /// the fixed-size tiles accumulate. Spilling at any boundary is safe:
    /// nearest voting is order-independent, and a single-shard partition
    /// keeps the exact sequential packet order across spills.
    fn vote_buffered(&mut self, profile: &mut StageProfile) {
        if self.frame_lens.is_empty() {
            return;
        }
        let t = Instant::now();
        let packets = self.packets();
        let shards = self.parallel.shards();
        match &mut self.tiles {
            ShardTiles::Quantized(states) => {
                let params = &self.params;
                let transported = &self.transported;
                run_sharded(states, |shard, state| {
                    for packet in shard_packets(&packets, shard, shards) {
                        vote_packet_quantized_nearest(
                            state,
                            &params[packet.frame],
                            &transported[packet.range.clone()],
                        );
                    }
                });
            }
            ShardTiles::Float(states) => {
                if self.options.quantize {
                    let params = &self.params;
                    let transported = &self.transported;
                    run_sharded(states, |shard, state| {
                        for packet in shard_packets(&packets, shard, shards) {
                            vote_packet_quantized_bilinear(
                                state,
                                &params[packet.frame],
                                &transported[packet.range.clone()],
                            );
                        }
                    });
                } else {
                    let geometries = &self.geometries;
                    let corrected = &self.corrected;
                    let voting = self.options.voting;
                    run_sharded(states, |shard, state| {
                        for packet in shard_packets(&packets, shard, shards) {
                            vote_packet_float(
                                state,
                                &geometries[packet.frame],
                                &corrected[packet.range.clone()],
                                voting,
                            );
                        }
                    });
                }
            }
        }
        self.buffered_events = 0;
        self.frame_lens.clear();
        self.transported.clear();
        self.corrected.clear();
        self.params.clear();
        self.geometries.clear();
        // The fused vote kernel's wall time cannot be split into the paper's
        // canonical/proportional/vote stages once fused.
        let fused = t.elapsed() / 3;
        profile.add(Stage::CanonicalProjection, fused);
        profile.add(Stage::ProportionalProjection, fused);
        profile.add(Stage::VoteDsi, fused);
    }
}

impl ExecutionBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn vote_frame(
        &mut self,
        work: &FrameWork<'_>,
        profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        let shards = self.parallel.shards();
        // ➊ Streaming distortion correction, chunked over the shards
        //   (per-event pure map: bit-identical for any shard count).
        let t = Instant::now();
        let corrected: Vec<Vec2> = parallel_map(work.events, shards, |e| {
            self.camera
                .undistort_pixel(Vec2::new(e.x as f64, e.y as f64))
        });
        profile.add(Stage::DistortionCorrection, t.elapsed());

        // ➋ Transport-encode (chunked over the shards, like the distortion
        //   correction above — another per-event pure map) and hoist the
        //   per-frame parameter block (Q11.21 → f64 decode out of the
        //   per-event hot loop).
        let t = Instant::now();
        if self.options.quantize {
            let transported = parallel_map(&corrected, shards, |&p| quantize_event_pixel(p));
            self.transported.extend_from_slice(&transported);
            self.params
                .push(QuantizedFrameParams::from_geometry(work.geometry));
        } else {
            self.corrected.extend_from_slice(&corrected);
            self.geometries.push(work.geometry.clone());
        }
        self.frame_lens.push(work.events.len());
        self.buffered_events += work.events.len();
        profile.add(Stage::ComputeCoefficients, t.elapsed());
        if self.buffered_events >= ENGINE_SPILL_EVENTS {
            self.vote_buffered(profile);
        }
        Ok(())
    }

    fn retire_keyframe(
        &mut self,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        profile: &mut StageProfile,
    ) -> Result<KeyframeReconstruction, EmvsError> {
        self.vote_buffered(profile);
        let t = Instant::now();
        let reconstruction = match &mut self.tiles {
            ShardTiles::Quantized(states) => reduce_and_finalize(
                states,
                &self.detection,
                &self.camera,
                reference_pose,
                frames_used,
                events_used,
            ),
            ShardTiles::Float(states) => reduce_and_finalize(
                states,
                &self.detection,
                &self.camera,
                reference_pose,
                frames_used,
                events_used,
            ),
        };
        profile.add(Stage::Detection, t.elapsed());

        let t = Instant::now();
        match &mut self.tiles {
            ShardTiles::Quantized(states) => reset_tiles(states),
            ShardTiles::Float(states) => reset_tiles(states),
        }
        profile.add(Stage::Merging, t.elapsed());
        Ok(reconstruction)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn export_vote_state(
        &mut self,
        profile: &mut StageProfile,
    ) -> Result<BackendVoteState, EmvsError> {
        // Flushing the buffered key-frame work is a spill boundary, already
        // proven safe at any point of a key frame, so the tiles alone carry
        // the open key frame's state.
        self.vote_buffered(profile);
        Ok(match &self.tiles {
            ShardTiles::Quantized(states) => {
                BackendVoteState::Quantized(states.iter().map(|s| s.tile.clone()).collect())
            }
            ShardTiles::Float(states) => {
                BackendVoteState::Float(states.iter().map(|s| s.tile.clone()).collect())
            }
        })
    }

    fn import_vote_state(
        &mut self,
        state: BackendVoteState,
        _profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        self.buffered_events = 0;
        self.frame_lens.clear();
        self.transported.clear();
        self.corrected.clear();
        self.params.clear();
        self.geometries.clear();
        match (&mut self.tiles, state) {
            (ShardTiles::Quantized(states), BackendVoteState::Quantized(tiles)) => {
                let mut targets: Vec<&mut DsiVolume<u16>> =
                    states.iter_mut().map(|s| &mut s.tile).collect();
                import_vote_tiles(tiles, &mut targets, "sharded")
            }
            (ShardTiles::Float(states), BackendVoteState::Float(tiles)) => {
                let mut targets: Vec<&mut DsiVolume<f32>> =
                    states.iter_mut().map(|s| &mut s.tile).collect();
                import_vote_tiles(tiles, &mut targets, "sharded")
            }
            (ShardTiles::Quantized(_), BackendVoteState::Float(_)) => Err(EmvsError::Checkpoint {
                reason: "float vote state cannot restore into the quantized sharded engine".into(),
            }),
            (ShardTiles::Float(_), BackendVoteState::Quantized(_)) => Err(EmvsError::Checkpoint {
                reason: "quantized vote state cannot restore into the float sharded engine".into(),
            }),
        }
    }
}

/// Backend selection recorded by the builder until [`SessionBuilder::build`].
#[derive(Debug)]
enum BackendChoice {
    Software(EventorOptions),
    Sharded(EventorOptions, ParallelConfig),
    Cosim(AcceleratorConfig, ParallelConfig),
    Custom(Box<dyn ExecutionBackend>),
}

/// Builder of an [`EventorSession`]: one validated configuration path for
/// every backend.
///
/// # Examples
///
/// A runnable, compile-checked builder walkthrough (every combinator):
///
/// ```
/// use eventor_core::{EventorOptions, EventorSession, ParallelConfig};
/// use eventor_emvs::EmvsConfig;
/// use eventor_geom::CameraModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let session = EventorSession::builder(CameraModel::davis240_ideal(), EmvsConfig::default())
///     .sharded(EventorOptions::accelerator(), ParallelConfig::with_shards(4))
///     .max_pending_events(64 * 1024)
///     .build()?;
/// assert_eq!(session.backend_name(), "sharded");
///
/// // The default backend is the sequential software datapath.
/// let session =
///     EventorSession::builder(CameraModel::davis240_ideal(), EmvsConfig::default()).build()?;
/// assert_eq!(session.backend_name(), "software");
///
/// // Invalid configurations fail at `build()`, through the one shared
/// // validation path.
/// let bad = EmvsConfig {
///     num_depth_planes: 1,
///     ..EmvsConfig::default()
/// };
/// assert!(EventorSession::builder(CameraModel::davis240_ideal(), bad)
///     .build()
///     .is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    camera: CameraModel,
    config: EmvsConfig,
    backend: BackendChoice,
    fusion: Option<GlobalMapConfig>,
    max_pending_events: usize,
}

impl SessionBuilder {
    /// Selects the sequential software backend (default:
    /// [`EventorOptions::accelerator`]).
    pub fn software(mut self, options: EventorOptions) -> Self {
        self.backend = BackendChoice::Software(options);
        self
    }

    /// Selects the parallel sharded voting engine.
    pub fn sharded(mut self, options: EventorOptions, parallel: ParallelConfig) -> Self {
        self.backend = BackendChoice::Sharded(options, parallel);
        self
    }

    /// Selects the co-simulated `eventor-hwsim` device. The accelerator
    /// configuration is aligned with the EMVS configuration at build time
    /// (frame size, plane count, sensor resolution).
    pub fn cosim(mut self, accelerator: AcceleratorConfig) -> Self {
        self.backend = BackendChoice::Cosim(accelerator, ParallelConfig::sequential());
        self
    }

    /// Selects the co-simulated device with PS-side (firmware) stages
    /// chunked over worker shards.
    pub fn cosim_with_parallelism(
        mut self,
        accelerator: AcceleratorConfig,
        parallel: ParallelConfig,
    ) -> Self {
        self.backend = BackendChoice::Cosim(accelerator, parallel);
        self
    }

    /// Installs a custom execution backend.
    pub fn custom_backend(mut self, backend: Box<dyn ExecutionBackend>) -> Self {
        self.backend = BackendChoice::Custom(backend);
        self
    }

    /// Fuses every finished key frame into an incremental `eventor-map`
    /// [`GlobalMap`] and emits [`SessionEvent::MapFused`] per key frame.
    pub fn fuse_into_map(mut self, config: GlobalMapConfig) -> Self {
        self.fusion = Some(config);
        self
    }

    /// Bounds the session's pending-event buffer (default
    /// [`DEFAULT_MAX_PENDING_EVENTS`]; clamped to at least one frame).
    pub fn max_pending_events(mut self, cap: usize) -> Self {
        self.max_pending_events = cap;
        self
    }

    /// Builds the configured backend (the shared construction path of
    /// [`Self::build`] and [`Self::restore`]).
    fn build_backend(
        camera: CameraModel,
        config: &EmvsConfig,
        choice: BackendChoice,
    ) -> Result<Box<dyn ExecutionBackend>, EmvsError> {
        Ok(match choice {
            BackendChoice::Software(options) => {
                Box::new(SoftwareBackend::new(camera, config, options)?)
            }
            BackendChoice::Sharded(options, parallel) => {
                Box::new(ShardedBackend::new(camera, config, options, parallel)?)
            }
            BackendChoice::Cosim(accelerator, parallel) => {
                Box::new(CosimBackend::new(camera, config, accelerator, parallel)?)
            }
            BackendChoice::Custom(backend) => backend,
        })
    }

    /// Rebuilds a mid-flight session from a [`SessionCheckpoint`] on the
    /// backend this builder selected — which need not be the backend kind
    /// that produced the checkpoint (the vote state migrates whenever the
    /// score types are compatible; see `docs/ARCHITECTURE.md` §3).
    ///
    /// The builder's camera and configuration must equal the checkpointed
    /// ones bit-for-bit: a restored session that silently reinterpreted the
    /// vote state under different geometry would be a wrong answer, not a
    /// resumed one. Use [`SessionCheckpoint::camera`] /
    /// [`SessionCheckpoint::config`] to construct a matching builder.
    ///
    /// [`SessionCheckpoint`]: crate::SessionCheckpoint
    /// [`SessionCheckpoint::camera`]: crate::SessionCheckpoint::camera
    /// [`SessionCheckpoint::config`]: crate::SessionCheckpoint::config
    ///
    /// # Errors
    ///
    /// [`EmvsError::Checkpoint`] when the builder disagrees with the
    /// checkpoint (camera, configuration, fusion enabled, incompatible vote
    /// state) or the checkpoint is internally inconsistent, plus the
    /// [`Self::build`] failure modes.
    pub fn restore(
        self,
        checkpoint: crate::SessionCheckpoint,
    ) -> Result<EventorSession, EmvsError> {
        if self.fusion.is_some() {
            return Err(EmvsError::Checkpoint {
                reason: "sessions with incremental map fusion cannot be restored".into(),
            });
        }
        if self.camera != *checkpoint.camera() {
            return Err(EmvsError::Checkpoint {
                reason: "builder camera model differs from the checkpointed one".into(),
            });
        }
        if self.config != *checkpoint.config() {
            return Err(EmvsError::Checkpoint {
                reason: "builder configuration differs from the checkpointed one".into(),
            });
        }
        let backend = Self::build_backend(self.camera, &self.config, self.backend)?;
        // The checkpoint carries the pending-buffer cap; the builder's
        // (possibly default) cap must not override it.
        let driver = SessionDriver::restore(backend, checkpoint.into_driver())?;
        Ok(EventorSession {
            driver,
            fusion: None,
            fused_keyframes: 0,
        })
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations
    /// (via [`EmvsConfig::validate`] — the single validation path) or an
    /// invalid fusion-map resolution, and [`EmvsError::Dsi`] when backend
    /// state cannot be allocated.
    pub fn build(self) -> Result<EventorSession, EmvsError> {
        // Validation happens once, inside the backend constructor and
        // `SessionDriver::new` (both independently-constructible public
        // APIs) — no extra copy of the checks here.
        let backend = Self::build_backend(self.camera, &self.config, self.backend)?;
        let driver = SessionDriver::new(self.camera, self.config, backend)?
            .with_max_pending_events(self.max_pending_events);
        let fusion = match self.fusion {
            Some(config) => Some(
                GlobalMap::new(config).map_err(|e| EmvsError::InvalidConfig {
                    reason: format!("fusion map: {e}"),
                })?,
            ),
            None => None,
        };
        Ok(EventorSession {
            driver,
            fusion,
            fused_keyframes: 0,
        })
    }
}

/// Everything a finished session produced.
#[derive(Debug)]
pub struct SessionOutput {
    /// The reconstruction, in the same shape the batch `reconstruct()` entry
    /// points return.
    pub output: EmvsOutput,
    /// Lifecycle events emitted by the final flush (key frames retired at
    /// `finish` time that were never polled).
    pub events: Vec<SessionEvent>,
    /// The incremental global map, when fusion was enabled.
    pub fused_map: Option<GlobalMap>,
    /// The accelerator activity report, when the cosim backend ran.
    pub cosim_report: Option<CosimReport>,
}

/// A streaming reconstruction session over a pluggable execution backend:
/// push-based incremental ingestion (poses + event packets), lifecycle
/// notifications via [`poll`](Self::poll), bounded in-flight memory with
/// backpressure, and optional incremental map fusion.
///
/// # Examples
///
/// The full push/poll/finish quickstart, runnable as a doctest (a reduced
/// synthetic sequence stands in for a live sensor + odometry feed):
///
/// ```
/// use eventor_core::{EventorOptions, EventorSession, SessionEvent};
/// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
/// use eventor_core::config_for_sequence;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
/// let mut session = EventorSession::builder(seq.camera, config_for_sequence(&seq, 50))
///     .software(EventorOptions::accelerator())
///     .build()?;
/// for sample in seq.trajectory.iter() {
///     session.push_pose(sample.timestamp, sample.pose)?;
/// }
/// let mut ready = 0;
/// for packet in seq.events.packets(4096) {
///     session.push_events(packet)?;
///     for event in session.poll()? {
///         if let SessionEvent::KeyframeReady { index, .. } = event {
///             println!("keyframe {index} ready");
///             ready += 1;
///         }
///     }
/// }
/// let finished = session.finish()?;
/// assert!(!finished.output.keyframes.is_empty());
/// assert!(ready <= finished.output.keyframes.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventorSession {
    driver: SessionDriver<Box<dyn ExecutionBackend>>,
    fusion: Option<GlobalMap>,
    fused_keyframes: usize,
}

impl EventorSession {
    /// Starts building a session for the given camera and configuration
    /// (software accelerator backend unless overridden).
    pub fn builder(camera: CameraModel, config: EmvsConfig) -> SessionBuilder {
        SessionBuilder {
            camera,
            config,
            backend: BackendChoice::Software(EventorOptions::accelerator()),
            fusion: None,
            max_pending_events: DEFAULT_MAX_PENDING_EVENTS,
        }
    }

    /// Short identifier of the active backend.
    pub fn backend_name(&self) -> &'static str {
        self.driver.backend().name()
    }

    /// Whether incremental map fusion is attached (fused sessions cannot be
    /// checkpointed).
    pub(crate) fn fusion_enabled(&self) -> bool {
        self.fusion.is_some()
    }

    /// Mutable driver access for the checkpoint face (`crate::checkpoint`).
    pub(crate) fn driver_mut(&mut self) -> &mut SessionDriver<Box<dyn ExecutionBackend>> {
        &mut self.driver
    }

    /// The EMVS configuration.
    pub fn config(&self) -> &EmvsConfig {
        self.driver.config()
    }

    /// Events buffered but not yet aggregated into a processed frame.
    pub fn pending_events(&self) -> usize {
        self.driver.pending_events()
    }

    /// Key frames retired so far.
    pub fn keyframes(&self) -> &[KeyframeReconstruction] {
        self.driver.keyframes()
    }

    /// The per-stage runtime profile accumulated so far.
    pub fn profile(&self) -> &StageProfile {
        self.driver.profile()
    }

    /// The incremental global map (when fusion is enabled).
    pub fn fused_map(&self) -> Option<&GlobalMap> {
        self.fusion.as_ref()
    }

    /// The accelerator activity report accumulated so far (cosim backend
    /// only).
    pub fn cosim_report(&self) -> Option<CosimReport> {
        self.driver
            .backend()
            .as_any()
            .and_then(|a| a.downcast_ref::<CosimBackend>())
            .map(|b| b.report())
    }

    /// Appends one trajectory sample (strictly increasing timestamps).
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionDriver::push_pose`].
    pub fn push_pose(&mut self, timestamp: f64, pose: Pose) -> Result<(), EmvsError> {
        self.driver.push_pose(timestamp, pose)
    }

    /// Appends every sample of a trajectory.
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionDriver::push_trajectory`].
    pub fn push_trajectory(&mut self, trajectory: &Trajectory) -> Result<(), EmvsError> {
        self.driver.push_trajectory(trajectory)
    }

    /// Pushes a packet of time-ordered events (any size), returning the
    /// number of events ingested — `write(2)`-style short-write semantics
    /// when the bounded buffer fills mid-push (see
    /// [`SessionDriver::push_events`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionDriver::push_events`] —
    /// [`EmvsError::Backpressure`] when the buffer is full and nothing could
    /// be accepted, [`EmvsError::OutOfOrder`] for non-monotonic events.
    pub fn push_events(&mut self, events: &[Event]) -> Result<usize, EmvsError> {
        self.driver.push_events(events)
    }

    /// [`Self::push_events`] on an [`EventStream`] packet.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::push_events`].
    pub fn push_packet(&mut self, packet: &EventStream) -> Result<usize, EmvsError> {
        self.driver.push_packet(packet)
    }

    /// Drops every buffered (unprocessed) event and returns how many were
    /// discarded — the explicit escape hatch for events whose poses can
    /// never arrive (see [`SessionDriver::discard_pending`]).
    pub fn discard_pending(&mut self) -> usize {
        self.driver.discard_pending()
    }

    /// Processes **all** buffered frames (including the trailing partial
    /// frame) and retires the final key frame, without consuming the
    /// session.
    ///
    /// Call this before [`Self::finish`] when a flush failure must be
    /// recoverable: on error the session — retired key frames, fused map,
    /// backend state — stays intact, so the caller can push the missing
    /// poses or [`Self::discard_pending`] and try again. Lifecycle events
    /// from the flush arrive with the next [`Self::poll`] or in
    /// [`SessionOutput::events`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionDriver::flush`].
    pub fn flush(&mut self) -> Result<(), EmvsError> {
        self.driver.flush()
    }

    /// Processes every ready frame and returns the lifecycle events emitted
    /// since the last poll (including [`SessionEvent::MapFused`] when fusion
    /// is enabled).
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionDriver::poll`].
    pub fn poll(&mut self) -> Result<Vec<SessionEvent>, EmvsError> {
        let mut events = self.driver.poll()?;
        self.fuse_new(&mut events);
        Ok(events)
    }

    /// Flushes the trailing partial frame, retires the final key frame and
    /// returns everything the session produced.
    ///
    /// # Errors
    ///
    /// [`EmvsError::NoEvents`] when no event was ever pushed, plus the
    /// [`SessionDriver::flush`] failure modes.
    pub fn finish(mut self) -> Result<SessionOutput, EmvsError> {
        self.driver.flush()?;
        let mut events = self.driver.take_events();
        self.fuse_new(&mut events);
        let fused_map = self.fusion.take();
        let (result, backend) = self.driver.finish_with_backend();
        let output = result?;
        let cosim_report = backend
            .as_any()
            .and_then(|a| a.downcast_ref::<CosimBackend>())
            .map(|b| b.report());
        Ok(SessionOutput {
            output,
            events,
            fused_map,
            cosim_report,
        })
    }

    /// Fuses any not-yet-fused retired key frames into the attached map,
    /// inserting each `MapFused` event directly after its key frame's
    /// `KeyframeReady` so the per-key-frame lifecycle order of Contract 6.2
    /// (`docs/ARCHITECTURE.md` §6) holds even when one poll retires several
    /// key frames.
    fn fuse_new(&mut self, events: &mut Vec<SessionEvent>) {
        let Some(map) = self.fusion.as_mut() else {
            return;
        };
        let keyframes = self.driver.keyframes();
        if self.fused_keyframes == keyframes.len() {
            return;
        }
        let mut fuse = |index: usize, out: &mut Vec<SessionEvent>| {
            let reconstruction = &keyframes[index];
            let delta =
                map.fuse_incremental(&reconstruction.local_cloud, &reconstruction.reference_pose);
            out.push(SessionEvent::MapFused {
                index,
                points: delta.points,
                new_voxels: delta.new_voxels,
            });
        };
        let mut out = Vec::with_capacity(events.len() + keyframes.len() - self.fused_keyframes);
        for event in events.drain(..) {
            let ready_index = match &event {
                SessionEvent::KeyframeReady { index, .. } => Some(*index),
                _ => None,
            };
            out.push(event);
            if let Some(index) = ready_index {
                if index == self.fused_keyframes {
                    fuse(index, &mut out);
                    self.fused_keyframes += 1;
                }
            }
        }
        // Catch-up for key frames whose KeyframeReady was consumed earlier
        // (defensive; cannot happen through the public API).
        while self.fused_keyframes < keyframes.len() {
            fuse(self.fused_keyframes, &mut out);
            self.fused_keyframes += 1;
        }
        *events = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_for_sequence;
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

    fn sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    #[test]
    fn builder_validates_through_the_shared_path() {
        let cam = CameraModel::davis240_ideal();
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(EventorSession::builder(cam, bad).build().is_err());
        let session = EventorSession::builder(cam, EmvsConfig::default())
            .build()
            .unwrap();
        assert_eq!(session.backend_name(), "software");
    }

    #[test]
    fn all_builtin_backends_build() {
        let cam = CameraModel::davis240_ideal();
        let config = EmvsConfig::default();
        for (builder, name) in [
            (
                EventorSession::builder(cam, config.clone()).software(EventorOptions::exact()),
                "software",
            ),
            (
                EventorSession::builder(cam, config.clone()).sharded(
                    EventorOptions::accelerator(),
                    ParallelConfig::with_shards(2),
                ),
                "sharded",
            ),
            (
                EventorSession::builder(cam, config.clone()).cosim(AcceleratorConfig::default()),
                "cosim",
            ),
        ] {
            assert_eq!(builder.build().unwrap().backend_name(), name);
        }
    }

    #[test]
    fn session_with_fusion_builds_a_global_map() {
        let seq = sequence();
        let config = config_for_sequence(&seq, 60);
        let mut session = EventorSession::builder(seq.camera, config)
            .software(EventorOptions::accelerator())
            .fuse_into_map(GlobalMapConfig::default())
            .build()
            .unwrap();
        session.push_trajectory(&seq.trajectory).unwrap();
        session.push_events(seq.events.as_slice()).unwrap();
        let finished = session.finish().unwrap();
        let map = finished.fused_map.expect("fusion was enabled");
        assert_eq!(map.num_keyframes(), finished.output.keyframes.len());
        assert!(finished
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::MapFused { .. })));
        assert!(map.statistics().map_points > 0);
    }

    #[test]
    fn cosim_session_exposes_its_report() {
        let seq = sequence();
        let config = config_for_sequence(&seq, 60);
        let mut session = EventorSession::builder(seq.camera, config)
            .cosim(AcceleratorConfig::default())
            .build()
            .unwrap();
        session.push_trajectory(&seq.trajectory).unwrap();
        session.push_events(seq.events.as_slice()).unwrap();
        session.poll().unwrap();
        let report = session.cosim_report().expect("cosim backend");
        assert!(report.frames > 0);
        let finished = session.finish().unwrap();
        let report = finished.cosim_report.expect("cosim backend");
        assert_eq!(report.events_in, finished.output.profile.events_processed);
        assert!(finished.fused_map.is_none());
    }
}
