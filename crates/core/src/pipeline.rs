//! The Eventor pipeline: the hardware-friendly **reformulated** EMVS dataflow
//! of Fig. 3 (right).
//!
//! Differences from the baseline [`eventor_emvs::EmvsMapper`]:
//!
//! * **Rescheduling** — event distortion correction runs per event *before*
//!   aggregation (streaming), and the proportional back-projection
//!   coefficients `φ` are pre-computed (together with `H_{Z0}`) before the
//!   canonical projection so the four hot sub-tasks can run back-to-back on
//!   the FPGA.
//! * **Approximate computing** — nearest voting instead of bilinear voting.
//! * **Hybrid quantization** — Table 1 fixed-point formats on every datum
//!   crossing the FPGA datapath, with 16-bit integer DSI scores.
//!
//! Both approximations can be toggled independently through
//! [`EventorOptions`], which is what the Fig. 4a / Fig. 4b / Fig. 7a
//! ablations sweep.

use crate::parallel::{
    parallel_map, plan_segments, run_sharded, shard_packets, vote_packet_float,
    vote_packet_quantized_bilinear, vote_packet_quantized_nearest, KeyframeSegment, ParallelConfig,
    QuantizedFrameParams, ShardState,
};
use crate::quantized::{quantize_event_pixel, QuantizedCoefficients, QuantizedHomography};
use eventor_dsi::{
    detect_structure, DepthPlanes, DetectionConfig, DsiVolume, PointCloud, VoxelScore,
};
use eventor_emvs::{
    EmvsConfig, EmvsError, EmvsOutput, FrameGeometry, KeyframeReconstruction, KeyframeSelector,
    Stage, StageProfile, VotingMode,
};
use eventor_events::{aggregate, EventStream, VotePacket};
use eventor_fixed::PackedCoord;
use eventor_geom::{CameraModel, Pose, Trajectory, Vec2};
use std::time::Instant;

/// Reformulation/approximation switches of the Eventor datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventorOptions {
    /// DSI voting mode (the accelerator uses nearest voting).
    pub voting: VotingMode,
    /// Apply the Table 1 hybrid fixed-point quantization.
    pub quantize: bool,
}

impl Default for EventorOptions {
    fn default() -> Self {
        Self {
            voting: VotingMode::Nearest,
            quantize: true,
        }
    }
}

impl EventorOptions {
    /// The full Eventor datapath (nearest voting + quantization), as deployed
    /// on the FPGA.
    pub fn accelerator() -> Self {
        Self::default()
    }

    /// Nearest voting only (Fig. 4a ablation).
    pub fn nearest_only() -> Self {
        Self {
            voting: VotingMode::Nearest,
            quantize: false,
        }
    }

    /// Quantization only (Fig. 4b ablation).
    pub fn quantized_only() -> Self {
        Self {
            voting: VotingMode::Bilinear,
            quantize: true,
        }
    }

    /// No approximation at all (matches the baseline mapper; useful for
    /// validating the rescheduled dataflow in isolation).
    pub fn exact() -> Self {
        Self {
            voting: VotingMode::Bilinear,
            quantize: false,
        }
    }
}

/// DSI storage used by the pipeline: 16-bit integer scores for the quantized
/// nearest-voting datapath, `f32` otherwise.
#[derive(Debug, Clone)]
enum DsiStorage {
    Float(DsiVolume<f32>),
    Quantized(DsiVolume<u16>),
}

impl DsiStorage {
    fn new(
        width: usize,
        height: usize,
        planes: DepthPlanes,
        options: &EventorOptions,
    ) -> Result<Self, EmvsError> {
        if options.quantize && options.voting == VotingMode::Nearest {
            Ok(Self::Quantized(DsiVolume::new(width, height, planes)?))
        } else {
            Ok(Self::Float(DsiVolume::new(width, height, planes)?))
        }
    }

    fn vote(&mut self, x: f64, y: f64, plane: usize, voting: VotingMode) {
        match (self, voting) {
            (Self::Float(dsi), VotingMode::Bilinear) => dsi.vote_bilinear(x, y, plane, 1.0),
            (Self::Float(dsi), VotingMode::Nearest) => dsi.vote_nearest(x, y, plane, 1.0),
            (Self::Quantized(dsi), VotingMode::Bilinear) => dsi.vote_bilinear(x, y, plane, 1.0),
            (Self::Quantized(dsi), VotingMode::Nearest) => dsi.vote_nearest(x, y, plane, 1.0),
        }
    }

    fn detect(&self, config: &DetectionConfig) -> eventor_dsi::DepthMap {
        match self {
            Self::Float(dsi) => detect_structure(dsi, config),
            Self::Quantized(dsi) => detect_structure(dsi, config),
        }
    }

    fn reset(&mut self) {
        match self {
            Self::Float(dsi) => dsi.reset(),
            Self::Quantized(dsi) => dsi.reset(),
        }
    }

    fn votes_cast(&self) -> u64 {
        match self {
            Self::Float(dsi) => dsi.votes_cast(),
            Self::Quantized(dsi) => dsi.votes_cast(),
        }
    }
}

/// The Eventor reformulated EMVS pipeline.
///
/// # Examples
///
/// ```no_run
/// use eventor_core::{EventorOptions, EventorPipeline};
/// use eventor_emvs::EmvsConfig;
/// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
/// let config = EmvsConfig::default().with_depth_range(seq.depth_range.0, seq.depth_range.1);
/// let pipeline = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator())?;
/// let output = pipeline.reconstruct(&seq.events, &seq.trajectory)?;
/// println!("{} key frames", output.keyframes.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventorPipeline {
    camera: CameraModel,
    config: EmvsConfig,
    options: EventorOptions,
    parallel: ParallelConfig,
}

impl EventorPipeline {
    /// Creates a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations (same
    /// contract as [`eventor_emvs::EmvsMapper::new`]).
    pub fn new(
        camera: CameraModel,
        config: EmvsConfig,
        options: EventorOptions,
    ) -> Result<Self, EmvsError> {
        if config.events_per_frame == 0 {
            return Err(EmvsError::InvalidConfig {
                reason: "events_per_frame must be positive".into(),
            });
        }
        if config.num_depth_planes < 2 {
            return Err(EmvsError::InvalidConfig {
                reason: "need at least two depth planes".into(),
            });
        }
        if config.depth_range.0 <= 0.0 || config.depth_range.1 <= config.depth_range.0 {
            return Err(EmvsError::InvalidConfig {
                reason: format!("invalid depth range {:?}", config.depth_range),
            });
        }
        Ok(Self {
            camera,
            config,
            options,
            parallel: ParallelConfig::sequential(),
        })
    }

    /// Enables the parallel sharded voting engine.
    ///
    /// With [`ParallelConfig::sequential`] (the default) the original
    /// single-threaded golden path runs unchanged. With more than one shard,
    /// [`reconstruct`](Self::reconstruct) plans the stream into key-frame
    /// segments, distributes vote packets round-robin over worker shards
    /// voting into private DSI tiles, and merges the tiles with a
    /// deterministic tree reduction (see [`crate::parallel`]). For the
    /// accelerator datapath ([`EventorOptions::accelerator`]) the output is
    /// bit-identical to the sequential result for every shard count.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use eventor_core::{EventorOptions, EventorPipeline, ParallelConfig};
    /// use eventor_emvs::EmvsConfig;
    /// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let seq = SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())?;
    /// let config = EmvsConfig::default().with_depth_range(seq.depth_range.0, seq.depth_range.1);
    /// let pipeline = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator())?
    ///     .with_parallelism(ParallelConfig::auto());
    /// let output = pipeline.reconstruct(&seq.events, &seq.trajectory)?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The active reformulation options.
    pub fn options(&self) -> &EventorOptions {
        &self.options
    }

    /// The EMVS configuration.
    pub fn config(&self) -> &EmvsConfig {
        &self.config
    }

    /// The active parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Runs the reformulated reconstruction.
    ///
    /// # Errors
    ///
    /// Same error contract as [`eventor_emvs::EmvsMapper::reconstruct`].
    pub fn reconstruct(
        &self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        if events.is_empty() {
            return Err(EmvsError::NoEvents);
        }
        if self.parallel.is_engine() {
            return self.reconstruct_parallel(events, trajectory);
        }
        let mut profile = StageProfile::new();

        // ➊ Streaming event distortion correction, *before* aggregation
        //   (rescheduled stage).
        let t = Instant::now();
        let corrected: Vec<Vec2> = events
            .iter()
            .map(|e| {
                self.camera
                    .undistort_pixel(Vec2::new(e.x as f64, e.y as f64))
            })
            .collect();
        // The corrected coordinates are what the DMA ships to the FPGA; under
        // quantization they are stored as packed Q9.7 pairs.
        let transported: Vec<PackedCoord> = if self.options.quantize {
            corrected.iter().map(|&p| quantize_event_pixel(p)).collect()
        } else {
            Vec::new()
        };
        profile.add(Stage::DistortionCorrection, t.elapsed());

        // ➋ Event aggregation on the corrected stream.
        let t = Instant::now();
        let frames = aggregate(events, self.config.events_per_frame);
        profile.add(Stage::Aggregation, t.elapsed());

        let planes = DepthPlanes::uniform_inverse_depth(
            self.config.depth_range.0,
            self.config.depth_range.1,
            self.config.num_depth_planes,
        )?;
        let width = self.camera.intrinsics.width as usize;
        let height = self.camera.intrinsics.height as usize;
        let mut dsi = DsiStorage::new(width, height, planes.clone(), &self.options)?;

        let mut selector = KeyframeSelector::new(
            self.config.keyframe_distance,
            self.config.min_frames_per_keyframe,
        );
        let mut reference: Option<Pose> = None;
        let mut keyframes: Vec<KeyframeReconstruction> = Vec::new();
        let mut global_map = PointCloud::new();
        let mut frames_in_keyframe = 0usize;
        let mut events_in_keyframe = 0usize;

        for frame in &frames {
            let Some(timestamp) = frame.timestamp() else {
                continue;
            };
            let pose = trajectory.pose_at(timestamp)?;

            match reference {
                None => reference = Some(pose),
                Some(ref ref_pose) => {
                    if selector.should_switch(ref_pose, &pose) {
                        let t = Instant::now();
                        let reconstruction = self.finalize_keyframe(
                            &dsi,
                            ref_pose,
                            frames_in_keyframe,
                            events_in_keyframe,
                        );
                        profile.add(Stage::Detection, t.elapsed());
                        let t = Instant::now();
                        global_map.merge(&reconstruction.local_cloud);
                        dsi.reset();
                        profile.add(Stage::Merging, t.elapsed());
                        keyframes.push(reconstruction);
                        profile.keyframes += 1;
                        reference = Some(pose);
                        selector.reset();
                        frames_in_keyframe = 0;
                        events_in_keyframe = 0;
                    }
                }
            }
            let ref_pose = reference.expect("reference pose set above");
            let event_range = frame.index * self.config.events_per_frame
                ..(frame.index * self.config.events_per_frame + frame.len());

            // ➌ Pre-compute H_Z0 and φ for the frame (rescheduled: before the
            //   canonical projection).
            let t = Instant::now();
            let geometry =
                FrameGeometry::compute(&ref_pose, &pose, &self.camera.intrinsics, &planes)?;
            profile.add(Stage::ComputeHomography, t.elapsed());
            let t = Instant::now();
            let quantized = if self.options.quantize {
                Some((
                    QuantizedHomography::from_homography(&geometry.homography),
                    QuantizedCoefficients::from_coefficients(&geometry.coefficients),
                ))
            } else {
                None
            };
            profile.add(Stage::ComputeCoefficients, t.elapsed());

            // ➍ The FPGA datapath: canonical projection, proportional
            //   projection, vote generation and DSI voting.
            match &quantized {
                Some((qh, qphi)) => self.process_frame_quantized(
                    &transported[event_range],
                    qh,
                    qphi,
                    &mut dsi,
                    &mut profile,
                ),
                None => self.process_frame_float(
                    &corrected[event_range],
                    &geometry,
                    &mut dsi,
                    &mut profile,
                ),
            }

            selector.register_frame();
            frames_in_keyframe += 1;
            events_in_keyframe += frame.len();
            profile.frames_processed += 1;
            profile.events_processed += frame.len() as u64;
        }

        if let Some(ref_pose) = reference {
            if frames_in_keyframe > 0 {
                let t = Instant::now();
                let reconstruction =
                    self.finalize_keyframe(&dsi, &ref_pose, frames_in_keyframe, events_in_keyframe);
                profile.add(Stage::Detection, t.elapsed());
                let t = Instant::now();
                global_map.merge(&reconstruction.local_cloud);
                profile.add(Stage::Merging, t.elapsed());
                keyframes.push(reconstruction);
                profile.keyframes += 1;
            }
        }

        Ok(EmvsOutput {
            keyframes,
            global_map,
            profile,
        })
    }

    /// The parallel sharded voting engine's drive of the reformulated
    /// dataflow: parallel streaming distortion correction and transport
    /// encoding, key-frame segment planning, per-shard packet voting and
    /// deterministic tree-reduction merge (see [`crate::parallel`]).
    fn reconstruct_parallel(
        &self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        let shards = self.parallel.shards();
        let mut profile = StageProfile::new();

        // ➊ Streaming event distortion correction + Q9.7 transport encoding,
        //   chunked over the shards (per-event pure maps: bit-identical to
        //   the sequential stage for any shard count).
        let t = Instant::now();
        let corrected: Vec<Vec2> = parallel_map(events.as_slice(), shards, |e| {
            self.camera
                .undistort_pixel(Vec2::new(e.x as f64, e.y as f64))
        });
        let transported: Vec<PackedCoord> = if self.options.quantize {
            parallel_map(&corrected, shards, |&p| quantize_event_pixel(p))
        } else {
            Vec::new()
        };
        profile.add(Stage::DistortionCorrection, t.elapsed());

        // ➋ Event aggregation (sequential: a cheap chunking pass).
        let t = Instant::now();
        let frames = aggregate(events, self.config.events_per_frame);
        profile.add(Stage::Aggregation, t.elapsed());

        let planes = DepthPlanes::uniform_inverse_depth(
            self.config.depth_range.0,
            self.config.depth_range.1,
            self.config.num_depth_planes,
        )?;

        // ➌ Key-frame segment planning: replays the sequential key-frame
        //   selector over the trajectory and precomputes H_Z0 / φ per frame.
        let t = Instant::now();
        let segments = plan_segments(
            &frames,
            trajectory,
            &self.camera.intrinsics,
            &planes,
            &self.config,
        )?;
        profile.add(Stage::ComputeHomography, t.elapsed());

        // ➍ Per-segment sharded voting, merged with a deterministic tree
        //   reduction, on the storage type the options select. The quantized
        //   per-frame parameter blocks (Q11.21 → f64 decode, hoisted out of
        //   the per-event hot loop) are prepared one segment at a time, so
        //   the resident working set is bounded by one key frame.
        let hoist_segment = |segment: &KeyframeSegment| -> Vec<QuantizedFrameParams> {
            parallel_map(&segment.frames, shards, QuantizedFrameParams::from_frame)
        };
        let (keyframes, global_map) =
            if self.options.quantize && self.options.voting == VotingMode::Nearest {
                let width = self.camera.intrinsics.width;
                let height = self.camera.intrinsics.height;
                self.vote_segments::<u16, _, _, _>(
                    &segments,
                    &planes,
                    &mut profile,
                    hoist_segment,
                    |params, _seg, packet, tile| {
                        vote_packet_quantized_nearest(
                            tile,
                            &params[packet.frame],
                            &transported[packet.range.clone()],
                            width,
                            height,
                        )
                    },
                )?
            } else if self.options.quantize {
                self.vote_segments::<f32, _, _, _>(
                    &segments,
                    &planes,
                    &mut profile,
                    hoist_segment,
                    |params, _seg, packet, tile| {
                        vote_packet_quantized_bilinear(
                            tile,
                            &params[packet.frame],
                            &transported[packet.range.clone()],
                        )
                    },
                )?
            } else {
                self.vote_segments::<f32, _, _, _>(
                    &segments,
                    &planes,
                    &mut profile,
                    |_| (),
                    |(), seg, packet, tile| {
                        vote_packet_float(
                            tile,
                            &segments[seg].frames[packet.frame],
                            &corrected[packet.range.clone()],
                            self.options.voting,
                        )
                    },
                )?
            };

        Ok(EmvsOutput {
            keyframes,
            global_map,
            profile,
        })
    }

    /// Runs the sharded vote → tree-reduce → detect loop over all planned
    /// segments with per-shard tiles of score type `S`, reusing the tiles
    /// (reset, not reallocated) across key frames.
    ///
    /// `prepare` builds the per-segment voting context (e.g. the hoisted
    /// quantized parameter blocks) just before that segment votes, so only
    /// one segment's context is ever resident; `vote` receives it along with
    /// the segment index.
    ///
    /// The fused vote kernel's wall time cannot be split into the paper's
    /// canonical/proportional/vote stages once fused, so it is attributed
    /// evenly to the three.
    fn vote_segments<S, P, G, F>(
        &self,
        segments: &[KeyframeSegment],
        planes: &DepthPlanes,
        profile: &mut StageProfile,
        prepare: G,
        vote: F,
    ) -> Result<(Vec<KeyframeReconstruction>, PointCloud), EmvsError>
    where
        S: VoxelScore,
        P: Sync,
        G: Fn(&KeyframeSegment) -> P,
        F: Fn(&P, usize, &VotePacket, &mut ShardState<S>) + Sync,
    {
        let shards = self.parallel.shards();
        let width = self.camera.intrinsics.width as usize;
        let height = self.camera.intrinsics.height as usize;
        let mut states: Vec<ShardState<S>> = (0..shards)
            .map(|_| {
                DsiVolume::new(width, height, planes.clone())
                    .map(|tile| ShardState::new(tile, self.parallel.packet_events()))
            })
            .collect::<Result<_, _>>()?;
        let mut keyframes: Vec<KeyframeReconstruction> = Vec::new();
        let mut global_map = PointCloud::new();

        for (seg_index, segment) in segments.iter().enumerate() {
            let t = Instant::now();
            let context = prepare(segment);
            profile.add(Stage::ComputeCoefficients, t.elapsed());

            let t = Instant::now();
            let packets = segment.packets(self.parallel.packet_events());
            run_sharded(&mut states, |shard, state| {
                for packet in shard_packets(&packets, shard, shards) {
                    vote(&context, seg_index, packet, state);
                }
            });
            let fused = t.elapsed() / 3;
            profile.add(Stage::CanonicalProjection, fused);
            profile.add(Stage::ProportionalProjection, fused);
            profile.add(Stage::VoteDsi, fused);

            let t = Instant::now();
            {
                let mut tiles: Vec<&mut DsiVolume<S>> =
                    states.iter_mut().map(|s| &mut s.tile).collect();
                DsiVolume::tree_reduce_refs(&mut tiles);
            }
            let merged = &states[0].tile;
            let reconstruction = self.finalize_keyframe_volume(
                merged,
                &segment.reference_pose,
                segment.frames.len(),
                segment.events,
            );
            profile.add(Stage::Detection, t.elapsed());
            let t = Instant::now();
            global_map.merge(&reconstruction.local_cloud);
            keyframes.push(reconstruction);
            profile.keyframes += 1;
            for state in &mut states {
                state.tile.reset();
            }
            profile.add(Stage::Merging, t.elapsed());
            profile.frames_processed += segment.frames.len() as u64;
            profile.events_processed += segment.events as u64;
        }
        Ok((keyframes, global_map))
    }

    /// Quantized FPGA datapath for one frame.
    fn process_frame_quantized(
        &self,
        events: &[PackedCoord],
        homography: &QuantizedHomography,
        coefficients: &QuantizedCoefficients,
        dsi: &mut DsiStorage,
        profile: &mut StageProfile,
    ) {
        let width = self.camera.intrinsics.width;
        let height = self.camera.intrinsics.height;
        // Canonical projection P{Z0} on PE_Z0.
        let t = Instant::now();
        let canonical: Vec<Option<PackedCoord>> =
            events.iter().map(|&c| homography.project(c)).collect();
        profile.add(Stage::CanonicalProjection, t.elapsed());

        // Proportional projection + vote generation + voting.
        let t = Instant::now();
        let n_planes = coefficients.len();
        match self.options.voting {
            VotingMode::Nearest => {
                for c in canonical.iter().flatten() {
                    for i in 0..n_planes {
                        if let Some((x, y)) = coefficients
                            .transfer_nearest(*c, i, width, height)
                            .address()
                        {
                            dsi.vote(x as f64, y as f64, i, VotingMode::Nearest);
                        }
                    }
                }
            }
            VotingMode::Bilinear => {
                for c in canonical.iter().flatten() {
                    for i in 0..n_planes {
                        let p = coefficients.transfer_subpixel(*c, i);
                        dsi.vote(p.x, p.y, i, VotingMode::Bilinear);
                    }
                }
            }
        }
        // The address-generation and vote stages are fused on the FPGA; their
        // combined cost is attributed to the proportional-projection stage,
        // with the DSI update counted under VoteDsi for profile compatibility.
        let elapsed = t.elapsed();
        profile.add(Stage::ProportionalProjection, elapsed / 2);
        profile.add(Stage::VoteDsi, elapsed - elapsed / 2);
    }

    /// Full-precision datapath for one frame (used by the ablations that
    /// disable quantization).
    fn process_frame_float(
        &self,
        events: &[Vec2],
        geometry: &FrameGeometry,
        dsi: &mut DsiStorage,
        profile: &mut StageProfile,
    ) {
        let t = Instant::now();
        let canonical: Vec<Option<Vec2>> = events.iter().map(|&p| geometry.canonical(p)).collect();
        profile.add(Stage::CanonicalProjection, t.elapsed());

        let t = Instant::now();
        let n_planes = geometry.num_planes();
        for c in canonical.iter().flatten() {
            for i in 0..n_planes {
                let p = geometry.transfer(*c, i);
                dsi.vote(p.x, p.y, i, self.options.voting);
            }
        }
        let elapsed = t.elapsed();
        profile.add(Stage::ProportionalProjection, elapsed / 2);
        profile.add(Stage::VoteDsi, elapsed - elapsed / 2);
    }

    /// [`Self::finalize_keyframe`] on a bare volume — the entry point the
    /// parallel engine uses on a tree-reduced shard tile.
    fn finalize_keyframe_volume<S: VoxelScore>(
        &self,
        dsi: &DsiVolume<S>,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
    ) -> KeyframeReconstruction {
        let depth_map = detect_structure(dsi, &self.config.detection);
        let local_cloud =
            PointCloud::from_depth_map(&depth_map, &self.camera.intrinsics, reference_pose);
        KeyframeReconstruction {
            reference_pose: *reference_pose,
            depth_map,
            local_cloud,
            frames_used,
            events_used,
            votes_cast: dsi.votes_cast(),
        }
    }

    fn finalize_keyframe(
        &self,
        dsi: &DsiStorage,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
    ) -> KeyframeReconstruction {
        let depth_map = dsi.detect(&self.config.detection);
        let local_cloud =
            PointCloud::from_depth_map(&depth_map, &self.camera.intrinsics, reference_pose);
        KeyframeReconstruction {
            reference_pose: *reference_pose,
            depth_map,
            local_cloud,
            frames_used,
            events_used,
            votes_cast: dsi.votes_cast(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

    fn sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    fn config_for(seq: &SyntheticSequence) -> EmvsConfig {
        EmvsConfig::default()
            .with_depth_range(seq.depth_range.0, seq.depth_range.1)
            .with_depth_planes(60)
    }

    #[test]
    fn options_presets() {
        assert_eq!(EventorOptions::accelerator().voting, VotingMode::Nearest);
        assert!(EventorOptions::accelerator().quantize);
        assert!(!EventorOptions::nearest_only().quantize);
        assert_eq!(
            EventorOptions::quantized_only().voting,
            VotingMode::Bilinear
        );
        assert_eq!(
            EventorOptions::exact(),
            EventorOptions {
                voting: VotingMode::Bilinear,
                quantize: false
            }
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let cam = CameraModel::davis240_ideal();
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(EventorPipeline::new(cam, bad, EventorOptions::default()).is_err());
    }

    #[test]
    fn empty_stream_is_error() {
        let cam = CameraModel::davis240_ideal();
        let p =
            EventorPipeline::new(cam, EmvsConfig::default(), EventorOptions::default()).unwrap();
        let traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 2);
        assert!(matches!(
            p.reconstruct(&EventStream::new(), &traj),
            Err(EmvsError::NoEvents)
        ));
    }

    #[test]
    fn accelerator_pipeline_reconstructs_with_low_abs_rel() {
        let seq = sequence();
        let pipeline =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap();
        let out = pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let primary = out.primary().expect("at least one key frame");
        assert!(primary.depth_map.valid_count() > 50);
        let gt = seq.ground_truth_depth_at(&primary.reference_pose);
        let m = primary
            .depth_map
            .compare_to_ground_truth(gt.as_slice())
            .unwrap();
        assert!(m.abs_rel < 0.12, "AbsRel {:.4}", m.abs_rel);
    }

    #[test]
    fn reformulated_accuracy_close_to_baseline() {
        // The Fig. 7a claim: the fully reformulated pipeline stays within a
        // small AbsRel difference of the original EMVS.
        let seq = sequence();
        let baseline = eventor_emvs::EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let reformulated =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap();
        let out_base = baseline.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let out_ref = reformulated
            .reconstruct(&seq.events, &seq.trajectory)
            .unwrap();
        let gt_b = seq.ground_truth_depth_at(&out_base.primary().unwrap().reference_pose);
        let gt_r = seq.ground_truth_depth_at(&out_ref.primary().unwrap().reference_pose);
        let m_b = out_base
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_b.as_slice())
            .unwrap();
        let m_r = out_ref
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_r.as_slice())
            .unwrap();
        assert!(
            (m_r.abs_rel - m_b.abs_rel).abs() < 0.05,
            "reformulated {:.4} vs baseline {:.4}",
            m_r.abs_rel,
            m_b.abs_rel
        );
    }

    #[test]
    fn exact_options_match_baseline_votes() {
        // With both approximations disabled the reformulated schedule performs
        // the same mathematical operations as the baseline mapper.
        let seq = sequence();
        let baseline = eventor_emvs::EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let exact =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::exact()).unwrap();
        let out_base = baseline.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let out_exact = exact.reconstruct(&seq.events, &seq.trajectory).unwrap();
        assert_eq!(out_base.keyframes.len(), out_exact.keyframes.len());
        let b = out_base.primary().unwrap();
        let e = out_exact.primary().unwrap();
        assert_eq!(b.votes_cast, e.votes_cast);
        assert_eq!(b.depth_map.valid_count(), e.depth_map.valid_count());
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential_on_slider() {
        let seq = sequence();
        let sequential =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap()
                .reconstruct(&seq.events, &seq.trajectory)
                .unwrap();
        let parallel =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap()
                .with_parallelism(ParallelConfig::with_shards(4))
                .reconstruct(&seq.events, &seq.trajectory)
                .unwrap();
        assert_eq!(sequential.keyframes.len(), parallel.keyframes.len());
        for (s, p) in sequential.keyframes.iter().zip(&parallel.keyframes) {
            assert_eq!(s.votes_cast, p.votes_cast);
            assert_eq!(s.depth_map.depth_data(), p.depth_map.depth_data());
        }
    }

    #[test]
    fn parallelism_defaults_to_sequential_and_is_configurable() {
        let cam = CameraModel::davis240_ideal();
        let p =
            EventorPipeline::new(cam, EmvsConfig::default(), EventorOptions::default()).unwrap();
        assert!(!p.parallelism().is_parallel());
        let p = p.with_parallelism(ParallelConfig::with_shards(8).with_packet_events(128));
        assert_eq!(p.parallelism().shards(), 8);
        assert_eq!(p.parallelism().packet_events(), 128);
    }

    #[test]
    fn quantized_only_and_nearest_only_both_work() {
        let seq = sequence();
        for options in [
            EventorOptions::quantized_only(),
            EventorOptions::nearest_only(),
        ] {
            let pipeline = EventorPipeline::new(seq.camera, config_for(&seq), options).unwrap();
            let out = pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap();
            let primary = out.primary().unwrap();
            let gt = seq.ground_truth_depth_at(&primary.reference_pose);
            let m = primary
                .depth_map
                .compare_to_ground_truth(gt.as_slice())
                .unwrap();
            assert!(m.abs_rel < 0.15, "{options:?}: AbsRel {:.4}", m.abs_rel);
            assert!(primary.depth_map.valid_count() > 30, "{options:?}");
        }
    }
}
