//! The Eventor pipeline: the hardware-friendly **reformulated** EMVS dataflow
//! of Fig. 3 (right).
//!
//! Differences from the baseline [`eventor_emvs::EmvsMapper`]:
//!
//! * **Rescheduling** — event distortion correction runs per event *before*
//!   aggregation (streaming), and the proportional back-projection
//!   coefficients `φ` are pre-computed (together with `H_{Z0}`) before the
//!   canonical projection so the four hot sub-tasks can run back-to-back on
//!   the FPGA.
//! * **Approximate computing** — nearest voting instead of bilinear voting.
//! * **Hybrid quantization** — Table 1 fixed-point formats on every datum
//!   crossing the FPGA datapath, with 16-bit integer DSI scores; the
//!   arithmetic between the quantization points is the bit-true integer
//!   kernel of [`eventor_fixed::kernel`], shared with the `eventor-hwsim`
//!   device model.
//!
//! Both approximations can be toggled independently through
//! [`EventorOptions`], which is what the Fig. 4a / Fig. 4b / Fig. 7a
//! ablations sweep.
//!
//! Since the streaming redesign the datapaths live in the session backends
//! ([`crate::SoftwareBackend`] for the sequential golden path,
//! [`crate::ShardedBackend`] for the parallel voting engine) and
//! [`EventorPipeline::reconstruct`] is a thin batch wrapper over a session.

use crate::parallel::ParallelConfig;
use crate::session::{ShardedBackend, SoftwareBackend};
use eventor_emvs::{reconstruct_with_backend, EmvsConfig, EmvsError, EmvsOutput, VotingMode};
use eventor_events::EventStream;
use eventor_geom::{CameraModel, Trajectory};

/// Reformulation/approximation switches of the Eventor datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventorOptions {
    /// DSI voting mode (the accelerator uses nearest voting).
    pub voting: VotingMode,
    /// Apply the Table 1 hybrid fixed-point quantization.
    pub quantize: bool,
}

impl Default for EventorOptions {
    fn default() -> Self {
        Self {
            voting: VotingMode::Nearest,
            quantize: true,
        }
    }
}

impl EventorOptions {
    /// The full Eventor datapath (nearest voting + quantization), as deployed
    /// on the FPGA.
    pub fn accelerator() -> Self {
        Self::default()
    }

    /// Nearest voting only (Fig. 4a ablation).
    pub fn nearest_only() -> Self {
        Self {
            voting: VotingMode::Nearest,
            quantize: false,
        }
    }

    /// Quantization only (Fig. 4b ablation).
    pub fn quantized_only() -> Self {
        Self {
            voting: VotingMode::Bilinear,
            quantize: true,
        }
    }

    /// No approximation at all (matches the baseline mapper; useful for
    /// validating the rescheduled dataflow in isolation).
    pub fn exact() -> Self {
        Self {
            voting: VotingMode::Bilinear,
            quantize: false,
        }
    }
}

/// The Eventor reformulated EMVS pipeline.
///
/// # Examples
///
/// ```no_run
/// use eventor_core::{EventorOptions, EventorPipeline};
/// use eventor_emvs::EmvsConfig;
/// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
/// let config = EmvsConfig::default().with_depth_range(seq.depth_range.0, seq.depth_range.1);
/// let pipeline = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator())?;
/// let output = pipeline.reconstruct(&seq.events, &seq.trajectory)?;
/// println!("{} key frames", output.keyframes.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventorPipeline {
    camera: CameraModel,
    config: EmvsConfig,
    options: EventorOptions,
    parallel: ParallelConfig,
}

impl EventorPipeline {
    /// Creates a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations (same
    /// contract as [`eventor_emvs::EmvsMapper::new`], via the shared
    /// [`EmvsConfig::validate`]).
    pub fn new(
        camera: CameraModel,
        config: EmvsConfig,
        options: EventorOptions,
    ) -> Result<Self, EmvsError> {
        config.validate()?;
        Ok(Self {
            camera,
            config,
            options,
            parallel: ParallelConfig::sequential(),
        })
    }

    /// Enables the parallel sharded voting engine.
    ///
    /// With [`ParallelConfig::sequential`] (the default) the original
    /// single-threaded golden path runs unchanged ([`SoftwareBackend`]).
    /// With more than one shard the reconstruction runs on the
    /// [`ShardedBackend`]: vote packets are distributed round-robin over
    /// worker shards voting into private DSI tiles, merged with a
    /// deterministic tree reduction (see [`crate::parallel`]). For the
    /// accelerator datapath ([`EventorOptions::accelerator`]) the output is
    /// bit-identical to the sequential result for every shard count.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use eventor_core::{EventorOptions, EventorPipeline, ParallelConfig};
    /// use eventor_emvs::EmvsConfig;
    /// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let seq = SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())?;
    /// let config = EmvsConfig::default().with_depth_range(seq.depth_range.0, seq.depth_range.1);
    /// let pipeline = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator())?
    ///     .with_parallelism(ParallelConfig::auto());
    /// let output = pipeline.reconstruct(&seq.events, &seq.trajectory)?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The active reformulation options.
    pub fn options(&self) -> &EventorOptions {
        &self.options
    }

    /// The EMVS configuration.
    pub fn config(&self) -> &EmvsConfig {
        &self.config
    }

    /// The active parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Runs the reformulated reconstruction — a batch wrapper over a
    /// streaming session with the backend the parallelism configuration
    /// selects.
    ///
    /// # Errors
    ///
    /// Same error contract as [`eventor_emvs::EmvsMapper::reconstruct`].
    pub fn reconstruct(
        &self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        if self.parallel.is_engine() {
            let backend =
                ShardedBackend::new(self.camera, &self.config, self.options, self.parallel)?;
            reconstruct_with_backend(
                self.camera,
                self.config.clone(),
                backend,
                events,
                trajectory,
            )
        } else {
            let backend = SoftwareBackend::new(self.camera, &self.config, self.options)?;
            reconstruct_with_backend(
                self.camera,
                self.config.clone(),
                backend,
                events,
                trajectory,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
    use eventor_geom::Pose;

    fn sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    fn config_for(seq: &SyntheticSequence) -> EmvsConfig {
        EmvsConfig::default()
            .with_depth_range(seq.depth_range.0, seq.depth_range.1)
            .with_depth_planes(60)
    }

    #[test]
    fn options_presets() {
        assert_eq!(EventorOptions::accelerator().voting, VotingMode::Nearest);
        assert!(EventorOptions::accelerator().quantize);
        assert!(!EventorOptions::nearest_only().quantize);
        assert_eq!(
            EventorOptions::quantized_only().voting,
            VotingMode::Bilinear
        );
        assert_eq!(
            EventorOptions::exact(),
            EventorOptions {
                voting: VotingMode::Bilinear,
                quantize: false
            }
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let cam = CameraModel::davis240_ideal();
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(EventorPipeline::new(cam, bad, EventorOptions::default()).is_err());
    }

    #[test]
    fn empty_stream_is_error() {
        let cam = CameraModel::davis240_ideal();
        let p =
            EventorPipeline::new(cam, EmvsConfig::default(), EventorOptions::default()).unwrap();
        let traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 2);
        assert!(matches!(
            p.reconstruct(&EventStream::new(), &traj),
            Err(EmvsError::NoEvents)
        ));
    }

    #[test]
    fn accelerator_pipeline_reconstructs_with_low_abs_rel() {
        let seq = sequence();
        let pipeline =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap();
        let out = pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let primary = out.primary().expect("at least one key frame");
        assert!(primary.depth_map.valid_count() > 50);
        let gt = seq.ground_truth_depth_at(&primary.reference_pose);
        let m = primary
            .depth_map
            .compare_to_ground_truth(gt.as_slice())
            .unwrap();
        assert!(m.abs_rel < 0.12, "AbsRel {:.4}", m.abs_rel);
    }

    #[test]
    fn reformulated_accuracy_close_to_baseline() {
        // The Fig. 7a claim: the fully reformulated pipeline stays within a
        // small AbsRel difference of the original EMVS.
        let seq = sequence();
        let baseline = eventor_emvs::EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let reformulated =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap();
        let out_base = baseline.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let out_ref = reformulated
            .reconstruct(&seq.events, &seq.trajectory)
            .unwrap();
        let gt_b = seq.ground_truth_depth_at(&out_base.primary().unwrap().reference_pose);
        let gt_r = seq.ground_truth_depth_at(&out_ref.primary().unwrap().reference_pose);
        let m_b = out_base
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_b.as_slice())
            .unwrap();
        let m_r = out_ref
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_r.as_slice())
            .unwrap();
        assert!(
            (m_r.abs_rel - m_b.abs_rel).abs() < 0.05,
            "reformulated {:.4} vs baseline {:.4}",
            m_r.abs_rel,
            m_b.abs_rel
        );
    }

    #[test]
    fn exact_options_match_baseline_votes() {
        // With both approximations disabled the reformulated schedule performs
        // the same mathematical operations as the baseline mapper.
        let seq = sequence();
        let baseline = eventor_emvs::EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let exact =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::exact()).unwrap();
        let out_base = baseline.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let out_exact = exact.reconstruct(&seq.events, &seq.trajectory).unwrap();
        assert_eq!(out_base.keyframes.len(), out_exact.keyframes.len());
        let b = out_base.primary().unwrap();
        let e = out_exact.primary().unwrap();
        assert_eq!(b.votes_cast, e.votes_cast);
        assert_eq!(b.depth_map.valid_count(), e.depth_map.valid_count());
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential_on_slider() {
        let seq = sequence();
        let sequential =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap()
                .reconstruct(&seq.events, &seq.trajectory)
                .unwrap();
        let parallel =
            EventorPipeline::new(seq.camera, config_for(&seq), EventorOptions::accelerator())
                .unwrap()
                .with_parallelism(ParallelConfig::with_shards(4))
                .reconstruct(&seq.events, &seq.trajectory)
                .unwrap();
        assert_eq!(sequential.keyframes.len(), parallel.keyframes.len());
        for (s, p) in sequential.keyframes.iter().zip(&parallel.keyframes) {
            assert_eq!(s.votes_cast, p.votes_cast);
            assert_eq!(s.depth_map.depth_data(), p.depth_map.depth_data());
        }
    }

    #[test]
    fn parallelism_defaults_to_sequential_and_is_configurable() {
        let cam = CameraModel::davis240_ideal();
        let p =
            EventorPipeline::new(cam, EmvsConfig::default(), EventorOptions::default()).unwrap();
        assert!(!p.parallelism().is_parallel());
        let p = p.with_parallelism(ParallelConfig::with_shards(8).with_packet_events(128));
        assert_eq!(p.parallelism().shards(), 8);
        assert_eq!(p.parallelism().packet_events(), 128);
    }

    #[test]
    fn quantized_only_and_nearest_only_both_work() {
        let seq = sequence();
        for options in [
            EventorOptions::quantized_only(),
            EventorOptions::nearest_only(),
        ] {
            let pipeline = EventorPipeline::new(seq.camera, config_for(&seq), options).unwrap();
            let out = pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap();
            let primary = out.primary().unwrap();
            let gt = seq.ground_truth_depth_at(&primary.reference_pose);
            let m = primary
                .depth_map
                .compare_to_ground_truth(gt.as_slice())
                .unwrap();
            assert!(m.abs_rel < 0.15, "{options:?}: AbsRel {:.4}", m.abs_rel);
            assert!(primary.depth_map.valid_count() > 30, "{options:?}");
        }
    }
}
