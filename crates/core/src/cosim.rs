//! Hardware/software co-simulation: the host-side driver that runs the
//! reformulated EMVS dataflow on the functional device model of
//! `eventor-hwsim`.
//!
//! [`CosimBackend`] plays the role of the ARM firmware in the prototype
//! behind the streaming session contract: it performs the PS-side per-frame
//! stages (streaming distortion correction, Q9.7 transport encoding,
//! register/BRAM parameter staging) and drives the PL-side stages (`𝒫{Z0}`,
//! `𝒫{Z0;Zi}`, `𝒢`, `𝒱`) through the register/DMA interface of
//! [`EventorDevice`]. [`CosimPipeline`] is the legacy batch façade — a thin
//! wrapper that feeds a session the whole stream at once.
//!
//! The device datapath and the software datapath in
//! [`crate::EventorPipeline`] are both thin wrappers over the **bit-true
//! integer kernel** in [`eventor_fixed::kernel`] — same raw fixed-point
//! words, same wide-MAC/normalization/judgement functions — so the two
//! produce **identical DSI volumes** for identical inputs *by construction*;
//! the workspace integration tests assert this bit-exact agreement, which is
//! the co-verification argument of the accelerator design.

use crate::parallel::{parallel_map, ParallelConfig};
use crate::quantized::quantize_event_pixel;
use eventor_dsi::{DepthPlanes, DetectionConfig, DsiVolume};
use eventor_emvs::{
    finalize_volume, import_vote_tiles, BackendVoteState, EmvsConfig, EmvsError, EmvsOutput,
    ExecutionBackend, FrameGeometry, FrameWork, KeyframeReconstruction, Stage, StageProfile,
};
use eventor_events::EventStream;
use eventor_geom::{CameraModel, Pose, Trajectory, Vec2};
use eventor_hwsim::{
    AcceleratorConfig, ActivityEnergyModel, DeviceStats, EnergyBreakdown, EventorDevice,
    FrameExecution, FrameKind, HomographyRegisters, PhiEntry,
};
use std::time::{Duration, Instant};

/// Summary of the accelerator activity during one co-simulated
/// reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CosimReport {
    /// Frames executed on the device.
    pub frames: u64,
    /// Key frames executed on the device.
    pub key_frames: u64,
    /// Events shipped to the device.
    pub events_in: u64,
    /// Events dropped by the projection-missing judgement.
    pub events_dropped: u64,
    /// Votes applied to the DSI in device DRAM.
    pub votes_applied: u64,
    /// Total modelled accelerator busy time, seconds.
    pub accelerator_seconds: f64,
    /// Mean modelled latency of a normal frame, microseconds.
    pub mean_normal_frame_us: f64,
    /// Mean modelled latency of a key frame, microseconds.
    pub mean_key_frame_us: f64,
    /// Activity-based energy breakdown of the accelerator work (joules),
    /// accumulated over every executed frame.
    pub energy: EnergyBreakdown,
}

/// The co-simulated execution backend: PS-side firmware stages plus the
/// functional PL device model, behind the `eventor-backend/1` session
/// contract.
///
/// The device resets its DSI DRAM on every `FrameKind::Key` job, so the
/// backend marks the first frame after each retirement as a key frame — the
/// same protocol the batch firmware loop used.
#[derive(Debug)]
pub struct CosimBackend {
    camera: CameraModel,
    detection: DetectionConfig,
    planes: DepthPlanes,
    parallel: ParallelConfig,
    device: EventorDevice,
    report: CosimReport,
    normal_us_sum: f64,
    key_us_sum: f64,
    votes_in_keyframe: u64,
    next_is_key: bool,
}

impl CosimBackend {
    /// Creates a backend with a fresh device whose accelerator configuration
    /// is aligned with the EMVS configuration (frame size, plane count and
    /// sensor resolution are taken from `config` / `camera`).
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations.
    pub fn new(
        camera: CameraModel,
        config: &EmvsConfig,
        accelerator: AcceleratorConfig,
        parallel: ParallelConfig,
    ) -> Result<Self, EmvsError> {
        let mut accelerator = accelerator;
        accelerator.events_per_frame = config.events_per_frame;
        accelerator.num_depth_planes = config.num_depth_planes;
        accelerator.sensor_width = camera.intrinsics.width as usize;
        accelerator.sensor_height = camera.intrinsics.height as usize;
        Self::with_device(camera, config, EventorDevice::new(accelerator), parallel)
    }

    /// Creates a backend around an existing device (whose configuration must
    /// already match the EMVS configuration) — used by the batch pipeline to
    /// preserve device lifetime statistics across reconstructions.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations.
    pub fn with_device(
        camera: CameraModel,
        config: &EmvsConfig,
        device: EventorDevice,
        parallel: ParallelConfig,
    ) -> Result<Self, EmvsError> {
        let planes = config.depth_planes()?;
        Ok(Self {
            camera,
            detection: config.detection,
            planes,
            parallel,
            device,
            report: CosimReport::default(),
            normal_us_sum: 0.0,
            key_us_sum: 0.0,
            votes_in_keyframe: 0,
            next_is_key: true,
        })
    }

    /// The device model (for DSI readback and traffic inspection).
    pub fn device(&self) -> &EventorDevice {
        &self.device
    }

    /// Consumes the backend and returns the device.
    pub fn into_device(self) -> EventorDevice {
        self.device
    }

    /// The accelerator activity report accumulated so far, with the mean
    /// frame latencies computed from the running sums.
    pub fn report(&self) -> CosimReport {
        let mut report = self.report;
        report.mean_normal_frame_us = if report.frames > report.key_frames {
            self.normal_us_sum / (report.frames - report.key_frames) as f64
        } else {
            0.0
        };
        report.mean_key_frame_us = if report.key_frames > 0 {
            self.key_us_sum / report.key_frames as f64
        } else {
            0.0
        };
        report
    }

    /// Builds the per-frame job shipped to the device: the frame's Q9.7
    /// event words plus the quantized `H_{Z0}` and `φ` parameter payloads.
    fn frame_job(
        geometry: &FrameGeometry,
        event_words: Vec<u32>,
        kind: FrameKind,
    ) -> eventor_hwsim::FrameJob {
        let homography_words =
            HomographyRegisters::from_matrix(&geometry.homography.h.m).raw_words();
        let phi = &geometry.coefficients;
        let phi_words: Vec<[i32; 3]> = (0..phi.len())
            .map(|i| PhiEntry::from_f64(phi.scale[i], phi.offset_x[i], phi.offset_y[i]).raw_words())
            .collect();
        eventor_hwsim::FrameJob {
            event_words,
            homography_words,
            phi_words,
            kind,
        }
    }

    fn charge_profile(
        profile: &mut StageProfile,
        execution: &FrameExecution,
        fabric: eventor_hwsim::ClockDomain,
    ) {
        let canonical =
            Duration::from_secs_f64(fabric.cycles_to_seconds(execution.canonical_cycles));
        let proportional =
            Duration::from_secs_f64(fabric.cycles_to_seconds(execution.proportional_cycles));
        profile.add(Stage::CanonicalProjection, canonical);
        profile.add(Stage::ProportionalProjection, proportional / 2);
        profile.add(Stage::VoteDsi, proportional - proportional / 2);
    }

    fn charge_report(&mut self, execution: &FrameExecution, fabric: eventor_hwsim::ClockDomain) {
        self.report.frames += 1;
        self.report.events_in += execution.events_in;
        self.report.events_dropped += execution.events_dropped;
        self.report.votes_applied += execution.votes_applied;
        let us = fabric.cycles_to_us(execution.total_cycles);
        self.report.accelerator_seconds += us * 1e-6;
        match execution.kind {
            FrameKind::Key => {
                self.report.key_frames += 1;
                self.key_us_sum += us;
            }
            FrameKind::Normal => self.normal_us_sum += us,
        }
    }
}

impl ExecutionBackend for CosimBackend {
    fn name(&self) -> &'static str {
        "cosim"
    }

    fn vote_frame(
        &mut self,
        work: &FrameWork<'_>,
        profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        let fabric = self.device.config().fabric_clock;
        // PS side: streaming distortion correction + Q9.7 transport encoding,
        // chunked over the configured worker shards (bit-identical for any
        // shard count — both stages are per-event pure maps).
        let camera = &self.camera;
        let event_words: Vec<u32> = parallel_map(work.events, self.parallel.shards(), |e| {
            let p = camera.undistort_pixel(Vec2::new(e.x as f64, e.y as f64));
            quantize_event_pixel(p).to_word()
        });
        let kind = if self.next_is_key {
            FrameKind::Key
        } else {
            FrameKind::Normal
        };
        let job = Self::frame_job(work.geometry, event_words, kind);

        // PL side: run the frame on the device. `next_is_key` is only
        // cleared on success: the driver keeps a failed frame buffered for
        // retry, and the retried job must still be a Key frame so the device
        // resets its DSI for the new key frame.
        let execution = self
            .device
            .run_frame(job)
            .ok_or_else(|| EmvsError::InvalidConfig {
                reason: "accelerator rejected the staged frame".into(),
            })?;
        self.next_is_key = false;
        Self::charge_profile(profile, &execution, fabric);
        self.charge_report(&execution, fabric);
        self.report.energy.accumulate(
            &ActivityEnergyModel::default().frame_energy(&execution, self.device.config()),
        );
        self.votes_in_keyframe += execution.votes_applied;
        Ok(())
    }

    fn retire_keyframe(
        &mut self,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        profile: &mut StageProfile,
    ) -> Result<KeyframeReconstruction, EmvsError> {
        // Read the DSI back from device DRAM and run the PS-side detection
        // and point-cloud conversion.
        let t = Instant::now();
        let dram = self.device.dsi();
        let dsi: DsiVolume<u16> = DsiVolume::from_scores(
            dram.width(),
            dram.height(),
            self.planes.clone(),
            dram.scores().to_vec(),
            self.votes_in_keyframe,
        )?;
        let reconstruction = finalize_volume(
            &dsi,
            &self.detection,
            &self.camera,
            reference_pose,
            frames_used,
            events_used,
        );
        profile.add(Stage::Detection, t.elapsed());
        // The device clears its DSI on the next Key frame job.
        self.votes_in_keyframe = 0;
        self.next_is_key = true;
        Ok(reconstruction)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn export_vote_state(
        &mut self,
        _profile: &mut StageProfile,
    ) -> Result<BackendVoteState, EmvsError> {
        let dram = self.device.dsi();
        // Right after a retirement the device DRAM still holds the *retired*
        // key frame's scores (the device only resets on the next Key job), so
        // the open key frame's true partial state is an empty volume.
        let dsi: DsiVolume<u16> = if self.next_is_key {
            DsiVolume::new(dram.width(), dram.height(), self.planes.clone())?
        } else {
            DsiVolume::from_scores(
                dram.width(),
                dram.height(),
                self.planes.clone(),
                dram.scores().to_vec(),
                self.votes_in_keyframe,
            )?
        };
        Ok(BackendVoteState::Quantized(vec![dsi]))
    }

    fn import_vote_state(
        &mut self,
        state: BackendVoteState,
        _profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        let tiles = match state {
            BackendVoteState::Quantized(tiles) => tiles,
            BackendVoteState::Float(_) => {
                return Err(EmvsError::Checkpoint {
                    reason: "float vote state cannot restore into the co-simulated device".into(),
                })
            }
        };
        // Merge the (per-shard) tiles into one canonical volume — exact for
        // the saturating u16 datapath — and image it into device DRAM.
        let dram = self.device.dsi();
        let mut canonical: DsiVolume<u16> =
            DsiVolume::new(dram.width(), dram.height(), self.planes.clone())?;
        import_vote_tiles(tiles, &mut [&mut canonical], "cosim")?;
        self.votes_in_keyframe = canonical.votes_cast();
        self.device.load_dsi(canonical.raw_scores());
        // The DSI image already reflects the open key frame (all zeros when
        // the checkpoint fell on a key-frame boundary), so the next frame
        // must NOT be a Key job — that would wipe the restored votes.
        self.next_is_key = false;
        Ok(())
    }
}

/// The co-simulated Eventor pipeline: the legacy batch façade over a
/// streaming session with the [`CosimBackend`].
///
/// # Examples
///
/// ```no_run
/// use eventor_core::CosimPipeline;
/// use eventor_emvs::EmvsConfig;
/// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
/// use eventor_hwsim::AcceleratorConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
/// let config = EmvsConfig::default().with_depth_range(seq.depth_range.0, seq.depth_range.1);
/// let mut cosim = CosimPipeline::new(seq.camera, config, AcceleratorConfig::default())?;
/// let output = cosim.reconstruct(&seq.events, &seq.trajectory)?;
/// println!("accelerator applied {} votes", cosim.report().votes_applied);
/// println!("{} key frames", output.keyframes.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CosimPipeline {
    camera: CameraModel,
    config: EmvsConfig,
    /// `None` only while a `reconstruct` call has lent the device to its
    /// session backend.
    device: Option<EventorDevice>,
    report: CosimReport,
    parallel: ParallelConfig,
}

impl CosimPipeline {
    /// Creates a co-simulation pipeline.
    ///
    /// The accelerator configuration is aligned with the EMVS configuration:
    /// frame size, plane count and sensor resolution are taken from
    /// `config` / `camera` so the device DSI matches the host's expectations.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations (same
    /// contract as [`crate::EventorPipeline::new`], via the shared
    /// [`EmvsConfig::validate`]).
    pub fn new(
        camera: CameraModel,
        config: EmvsConfig,
        accelerator: AcceleratorConfig,
    ) -> Result<Self, EmvsError> {
        config.validate()?;
        let mut accelerator = accelerator;
        accelerator.events_per_frame = config.events_per_frame;
        accelerator.num_depth_planes = config.num_depth_planes;
        accelerator.sensor_width = camera.intrinsics.width as usize;
        accelerator.sensor_height = camera.intrinsics.height as usize;
        let device = EventorDevice::new(accelerator);
        Ok(Self {
            camera,
            config,
            device: Some(device),
            report: CosimReport::default(),
            parallel: ParallelConfig::sequential(),
        })
    }

    fn device_ref(&self) -> &EventorDevice {
        self.device
            .as_ref()
            .expect("device is only absent while reconstruct borrows it")
    }

    /// Parallelizes the PS-side (ARM firmware) stages of the co-simulation:
    /// streaming distortion correction and Q9.7 transport encoding run
    /// chunked over worker shards via [`parallel_map`]. Both are per-event
    /// pure maps, so the device receives a bit-identical word stream and the
    /// co-simulation result is unchanged for any shard count. The PL-side
    /// device model itself stays serial — it models a single accelerator.
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The active PS-side parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// The EMVS configuration.
    pub fn config(&self) -> &EmvsConfig {
        &self.config
    }

    /// The accelerator configuration the device was built with.
    pub fn accelerator_config(&self) -> &AcceleratorConfig {
        self.device_ref().config()
    }

    /// The device model (for DSI readback and traffic inspection).
    pub fn device(&self) -> &EventorDevice {
        self.device_ref()
    }

    /// Lifetime statistics of the underlying device.
    pub fn device_stats(&self) -> DeviceStats {
        self.device_ref().stats()
    }

    /// The accelerator activity report of the last reconstruction.
    pub fn report(&self) -> CosimReport {
        self.report
    }

    /// Runs the co-simulated reconstruction — a batch wrapper over a
    /// streaming session with the [`CosimBackend`].
    ///
    /// The returned profile contains the *modelled* accelerator time for the
    /// FPGA stages (canonical projection, proportional projection + voting)
    /// rather than host wall-clock time, so it can be compared directly
    /// against the Table 3 Eventor column.
    ///
    /// # Errors
    ///
    /// Same error contract as [`crate::EventorPipeline::reconstruct`].
    pub fn reconstruct(
        &mut self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        if events.is_empty() {
            return Err(EmvsError::NoEvents);
        }
        // Backend construction only fails on config validation; check before
        // taking the device so a failure can never lose it.
        self.config.validate()?;
        // Lend the device to the backend for the run and take it back after,
        // so lifetime statistics survive across reconstructions.
        let device = self
            .device
            .take()
            .expect("device is present between reconstructions");
        let backend = CosimBackend::with_device(self.camera, &self.config, device, self.parallel)
            .expect("config validated above");
        let (result, backend) = reconstruct_with_backend_recovering(
            self.camera,
            self.config.clone(),
            backend,
            events,
            trajectory,
        );
        // Keep the last *successful* run's report, like the original loop
        // did — a failed run must not clobber it.
        if result.is_ok() {
            self.report = backend.report();
        }
        self.device = Some(backend.into_device());
        result
    }
}

/// [`reconstruct_with_backend`](eventor_emvs::reconstruct_with_backend) that
/// hands the backend back even on error —
/// needed because the cosim backend owns the device the pipeline must
/// recover.
fn reconstruct_with_backend_recovering(
    camera: CameraModel,
    config: EmvsConfig,
    backend: CosimBackend,
    events: &EventStream,
    trajectory: &Trajectory,
) -> (Result<EmvsOutput, EmvsError>, CosimBackend) {
    let mut driver = match eventor_emvs::SessionDriver::new(camera, config, backend) {
        Ok(driver) => driver.with_max_pending_events(usize::MAX),
        Err(_) => unreachable!("config validated by the pipeline constructor"),
    };
    let mut staged = driver.push_trajectory(trajectory);
    if staged.is_ok() {
        staged = driver.push_events(events.as_slice()).map(|_| ());
    }
    match staged {
        Ok(()) => driver.finish_with_backend(),
        Err(e) => (Err(e), driver.into_backend()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventorOptions, EventorPipeline};
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

    fn sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    fn config_for(seq: &SyntheticSequence) -> EmvsConfig {
        EmvsConfig::default()
            .with_depth_range(seq.depth_range.0, seq.depth_range.1)
            .with_depth_planes(60)
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cam = CameraModel::davis240_ideal();
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(CosimPipeline::new(cam, bad, AcceleratorConfig::default()).is_err());
        let bad_range = EmvsConfig::default().with_depth_range(2.0, 1.0);
        assert!(CosimPipeline::new(cam, bad_range, AcceleratorConfig::default()).is_err());
    }

    #[test]
    fn empty_stream_is_an_error() {
        let cam = CameraModel::davis240_ideal();
        let mut cosim =
            CosimPipeline::new(cam, EmvsConfig::default(), AcceleratorConfig::default()).unwrap();
        let traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 2);
        assert!(matches!(
            cosim.reconstruct(&EventStream::new(), &traj),
            Err(EmvsError::NoEvents)
        ));
    }

    #[test]
    fn cosim_matches_the_software_quantized_pipeline_bit_exactly() {
        let seq = sequence();
        let config = config_for(&seq);
        let software =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .unwrap();
        let mut cosim =
            CosimPipeline::new(seq.camera, config, AcceleratorConfig::default()).unwrap();

        let sw = software.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let hw = cosim.reconstruct(&seq.events, &seq.trajectory).unwrap();

        assert_eq!(sw.keyframes.len(), hw.keyframes.len());
        for (s, h) in sw.keyframes.iter().zip(&hw.keyframes) {
            assert_eq!(s.votes_cast, h.votes_cast, "vote counts diverged");
            assert_eq!(s.depth_map.valid_count(), h.depth_map.valid_count());
            assert_eq!(
                s.depth_map.depth_data(),
                h.depth_map.depth_data(),
                "depth maps diverged"
            );
        }
    }

    #[test]
    fn cosim_report_is_consistent_with_device_stats() {
        let seq = sequence();
        let mut cosim =
            CosimPipeline::new(seq.camera, config_for(&seq), AcceleratorConfig::default()).unwrap();
        let out = cosim.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let report = cosim.report();
        let stats = cosim.device_stats();
        assert_eq!(report.frames, stats.frames);
        assert_eq!(report.votes_applied, stats.votes_applied);
        assert_eq!(report.key_frames as usize, out.keyframes.len());
        assert!(report.accelerator_seconds > 0.0);
        assert!(report.mean_normal_frame_us > 0.0);
        assert!(report.mean_key_frame_us >= report.mean_normal_frame_us);
        assert_eq!(report.events_in, out.profile.events_processed);
        assert!(cosim.accelerator_config().num_depth_planes == cosim.config().num_depth_planes);
        // The activity-based energy accounting covers every executed frame.
        assert_eq!(report.energy.events, report.events_in);
        assert!(report.energy.total_j() > 0.0);
        assert!(report.energy.average_power_w() > 1.0 && report.energy.average_power_w() < 4.0);
        assert!((report.energy.seconds - report.accelerator_seconds).abs() < 1e-9);
    }

    #[test]
    fn device_stats_survive_a_failed_reconstruction() {
        let seq = sequence();
        let mut cosim =
            CosimPipeline::new(seq.camera, config_for(&seq), AcceleratorConfig::default()).unwrap();
        cosim.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let frames_before = cosim.device_stats().frames;
        assert!(frames_before > 0);
        // A trajectory that ends before the events do: the run fails, but the
        // device (and its lifetime statistics) must be recovered.
        let short = Trajectory::linear(
            Pose::identity(),
            Pose::from_translation(eventor_geom::Vec3::new(0.1, 0.0, 0.0)),
            -10.0,
            -9.0,
            4,
        );
        assert!(cosim.reconstruct(&seq.events, &short).is_err());
        assert!(cosim.device_stats().frames >= frames_before);
    }
}
