//! Hardware/software co-simulation: the host-side driver that runs the
//! reformulated EMVS dataflow on the functional device model of
//! `eventor-hwsim`.
//!
//! [`CosimPipeline`] plays the role of the ARM firmware in the prototype:
//! it performs the PS-side stages (streaming distortion correction, event
//! aggregation, per-frame `H_{Z0}` / `φ` computation, key-frame selection,
//! scene-structure detection and map merging) and drives the PL-side stages
//! (`𝒫{Z0}`, `𝒫{Z0;Zi}`, `𝒢`, `𝒱`) through the register/DMA interface of
//! [`EventorDevice`].
//!
//! Because the device datapath and the software datapath in
//! [`crate::EventorPipeline`] quantize with the same Table 1 formats and make
//! the same projection-missing judgements, the two produce **identical DSI
//! volumes** for identical inputs; the workspace integration tests assert
//! this bit-exact agreement, which is the co-verification argument of the
//! accelerator design.

use crate::parallel::{parallel_map, ParallelConfig};
use crate::quantized::quantize_event_pixel;
use eventor_dsi::{detect_structure, DepthPlanes, DsiVolume, PointCloud};
use eventor_emvs::{
    EmvsConfig, EmvsError, EmvsOutput, FrameGeometry, KeyframeReconstruction, KeyframeSelector,
    Stage, StageProfile,
};
use eventor_events::{aggregate, EventStream};
use eventor_geom::{CameraModel, Pose, Trajectory, Vec2};
use eventor_hwsim::{
    AcceleratorConfig, ActivityEnergyModel, DeviceStats, EnergyBreakdown, EventorDevice,
    FrameExecution, FrameJob, FrameKind, HomographyRegisters, PhiEntry,
};
use std::time::Duration;

/// Summary of the accelerator activity during one co-simulated
/// reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CosimReport {
    /// Frames executed on the device.
    pub frames: u64,
    /// Key frames executed on the device.
    pub key_frames: u64,
    /// Events shipped to the device.
    pub events_in: u64,
    /// Events dropped by the projection-missing judgement.
    pub events_dropped: u64,
    /// Votes applied to the DSI in device DRAM.
    pub votes_applied: u64,
    /// Total modelled accelerator busy time, seconds.
    pub accelerator_seconds: f64,
    /// Mean modelled latency of a normal frame, microseconds.
    pub mean_normal_frame_us: f64,
    /// Mean modelled latency of a key frame, microseconds.
    pub mean_key_frame_us: f64,
    /// Activity-based energy breakdown of the accelerator work (joules),
    /// accumulated over every executed frame.
    pub energy: EnergyBreakdown,
}

/// The co-simulated Eventor pipeline: PS-side firmware plus the functional
/// PL device model.
///
/// # Examples
///
/// ```no_run
/// use eventor_core::CosimPipeline;
/// use eventor_emvs::EmvsConfig;
/// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
/// use eventor_hwsim::AcceleratorConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
/// let config = EmvsConfig::default().with_depth_range(seq.depth_range.0, seq.depth_range.1);
/// let mut cosim = CosimPipeline::new(seq.camera, config, AcceleratorConfig::default())?;
/// let output = cosim.reconstruct(&seq.events, &seq.trajectory)?;
/// println!("accelerator applied {} votes", cosim.report().votes_applied);
/// println!("{} key frames", output.keyframes.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CosimPipeline {
    camera: CameraModel,
    config: EmvsConfig,
    device: EventorDevice,
    report: CosimReport,
    parallel: ParallelConfig,
}

impl CosimPipeline {
    /// Creates a co-simulation pipeline.
    ///
    /// The accelerator configuration is aligned with the EMVS configuration:
    /// frame size, plane count and sensor resolution are taken from
    /// `config` / `camera` so the device DSI matches the host's expectations.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations (same
    /// contract as [`crate::EventorPipeline::new`]).
    pub fn new(
        camera: CameraModel,
        config: EmvsConfig,
        accelerator: AcceleratorConfig,
    ) -> Result<Self, EmvsError> {
        if config.events_per_frame == 0 {
            return Err(EmvsError::InvalidConfig {
                reason: "events_per_frame must be positive".into(),
            });
        }
        if config.num_depth_planes < 2 {
            return Err(EmvsError::InvalidConfig {
                reason: "need at least two depth planes".into(),
            });
        }
        if config.depth_range.0 <= 0.0 || config.depth_range.1 <= config.depth_range.0 {
            return Err(EmvsError::InvalidConfig {
                reason: format!("invalid depth range {:?}", config.depth_range),
            });
        }
        let mut accelerator = accelerator;
        accelerator.events_per_frame = config.events_per_frame;
        accelerator.num_depth_planes = config.num_depth_planes;
        accelerator.sensor_width = camera.intrinsics.width as usize;
        accelerator.sensor_height = camera.intrinsics.height as usize;
        let device = EventorDevice::new(accelerator);
        Ok(Self {
            camera,
            config,
            device,
            report: CosimReport::default(),
            parallel: ParallelConfig::sequential(),
        })
    }

    /// Parallelizes the PS-side (ARM firmware) stages of the co-simulation:
    /// streaming distortion correction and Q9.7 transport encoding run
    /// chunked over worker shards via [`parallel_map`]. Both are per-event
    /// pure maps, so the device receives a bit-identical word stream and the
    /// co-simulation result is unchanged for any shard count. The PL-side
    /// device model itself stays serial — it models a single accelerator.
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The active PS-side parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// The EMVS configuration.
    pub fn config(&self) -> &EmvsConfig {
        &self.config
    }

    /// The accelerator configuration the device was built with.
    pub fn accelerator_config(&self) -> &AcceleratorConfig {
        self.device.config()
    }

    /// The device model (for DSI readback and traffic inspection).
    pub fn device(&self) -> &EventorDevice {
        &self.device
    }

    /// Lifetime statistics of the underlying device.
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// The accelerator activity report of the last reconstruction.
    pub fn report(&self) -> CosimReport {
        self.report
    }

    /// Runs the co-simulated reconstruction.
    ///
    /// The returned profile contains the *modelled* accelerator time for the
    /// FPGA stages (canonical projection, proportional projection + voting)
    /// rather than host wall-clock time, so it can be compared directly
    /// against the Table 3 Eventor column.
    ///
    /// # Errors
    ///
    /// Same error contract as [`crate::EventorPipeline::reconstruct`].
    pub fn reconstruct(
        &mut self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        if events.is_empty() {
            return Err(EmvsError::NoEvents);
        }
        let mut profile = StageProfile::new();
        let fabric = self.device.config().fabric_clock;

        // PS side: streaming distortion correction + Q9.7 transport encoding,
        // chunked over the configured worker shards (bit-identical for any
        // shard count — both stages are per-event pure maps).
        let transported: Vec<u32> = parallel_map(events.as_slice(), self.parallel.shards(), |e| {
            let p = self
                .camera
                .undistort_pixel(Vec2::new(e.x as f64, e.y as f64));
            quantize_event_pixel(p).to_word()
        });

        // PS side: aggregation into event frames.
        let frames = aggregate(events, self.config.events_per_frame);

        let planes = DepthPlanes::uniform_inverse_depth(
            self.config.depth_range.0,
            self.config.depth_range.1,
            self.config.num_depth_planes,
        )?;
        let mut selector = KeyframeSelector::new(
            self.config.keyframe_distance,
            self.config.min_frames_per_keyframe,
        );
        let mut reference: Option<Pose> = None;
        let mut keyframes: Vec<KeyframeReconstruction> = Vec::new();
        let mut global_map = PointCloud::new();
        let mut frames_in_keyframe = 0usize;
        let mut events_in_keyframe = 0usize;
        let mut votes_in_keyframe = 0u64;
        let mut next_is_key = true;
        let mut report = CosimReport::default();
        let mut normal_us_sum = 0.0;
        let mut key_us_sum = 0.0;

        for frame in &frames {
            let Some(timestamp) = frame.timestamp() else {
                continue;
            };
            let pose = trajectory.pose_at(timestamp)?;

            match reference {
                None => reference = Some(pose),
                Some(ref ref_pose) => {
                    if selector.should_switch(ref_pose, &pose) {
                        let reconstruction = self.finalize_keyframe(
                            &planes,
                            ref_pose,
                            frames_in_keyframe,
                            events_in_keyframe,
                            votes_in_keyframe,
                        )?;
                        global_map.merge(&reconstruction.local_cloud);
                        keyframes.push(reconstruction);
                        profile.keyframes += 1;
                        reference = Some(pose);
                        selector.reset();
                        frames_in_keyframe = 0;
                        events_in_keyframe = 0;
                        votes_in_keyframe = 0;
                        next_is_key = true;
                    }
                }
            }
            let ref_pose = reference.expect("reference pose set above");

            // PS side: per-frame geometry (H_Z0 and φ), pre-computed before
            // the PL is started.
            let geometry =
                FrameGeometry::compute(&ref_pose, &pose, &self.camera.intrinsics, &planes)?;
            let job = Self::frame_job(
                &geometry,
                &transported,
                frame.index * self.config.events_per_frame,
                frame.len(),
                if next_is_key {
                    FrameKind::Key
                } else {
                    FrameKind::Normal
                },
            );
            next_is_key = false;

            // PL side: run the frame on the device.
            let execution = self
                .device
                .run_frame(job)
                .ok_or_else(|| EmvsError::InvalidConfig {
                    reason: "accelerator rejected the staged frame".into(),
                })?;
            Self::charge_profile(&mut profile, &execution, fabric);
            Self::charge_report(
                &mut report,
                &execution,
                fabric,
                &mut normal_us_sum,
                &mut key_us_sum,
            );
            report.energy.accumulate(
                &ActivityEnergyModel::default().frame_energy(&execution, self.device.config()),
            );
            votes_in_keyframe += execution.votes_applied;

            selector.register_frame();
            frames_in_keyframe += 1;
            events_in_keyframe += frame.len();
            profile.frames_processed += 1;
            profile.events_processed += frame.len() as u64;
        }

        if let Some(ref_pose) = reference {
            if frames_in_keyframe > 0 {
                let reconstruction = self.finalize_keyframe(
                    &planes,
                    &ref_pose,
                    frames_in_keyframe,
                    events_in_keyframe,
                    votes_in_keyframe,
                )?;
                global_map.merge(&reconstruction.local_cloud);
                keyframes.push(reconstruction);
                profile.keyframes += 1;
            }
        }

        report.mean_normal_frame_us = if report.frames > report.key_frames {
            normal_us_sum / (report.frames - report.key_frames) as f64
        } else {
            0.0
        };
        report.mean_key_frame_us = if report.key_frames > 0 {
            key_us_sum / report.key_frames as f64
        } else {
            0.0
        };
        self.report = report;
        Ok(EmvsOutput {
            keyframes,
            global_map,
            profile,
        })
    }

    /// Builds the per-frame job shipped to the device: the event words of the
    /// frame plus the quantized `H_{Z0}` and `φ` parameter payloads.
    fn frame_job(
        geometry: &FrameGeometry,
        transported: &[u32],
        first_event: usize,
        len: usize,
        kind: FrameKind,
    ) -> FrameJob {
        let homography_words =
            HomographyRegisters::from_matrix(&geometry.homography.h.m).raw_words();
        let phi = &geometry.coefficients;
        let phi_words: Vec<[i32; 3]> = (0..phi.len())
            .map(|i| PhiEntry::from_f64(phi.scale[i], phi.offset_x[i], phi.offset_y[i]).raw_words())
            .collect();
        FrameJob {
            event_words: transported[first_event..first_event + len].to_vec(),
            homography_words,
            phi_words,
            kind,
        }
    }

    fn charge_profile(
        profile: &mut StageProfile,
        execution: &FrameExecution,
        fabric: eventor_hwsim::ClockDomain,
    ) {
        let canonical =
            Duration::from_secs_f64(fabric.cycles_to_seconds(execution.canonical_cycles));
        let proportional =
            Duration::from_secs_f64(fabric.cycles_to_seconds(execution.proportional_cycles));
        profile.add(Stage::CanonicalProjection, canonical);
        profile.add(Stage::ProportionalProjection, proportional / 2);
        profile.add(Stage::VoteDsi, proportional - proportional / 2);
    }

    fn charge_report(
        report: &mut CosimReport,
        execution: &FrameExecution,
        fabric: eventor_hwsim::ClockDomain,
        normal_us_sum: &mut f64,
        key_us_sum: &mut f64,
    ) {
        report.frames += 1;
        report.events_in += execution.events_in;
        report.events_dropped += execution.events_dropped;
        report.votes_applied += execution.votes_applied;
        let us = fabric.cycles_to_us(execution.total_cycles);
        report.accelerator_seconds += us * 1e-6;
        match execution.kind {
            FrameKind::Key => {
                report.key_frames += 1;
                *key_us_sum += us;
            }
            FrameKind::Normal => *normal_us_sum += us,
        }
    }

    /// Reads the DSI back from device DRAM and runs the PS-side detection and
    /// point-cloud conversion.
    fn finalize_keyframe(
        &self,
        planes: &DepthPlanes,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        votes_cast: u64,
    ) -> Result<KeyframeReconstruction, EmvsError> {
        let dram = self.device.dsi();
        let dsi: DsiVolume<u16> = DsiVolume::from_scores(
            dram.width(),
            dram.height(),
            planes.clone(),
            dram.scores().to_vec(),
            votes_cast,
        )?;
        let depth_map = detect_structure(&dsi, &self.config.detection);
        let local_cloud =
            PointCloud::from_depth_map(&depth_map, &self.camera.intrinsics, reference_pose);
        Ok(KeyframeReconstruction {
            reference_pose: *reference_pose,
            depth_map,
            local_cloud,
            frames_used,
            events_used,
            votes_cast,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventorOptions, EventorPipeline};
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

    fn sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    fn config_for(seq: &SyntheticSequence) -> EmvsConfig {
        EmvsConfig::default()
            .with_depth_range(seq.depth_range.0, seq.depth_range.1)
            .with_depth_planes(60)
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cam = CameraModel::davis240_ideal();
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(CosimPipeline::new(cam, bad, AcceleratorConfig::default()).is_err());
        let bad_range = EmvsConfig::default().with_depth_range(2.0, 1.0);
        assert!(CosimPipeline::new(cam, bad_range, AcceleratorConfig::default()).is_err());
    }

    #[test]
    fn empty_stream_is_an_error() {
        let cam = CameraModel::davis240_ideal();
        let mut cosim =
            CosimPipeline::new(cam, EmvsConfig::default(), AcceleratorConfig::default()).unwrap();
        let traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 2);
        assert!(matches!(
            cosim.reconstruct(&EventStream::new(), &traj),
            Err(EmvsError::NoEvents)
        ));
    }

    #[test]
    fn cosim_matches_the_software_quantized_pipeline_bit_exactly() {
        let seq = sequence();
        let config = config_for(&seq);
        let software =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .unwrap();
        let mut cosim =
            CosimPipeline::new(seq.camera, config, AcceleratorConfig::default()).unwrap();

        let sw = software.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let hw = cosim.reconstruct(&seq.events, &seq.trajectory).unwrap();

        assert_eq!(sw.keyframes.len(), hw.keyframes.len());
        for (s, h) in sw.keyframes.iter().zip(&hw.keyframes) {
            assert_eq!(s.votes_cast, h.votes_cast, "vote counts diverged");
            assert_eq!(s.depth_map.valid_count(), h.depth_map.valid_count());
            assert_eq!(
                s.depth_map.depth_data(),
                h.depth_map.depth_data(),
                "depth maps diverged"
            );
        }
    }

    #[test]
    fn cosim_report_is_consistent_with_device_stats() {
        let seq = sequence();
        let mut cosim =
            CosimPipeline::new(seq.camera, config_for(&seq), AcceleratorConfig::default()).unwrap();
        let out = cosim.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let report = cosim.report();
        let stats = cosim.device_stats();
        assert_eq!(report.frames, stats.frames);
        assert_eq!(report.votes_applied, stats.votes_applied);
        assert_eq!(report.key_frames as usize, out.keyframes.len());
        assert!(report.accelerator_seconds > 0.0);
        assert!(report.mean_normal_frame_us > 0.0);
        assert!(report.mean_key_frame_us >= report.mean_normal_frame_us);
        assert_eq!(report.events_in, out.profile.events_processed);
        assert!(cosim.accelerator_config().num_depth_planes == cosim.config().num_depth_planes);
        // The activity-based energy accounting covers every executed frame.
        assert_eq!(report.energy.events, report.events_in);
        assert!(report.energy.total_j() > 0.0);
        assert!(report.energy.average_power_w() > 1.0 && report.energy.average_power_w() < 4.0);
        assert!((report.energy.seconds - report.accelerator_seconds).abs() < 1e-9);
    }
}
