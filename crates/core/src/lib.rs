//! # eventor-core
//!
//! The paper's primary contribution, reproduced as a library: **Eventor**, an
//! algorithm/hardware co-designed event-based monocular multi-view stereo
//! (EMVS) accelerator.
//!
//! The crate provides:
//!
//! * [`EventorPipeline`] — the hardware-friendly *reformulated* EMVS dataflow
//!   (streaming distortion correction, pre-computed proportional
//!   coefficients, nearest voting, Table 1 hybrid quantization), with each
//!   approximation individually switchable through [`EventorOptions`],
//! * [`QuantizedHomography`] / [`QuantizedCoefficients`] — the fixed-point
//!   datapath executed by the `PE_Z0` / `PE_Zi` processing elements: thin
//!   wrappers (raw-word storage) over the bit-true integer kernel in
//!   `eventor_fixed::kernel`, which the `eventor-hwsim` device model wraps
//!   too — co-simulation agreement holds by construction,
//! * [`AcceleratorRun`] — binding a reconstruction workload to the
//!   `eventor-hwsim` hardware model to obtain Table 3 runtimes, event rates,
//!   power and the energy-efficiency comparison against the Intel i5
//!   baseline,
//! * [`run_variant`] / [`PipelineVariant`] — the accuracy-comparison harness
//!   behind Fig. 4a, Fig. 4b and Fig. 7a,
//! * [`EventorSession`] — the unified **streaming** API: push-based
//!   incremental ingestion (`push_pose` / `push_events` / `poll`) over a
//!   pluggable [`ExecutionBackend`] ([`SoftwareBackend`],
//!   [`ShardedBackend`], [`CosimBackend`]), with optional incremental
//!   `eventor-map` fusion. The batch `reconstruct()` entry points are thin
//!   wrappers over it.
//!
//! ## Quick start
//!
//! ```no_run
//! use eventor_core::{config_for_sequence, EventorOptions, EventorPipeline};
//! use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sequence = SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())?;
//! let config = config_for_sequence(&sequence, 100);
//! let pipeline = EventorPipeline::new(sequence.camera, config, EventorOptions::accelerator())?;
//! let output = pipeline.reconstruct(&sequence.events, &sequence.trajectory)?;
//! let depth_map = &output.keyframes[0].depth_map;
//! println!("estimated {} semi-dense pixels", depth_map.valid_count());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod accel;
mod checkpoint;
mod compare;
mod cosim;
pub mod parallel;
mod pipeline;
mod quantized;
mod session;

pub use accel::AcceleratorRun;
pub use checkpoint::SessionCheckpoint;
pub use compare::{
    config_for_sequence, run_variant, run_variants, PipelineVariant, VariantAccuracy,
};
pub use cosim::{CosimBackend, CosimPipeline, CosimReport};
pub use parallel::{parallel_map, ParallelConfig, QuantizedFrameParams};
pub use pipeline::{EventorOptions, EventorPipeline};
pub use quantized::{
    quantize_event_pixel, QuantizedCoefficients, QuantizedHomography, COORD_QUANTIZATION_ERROR,
};
pub use session::{EventorSession, SessionBuilder, SessionOutput, ShardedBackend, SoftwareBackend};
// The session contract itself lives in `eventor-emvs`; re-export it so
// downstream users of the session API need only this crate.
pub use eventor_emvs::{
    ExecutionBackend, FrameWork, SessionDriver, SessionEvent, DEFAULT_MAX_PENDING_EVENTS,
    ENGINE_SPILL_EVENTS,
};

#[cfg(test)]
mod cosim_proptests {
    //! Golden-model-versus-device properties: the software quantized datapath
    //! (this crate) and the functional hardware datapath (`eventor-hwsim`)
    //! must agree operation by operation, not just end to end.

    use super::*;
    use eventor_fixed::PackedCoord;
    use eventor_geom::{
        CameraIntrinsics, CanonicalHomography, Pose, ProportionalCoefficients, Vec3,
    };
    use eventor_hwsim::{HomographyRegisters, PeZ0Datapath, PeZiArrayDatapath, PhiEntry};
    use proptest::prelude::*;

    fn geometry(
        tx: f64,
        ty: f64,
        tz: f64,
        n_planes: usize,
    ) -> Option<(CanonicalHomography, ProportionalCoefficients, Vec<f64>)> {
        let intrinsics = CameraIntrinsics::davis240_default();
        let reference = Pose::identity();
        let camera = Pose::from_translation(Vec3::new(tx, ty, tz));
        let depths: Vec<f64> = (0..n_planes)
            .map(|i| {
                let t = i as f64 / (n_planes - 1) as f64;
                1.0 / ((1.0 - t) / 1.0 + t / 5.0)
            })
            .collect();
        let z0 = *depths.last().unwrap();
        let h = CanonicalHomography::compute(&reference, &camera, &intrinsics, z0).ok()?;
        let phi = ProportionalCoefficients::compute(&reference, &camera, &intrinsics, &depths, z0)
            .ok()?;
        Some((h, phi, depths))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn pe_z0_device_matches_quantized_homography(
            tx in -0.15..0.15f64,
            ty in -0.15..0.15f64,
            tz in -0.05..0.05f64,
            px in 0.0..239.0f64,
            py in 0.0..179.0f64,
        ) {
            let Some((h, _, _)) = geometry(tx, ty, tz, 20) else { return Ok(()) };
            let golden = QuantizedHomography::from_homography(&h);
            let registers = HomographyRegisters::from_matrix(&h.h.m);
            let mut device = PeZ0Datapath::new();
            let coord = PackedCoord::from_f64(px, py);
            let sw = golden.project(coord);
            let hw = device.project(&registers, coord.to_word());
            prop_assert_eq!(sw, hw, "canonical projection diverged at ({}, {})", px, py);
        }

        #[test]
        fn pe_zi_device_matches_quantized_coefficients(
            tx in -0.15..0.15f64,
            ty in -0.15..0.15f64,
            px in 0.0..239.0f64,
            py in 0.0..179.0f64,
            n_planes in 4usize..40,
        ) {
            let Some((h, phi, _)) = geometry(tx, ty, 0.0, n_planes) else { return Ok(()) };
            let golden_h = QuantizedHomography::from_homography(&h);
            let golden_phi = QuantizedCoefficients::from_coefficients(&phi);
            let Some(canonical) = golden_h.project(PackedCoord::from_f64(px, py)) else {
                return Ok(());
            };

            let entries: Vec<PhiEntry> = (0..phi.len())
                .map(|i| PhiEntry::from_f64(phi.scale[i], phi.offset_x[i], phi.offset_y[i]))
                .collect();
            let mut array = PeZiArrayDatapath::new(entries, 2, 240, 180);
            let votes = array.generate_votes(canonical);

            // The device's vote list must be exactly the in-sensor subset the
            // golden model produces, in plane order.
            let mut expected = Vec::new();
            for i in 0..golden_phi.len() {
                if let Some((x, y)) = golden_phi.transfer_nearest(canonical, i, 240, 180).address() {
                    expected.push((x, y, i as u16));
                }
            }
            let got: Vec<(u16, u16, u16)> = votes.iter().map(|v| (v.x, v.y, v.plane)).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn homography_register_quantization_matches_golden_entries(
            tx in -0.2..0.2f64,
            ty in -0.2..0.2f64,
            tz in -0.05..0.05f64,
        ) {
            let Some((h, _, _)) = geometry(tx, ty, tz, 10) else { return Ok(()) };
            let golden = QuantizedHomography::from_homography(&h);
            let registers = HomographyRegisters::from_matrix(&h.h.m);
            for row in 0..3 {
                for col in 0..3 {
                    prop_assert!(
                        (golden.entry(row, col) - registers.entry(row, col)).abs() < 1e-12,
                        "H[{}][{}] quantized differently", row, col
                    );
                }
            }
        }
    }
}
