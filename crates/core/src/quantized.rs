//! The quantized back-projection datapath: the golden software model of the
//! arithmetic the Eventor FPGA performs, expressed with the fixed-point
//! formats of Table 1.
//!
//! Quantization is modelled faithfully at the *data* level: every value is
//! snapped to its fixed-point grid (Q9.7 event/canonical coordinates, Q11.21
//! homography and coefficients, integer plane coordinates and DSI scores)
//! exactly where the hardware would store or transfer it — and, since the
//! bit-true kernel refactor, the arithmetic *between* those storage points
//! is integer too: [`QuantizedHomography`] and [`QuantizedCoefficients`]
//! store raw fixed-point words and delegate every MAC, normalization,
//! saturation judgement and nearest-voxel rounding to
//! [`eventor_fixed::kernel`] — the same functions the `eventor-hwsim`
//! device model executes, so golden-model ↔ device agreement holds by
//! construction (ARCHITECTURE.md contract 4.1).

use eventor_fixed::kernel::{self, PhiWords};
use eventor_fixed::{PackedCoord, PlaneCoord, Q11p21};
use eventor_geom::{CanonicalHomography, ProportionalCoefficients, Vec2};

/// The homography `H_{Z0}` quantized to Q11.21, stored as the nine raw bus
/// words of the `Buf_H` register bank (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedHomography {
    words: [i32; 9],
}

impl QuantizedHomography {
    /// Quantizes a full-precision canonical homography.
    pub fn from_homography(h: &CanonicalHomography) -> Self {
        Self {
            words: kernel::quantize_homography(&h.h.m),
        }
    }

    /// The quantized entry at `(row, col)` as `f64` (inspection exit point).
    pub fn entry(&self, row: usize, col: usize) -> f64 {
        Q11p21::from_raw(self.words[row * 3 + col]).to_f64()
    }

    /// The nine raw Q11.21 words in row-major order — the hoisted per-frame
    /// parameter block the hot loops consume directly.
    #[inline]
    pub fn raw_words(&self) -> [i32; 9] {
        self.words
    }

    /// Applies the quantized homography to a quantized event coordinate — the
    /// operation `PE_Z0` performs (wide-MAC plus normalization) — and
    /// re-quantizes the result to Q9.7, entirely in integer arithmetic
    /// ([`kernel::project_z0`]).
    ///
    /// Returns `None` when the projection-missing judgement drops the event:
    /// a zero normalization denominator, or a canonical coordinate that does
    /// not fit the Q9.7 transport format (saturating it would corrupt every
    /// subsequent plane transfer).
    #[inline]
    pub fn project(&self, coord: PackedCoord) -> Option<PackedCoord> {
        kernel::project_z0(&self.words, coord)
    }
}

/// The proportional back-projection coefficients `φ` quantized to Q11.21,
/// stored as raw `Buf_P` words per depth plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedCoefficients {
    phi: Vec<PhiWords>,
}

impl QuantizedCoefficients {
    /// Quantizes full-precision proportional coefficients.
    pub fn from_coefficients(phi: &ProportionalCoefficients) -> Self {
        Self {
            phi: (0..phi.len())
                .map(|i| PhiWords::from_f64(phi.scale[i], phi.offset_x[i], phi.offset_y[i]))
                .collect(),
        }
    }

    /// Number of depth planes covered.
    pub fn len(&self) -> usize {
        self.phi.len()
    }

    /// Whether there are no planes.
    pub fn is_empty(&self) -> bool {
        self.phi.is_empty()
    }

    /// The per-plane raw Q11.21 word triples — the hoisted per-frame
    /// parameter table the hot loops consume directly.
    #[inline]
    pub fn words(&self) -> &[PhiWords] {
        &self.phi
    }

    /// Transfers a quantized canonical point to depth plane `i` and rounds it
    /// to the nearest voxel — the scalar-MAC plus Nearest Voxel Finder path
    /// of `PE_Zi`, entirely in integer arithmetic
    /// ([`kernel::transfer_nearest`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn transfer_nearest(
        &self,
        canonical: PackedCoord,
        i: usize,
        width: u32,
        height: u32,
    ) -> PlaneCoord {
        kernel::transfer_nearest(&self.phi[i], canonical, width, height)
    }

    /// Transfers a quantized canonical point to depth plane `i`, returning the
    /// sub-pixel position (used by the bilinear-voting ablation). The integer
    /// MAC result is decoded exactly to `f64` — a quantization exit point,
    /// not an arithmetic step ([`kernel::transfer_subpixel`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn transfer_subpixel(&self, canonical: PackedCoord, i: usize) -> Vec2 {
        let (x, y) = kernel::transfer_subpixel(&self.phi[i], canonical);
        Vec2::new(x, y)
    }
}

/// Quantizes a raw (already undistorted) event pixel to the Q9.7 transport
/// format used on the AXI bus.
pub fn quantize_event_pixel(pixel: Vec2) -> PackedCoord {
    PackedCoord::from_f64(pixel.x, pixel.y)
}

/// Maximum absolute error introduced when representing a pixel coordinate in
/// Q9.7 (half an LSB in each axis).
pub const COORD_QUANTIZATION_ERROR: f64 = 0.5 / 128.0;

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_fixed::Q9p7;
    use eventor_geom::{CameraIntrinsics, Pose, Vec3};

    fn setup() -> (CanonicalHomography, ProportionalCoefficients, Vec<f64>) {
        let k = CameraIntrinsics::davis240_default();
        let reference = Pose::identity();
        let camera = Pose::from_translation(Vec3::new(0.07, -0.02, 0.03));
        let depths: Vec<f64> = (0..50)
            .map(|i| {
                let t = i as f64 / 49.0;
                1.0 / ((1.0 - t) / 1.0 + t / 4.0)
            })
            .collect();
        let h = CanonicalHomography::compute(&reference, &camera, &k, depths[0]).unwrap();
        let phi =
            ProportionalCoefficients::compute(&reference, &camera, &k, &depths, depths[0]).unwrap();
        (h, phi, depths)
    }

    #[test]
    fn quantized_homography_is_close_to_float() {
        let (h, _, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        for i in 0..3 {
            for j in 0..3 {
                assert!((qh.entry(i, j) - h.h.m[i][j]).abs() < 1e-5);
            }
        }
        // The raw words are exactly the per-entry Q11.21 quantization.
        let words = qh.raw_words();
        for (k, &w) in words.iter().enumerate() {
            assert_eq!(w, Q11p21::from_f64(h.h.m[k / 3][k % 3]).raw());
        }
    }

    #[test]
    fn quantized_projection_stays_within_a_fraction_of_a_pixel() {
        let (h, _, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        for &(x, y) in &[(10.0, 10.0), (120.0, 90.0), (230.0, 170.0), (57.0, 133.0)] {
            let exact = h.project(Vec2::new(x, y)).unwrap();
            let quant = qh.project(PackedCoord::from_f64(x, y)).unwrap();
            let err =
                ((quant.x_f64() - exact.x).powi(2) + (quant.y_f64() - exact.y).powi(2)).sqrt();
            assert!(err < 0.05, "pixel ({x},{y}): quantized error {err}");
        }
    }

    #[test]
    fn quantized_transfer_matches_float_transfer_within_rounding() {
        let (h, phi, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        let qphi = QuantizedCoefficients::from_coefficients(&phi);
        assert_eq!(qphi.len(), phi.len());
        assert!(!qphi.is_empty());
        let px = Vec2::new(140.0, 70.0);
        let exact_canonical = h.project(px).unwrap();
        let quant_canonical = qh.project(quantize_event_pixel(px)).unwrap();
        for i in 0..qphi.len() {
            let exact = phi.transfer(exact_canonical, i);
            let sub = qphi.transfer_subpixel(quant_canonical, i);
            assert!((sub - exact).norm() < 0.1, "plane {i}: {sub} vs {exact}");
            // Nearest voxel agrees with rounding the float transfer except in
            // rare half-pixel ties.
            let nearest = qphi.transfer_nearest(quant_canonical, i, 240, 180);
            if let Some((nx, ny)) = nearest.address() {
                assert!((nx as f64 - exact.x.round()).abs() <= 1.0);
                assert!((ny as f64 - exact.y.round()).abs() <= 1.0);
            }
        }
    }

    #[test]
    fn out_of_sensor_transfers_are_missing() {
        let (h, phi, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        let qphi = QuantizedCoefficients::from_coefficients(&phi);
        // A pixel far outside the sensor maps outside every plane.
        let coord = qh.project(PackedCoord::from_f64(5000.0, 5000.0));
        if let Some(c) = coord {
            // Saturated Q9.7 coordinates land outside the 240x180 sensor.
            assert_eq!(qphi.transfer_nearest(c, 0, 240, 180), PlaneCoord::Missing);
        }
        // In-range pixels project; canonical projections outside the Q9.7
        // range are dropped (projection-missing judgement) rather than
        // saturated.
        assert!(qh.project(PackedCoord::from_f64(120.0, 90.0)).is_some());
        let far_out = qh.project(PackedCoord::from_f64(255.9, 179.0));
        if let Some(c) = far_out {
            assert!(c.x_f64().abs() <= Q9p7::MAX_MAGNITUDE);
        }
    }

    #[test]
    fn event_pixel_quantization_error_bound() {
        let p = Vec2::new(123.456, 78.901);
        let q = quantize_event_pixel(p);
        assert!((q.x_f64() - p.x).abs() <= COORD_QUANTIZATION_ERROR);
        assert!((q.y_f64() - p.y).abs() <= COORD_QUANTIZATION_ERROR);
    }
}
