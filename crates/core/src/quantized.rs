//! The quantized back-projection datapath: the arithmetic the Eventor FPGA
//! performs, expressed with the fixed-point formats of Table 1.
//!
//! Quantization is modelled faithfully at the *data* level: every value is
//! snapped to its fixed-point grid (Q9.7 event/canonical coordinates, Q11.21
//! homography and coefficients, integer plane coordinates and DSI scores)
//! exactly where the hardware would store or transfer it. The arithmetic
//! between those storage points is carried out in `f64`, which upper-bounds
//! the precision of the RTL datapath's wide accumulators.

use eventor_fixed::{PackedCoord, PlaneCoord, Q11p21};
use eventor_geom::{CanonicalHomography, ProportionalCoefficients, Vec2};

/// The homography `H_{Z0}` quantized to Q11.21 entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizedHomography {
    entries: [[Q11p21; 3]; 3],
}

impl QuantizedHomography {
    /// Quantizes a full-precision canonical homography.
    pub fn from_homography(h: &CanonicalHomography) -> Self {
        let mut entries = [[Q11p21::zero(); 3]; 3];
        for (i, row) in entries.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = Q11p21::from_f64(h.h.m[i][j]);
            }
        }
        Self { entries }
    }

    /// The quantized entry at `(row, col)` as `f64`.
    pub fn entry(&self, row: usize, col: usize) -> f64 {
        self.entries[row][col].to_f64()
    }

    /// Applies the quantized homography to a quantized event coordinate — the
    /// operation `PE_Z0` performs (matrix-vector MAC plus normalization) —
    /// and quantizes the result to Q9.7.
    ///
    /// Returns `None` when the point maps to infinity (normalization by a
    /// near-zero denominator), mirroring the projection-missing judgement.
    pub fn project(&self, coord: PackedCoord) -> Option<PackedCoord> {
        Self::project_hoisted(&self.entries_f64(), coord)
    }

    /// The quantized entries as an `f64` matrix, for hoisting the fixed-point
    /// decode out of per-event loops (the parallel voting engine converts
    /// once per frame instead of nine times per event).
    #[inline]
    pub fn entries_f64(&self) -> [[f64; 3]; 3] {
        let mut m = [[0.0; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = self.entries[i][j].to_f64();
            }
        }
        m
    }

    /// [`QuantizedHomography::project`] on a pre-hoisted entry matrix
    /// (obtained from [`QuantizedHomography::entries_f64`]). This *is* the
    /// projection implementation — `project` delegates here — so the hoisted
    /// fast path of the parallel engine cannot drift from the golden model.
    #[inline]
    pub fn project_hoisted(h: &[[f64; 3]; 3], coord: PackedCoord) -> Option<PackedCoord> {
        let x = coord.x_f64();
        let y = coord.y_f64();
        let w = h[2][0] * x + h[2][1] * y + h[2][2];
        if w.abs() < 1e-9 {
            return None;
        }
        let px = (h[0][0] * x + h[0][1] * y + h[0][2]) / w;
        let py = (h[1][0] * x + h[1][1] * y + h[1][2]) / w;
        if !px.is_finite() || !py.is_finite() {
            return None;
        }
        // Projection-missing judgement: canonical coordinates that do not fit
        // the Q9.7 transport format would saturate and corrupt every
        // subsequent plane transfer, so the hardware drops the event instead.
        const Q9P7_MAX: f64 = 255.9921875;
        if px.abs() > Q9P7_MAX || py.abs() > Q9P7_MAX {
            return None;
        }
        Some(PackedCoord::from_f64(px, py))
    }
}

/// The proportional back-projection coefficients `φ` quantized to Q11.21.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedCoefficients {
    scale: Vec<Q11p21>,
    offset_x: Vec<Q11p21>,
    offset_y: Vec<Q11p21>,
}

impl QuantizedCoefficients {
    /// Quantizes full-precision proportional coefficients.
    pub fn from_coefficients(phi: &ProportionalCoefficients) -> Self {
        Self {
            scale: phi.scale.iter().map(|&v| Q11p21::from_f64(v)).collect(),
            offset_x: phi.offset_x.iter().map(|&v| Q11p21::from_f64(v)).collect(),
            offset_y: phi.offset_y.iter().map(|&v| Q11p21::from_f64(v)).collect(),
        }
    }

    /// Number of depth planes covered.
    pub fn len(&self) -> usize {
        self.scale.len()
    }

    /// Whether there are no planes.
    pub fn is_empty(&self) -> bool {
        self.scale.is_empty()
    }

    /// Transfers a quantized canonical point to depth plane `i` and rounds it
    /// to the nearest voxel — the scalar-MAC plus Nearest Voxel Finder path
    /// of `PE_Zi`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn transfer_nearest(
        &self,
        canonical: PackedCoord,
        i: usize,
        width: u32,
        height: u32,
    ) -> PlaneCoord {
        let (x, y) = Self::transfer_hoisted(
            self.scale[i].to_f64(),
            self.offset_x[i].to_f64(),
            self.offset_y[i].to_f64(),
            canonical.x_f64(),
            canonical.y_f64(),
        );
        PlaneCoord::from_projection(x, y, width, height)
    }

    /// Transfers a quantized canonical point to depth plane `i`, returning the
    /// sub-pixel position (used by the bilinear-voting ablation).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn transfer_subpixel(&self, canonical: PackedCoord, i: usize) -> Vec2 {
        let (x, y) = Self::transfer_hoisted(
            self.scale[i].to_f64(),
            self.offset_x[i].to_f64(),
            self.offset_y[i].to_f64(),
            canonical.x_f64(),
            canonical.y_f64(),
        );
        Vec2::new(x, y)
    }

    /// The scalar-MAC of `PE_Zi` on pre-hoisted `f64` coefficients — the
    /// single implementation behind [`Self::transfer_nearest`] and
    /// [`Self::transfer_subpixel`], exposed so the parallel engine's hoisted
    /// per-frame coefficient tables produce bit-identical transfers.
    #[inline]
    pub fn transfer_hoisted(
        scale: f64,
        offset_x: f64,
        offset_y: f64,
        cx: f64,
        cy: f64,
    ) -> (f64, f64) {
        (scale * cx + offset_x, scale * cy + offset_y)
    }

    /// The per-plane coefficients decoded to `f64` as `(scale, offset_x,
    /// offset_y)` triples, hoisted once per frame by the parallel engine.
    pub fn hoisted(&self) -> Vec<(f64, f64, f64)> {
        (0..self.len())
            .map(|i| {
                (
                    self.scale[i].to_f64(),
                    self.offset_x[i].to_f64(),
                    self.offset_y[i].to_f64(),
                )
            })
            .collect()
    }
}

/// Quantizes a raw (already undistorted) event pixel to the Q9.7 transport
/// format used on the AXI bus.
pub fn quantize_event_pixel(pixel: Vec2) -> PackedCoord {
    PackedCoord::from_f64(pixel.x, pixel.y)
}

/// Maximum absolute error introduced when representing a pixel coordinate in
/// Q9.7 (half an LSB in each axis).
pub const COORD_QUANTIZATION_ERROR: f64 = 0.5 / 128.0;

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_geom::{CameraIntrinsics, Pose, Vec3};

    fn setup() -> (CanonicalHomography, ProportionalCoefficients, Vec<f64>) {
        let k = CameraIntrinsics::davis240_default();
        let reference = Pose::identity();
        let camera = Pose::from_translation(Vec3::new(0.07, -0.02, 0.03));
        let depths: Vec<f64> = (0..50)
            .map(|i| {
                let t = i as f64 / 49.0;
                1.0 / ((1.0 - t) / 1.0 + t / 4.0)
            })
            .collect();
        let h = CanonicalHomography::compute(&reference, &camera, &k, depths[0]).unwrap();
        let phi =
            ProportionalCoefficients::compute(&reference, &camera, &k, &depths, depths[0]).unwrap();
        (h, phi, depths)
    }

    #[test]
    fn quantized_homography_is_close_to_float() {
        let (h, _, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        for i in 0..3 {
            for j in 0..3 {
                assert!((qh.entry(i, j) - h.h.m[i][j]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn quantized_projection_stays_within_a_fraction_of_a_pixel() {
        let (h, _, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        for &(x, y) in &[(10.0, 10.0), (120.0, 90.0), (230.0, 170.0), (57.0, 133.0)] {
            let exact = h.project(Vec2::new(x, y)).unwrap();
            let quant = qh.project(PackedCoord::from_f64(x, y)).unwrap();
            let err =
                ((quant.x_f64() - exact.x).powi(2) + (quant.y_f64() - exact.y).powi(2)).sqrt();
            assert!(err < 0.05, "pixel ({x},{y}): quantized error {err}");
        }
    }

    #[test]
    fn quantized_transfer_matches_float_transfer_within_rounding() {
        let (h, phi, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        let qphi = QuantizedCoefficients::from_coefficients(&phi);
        assert_eq!(qphi.len(), phi.len());
        let px = Vec2::new(140.0, 70.0);
        let exact_canonical = h.project(px).unwrap();
        let quant_canonical = qh.project(quantize_event_pixel(px)).unwrap();
        for i in 0..qphi.len() {
            let exact = phi.transfer(exact_canonical, i);
            let sub = qphi.transfer_subpixel(quant_canonical, i);
            assert!((sub - exact).norm() < 0.1, "plane {i}: {sub} vs {exact}");
            // Nearest voxel agrees with rounding the float transfer except in
            // rare half-pixel ties.
            let nearest = qphi.transfer_nearest(quant_canonical, i, 240, 180);
            if let Some((nx, ny)) = nearest.address() {
                assert!((nx as f64 - exact.x.round()).abs() <= 1.0);
                assert!((ny as f64 - exact.y.round()).abs() <= 1.0);
            }
        }
    }

    #[test]
    fn out_of_sensor_transfers_are_missing() {
        let (h, phi, _) = setup();
        let qh = QuantizedHomography::from_homography(&h);
        let qphi = QuantizedCoefficients::from_coefficients(&phi);
        // A pixel far outside the sensor maps outside every plane.
        let coord = qh.project(PackedCoord::from_f64(5000.0, 5000.0));
        if let Some(c) = coord {
            // Saturated Q9.7 coordinates land outside the 240x180 sensor.
            assert_eq!(qphi.transfer_nearest(c, 0, 240, 180), PlaneCoord::Missing);
        }
        // In-range pixels project; canonical projections outside the Q9.7
        // range are dropped (projection-missing judgement) rather than
        // saturated.
        assert!(qh.project(PackedCoord::from_f64(120.0, 90.0)).is_some());
        let far_out = qh.project(PackedCoord::from_f64(255.9, 179.0));
        if let Some(c) = far_out {
            assert!(c.x_f64().abs() <= 255.9921875);
        }
    }

    #[test]
    fn event_pixel_quantization_error_bound() {
        let p = Vec2::new(123.456, 78.901);
        let q = quantize_event_pixel(p);
        assert!((q.x_f64() - p.x).abs() <= COORD_QUANTIZATION_ERROR);
        assert!((q.y_f64() - p.y).abs() <= COORD_QUANTIZATION_ERROR);
    }
}
