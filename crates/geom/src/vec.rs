//! Small fixed-size vectors used throughout the EMVS pipeline.
//!
//! All types are `f64`-backed: the baseline EMVS algorithm operates in double
//! precision and the quantized datapath in `eventor-fixed` converts from
//! these representations.

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 2-D vector (image-plane point, pixel coordinate, …).
///
/// # Examples
///
/// ```
/// use eventor_geom::Vec2;
/// let p = Vec2::new(3.0, 4.0);
/// assert_eq!(p.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

/// A 3-D vector (scene point, translation, ray direction, …).
///
/// # Examples
///
/// ```
/// use eventor_geom::Vec3;
/// let v = Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0));
/// assert_eq!(v, Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component (depth axis for camera-frame points).
    pub z: f64,
}

/// A 4-D vector (homogeneous 3-D point).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
    /// Homogeneous component.
    pub w: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };

    /// Creates a new vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `None` when the norm is zero (or numerically negligible).
    #[inline]
    pub fn normalized(self) -> Option<Self> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        Self::new(self.x.min(rhs.x), self.y.min(rhs.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        Self::new(self.x.max(rhs.x), self.y.max(rhs.y))
    }

    /// Promotes to a homogeneous 3-vector `(x, y, 1)`.
    #[inline]
    pub fn to_homogeneous(self) -> Vec3 {
        Vec3::new(self.x, self.y, 1.0)
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along X.
    pub const X: Self = Self {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along Y.
    pub const Y: Self = Self {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along Z.
    pub const Z: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a new vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `None` when the norm is zero (or numerically negligible).
    #[inline]
    pub fn normalized(self) -> Option<Self> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Perspective division: projects onto the plane `z = 1`.
    ///
    /// Returns `None` when `z` is (numerically) zero.
    #[inline]
    pub fn hnormalized(self) -> Option<Vec2> {
        if self.z.abs() <= f64::EPSILON {
            None
        } else {
            Some(Vec2::new(self.x / self.z, self.y / self.z))
        }
    }

    /// Promotes to a homogeneous 4-vector `(x, y, z, 1)`.
    #[inline]
    pub fn to_homogeneous(self) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, 1.0)
    }

    /// Returns true when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`.
    #[inline]
    pub fn lerp(self, rhs: Self, t: f64) -> Self {
        self * (1.0 - t) + rhs * t
    }
}

impl Vec4 {
    /// Creates a new vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64, w: f64) -> Self {
        Self { x, y, z, w }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z + self.w * rhs.w
    }

    /// Perspective division by the homogeneous component.
    ///
    /// Returns `None` when `w` is (numerically) zero.
    #[inline]
    pub fn hnormalized(self) -> Option<Vec3> {
        if self.w.abs() <= f64::EPSILON {
            None
        } else {
            Some(Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w))
        }
    }
}

macro_rules! impl_vec_ops {
    ($ty:ty, $($field:ident),+) => {
        impl Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($field: self.$field + rhs.$field),+ }
            }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $(self.$field += rhs.$field;)+
            }
        }
        impl Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($field: self.$field - rhs.$field),+ }
            }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$field -= rhs.$field;)+
            }
        }
        impl Mul<f64> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self { $($field: self.$field * rhs),+ }
            }
        }
        impl MulAssign<f64> for $ty {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                $(self.$field *= rhs;)+
            }
        }
        impl Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                rhs * self
            }
        }
        impl Div<f64> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self { $($field: self.$field / rhs),+ }
            }
        }
        impl DivAssign<f64> for $ty {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                $(self.$field /= rhs;)+
            }
        }
        impl Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($field: -self.$field),+ }
            }
        }
    };
}

impl_vec_ops!(Vec2, x, y);
impl_vec_ops!(Vec3, x, y, z);
impl_vec_ops!(Vec4, x, y, z, w);

impl Index<usize> for Vec2 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            _ => panic!("Vec2 index {i} out of bounds"),
        }
    }
}

impl IndexMut<usize> for Vec2 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            _ => panic!("Vec2 index {i} out of bounds"),
        }
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of bounds"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of bounds"),
        }
    }
}

impl Index<usize> for Vec4 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            3 => &self.w,
            _ => panic!("Vec4 index {i} out of bounds"),
        }
    }
}

impl From<[f64; 2]> for Vec2 {
    fn from(a: [f64; 2]) -> Self {
        Self::new(a[0], a[1])
    }
}

impl From<Vec2> for [f64; 2] {
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.6}, {:.6}, {:.6}, {:.6})",
            self.x, self.y, self.z, self.w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_dot_and_norm() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.dot(a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_squared(), 25.0);
        let n = a.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec3_basis_cross_products() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn homogeneous_round_trip() {
        let p = Vec2::new(0.5, -1.5);
        let h = p.to_homogeneous();
        assert_eq!(h.hnormalized().unwrap(), p);

        let q = Vec3::new(1.0, 2.0, 4.0);
        let h4 = q.to_homogeneous();
        assert_eq!(h4.hnormalized().unwrap(), q);
    }

    #[test]
    fn hnormalized_rejects_zero_depth() {
        assert!(Vec3::new(1.0, 1.0, 0.0).hnormalized().is_none());
        assert!(Vec4::new(1.0, 1.0, 1.0, 0.0).hnormalized().is_none());
    }

    #[test]
    fn indexing() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        let mut w = Vec2::new(0.0, 0.0);
        w[1] = 5.0;
        assert_eq!(w.y, 5.0);
    }

    #[test]
    #[should_panic]
    fn vec3_index_out_of_bounds_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn array_conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        let p: Vec2 = [4.0, 5.0].into();
        let b: [f64; 2] = p.into();
        assert_eq!(b, [4.0, 5.0]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec2::ZERO).is_empty());
        assert!(!format!("{}", Vec3::ZERO).is_empty());
        assert!(!format!("{}", Vec4::new(0.0, 0.0, 0.0, 1.0)).is_empty());
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, 3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
    }
}
