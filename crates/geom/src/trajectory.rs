//! Timestamped camera trajectories with pose interpolation.
//!
//! The EMVS problem statement assumes a *known* trajectory (from an external
//! odometry source or, in the paper's evaluation, dataset ground truth). The
//! mapper queries the pose of the event camera at arbitrary event/frame
//! timestamps, which requires interpolating between trajectory samples.

use crate::se3::Pose;
use crate::vec::Vec3;
use crate::GeometryError;

/// A single timestamped pose sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseSample {
    /// Timestamp in seconds.
    pub timestamp: f64,
    /// Camera-to-world pose at `timestamp`.
    pub pose: Pose,
}

/// A camera trajectory: pose samples sorted by timestamp, queried by
/// interpolation.
///
/// # Examples
///
/// ```
/// use eventor_geom::{Trajectory, Pose, Vec3};
/// let traj = Trajectory::from_samples(vec![
///     (0.0, Pose::from_translation(Vec3::ZERO)),
///     (1.0, Pose::from_translation(Vec3::new(1.0, 0.0, 0.0))),
/// ])?;
/// let mid = traj.pose_at(0.5)?;
/// assert!((mid.translation.x - 0.5).abs() < 1e-12);
/// # Ok::<(), eventor_geom::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    samples: Vec<PoseSample>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trajectory from `(timestamp, pose)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnsortedTrajectory`] if the timestamps are not
    /// strictly increasing, and [`GeometryError::EmptyTrajectory`] for an
    /// empty input.
    pub fn from_samples(samples: Vec<(f64, Pose)>) -> Result<Self, GeometryError> {
        if samples.is_empty() {
            return Err(GeometryError::EmptyTrajectory);
        }
        let mut out = Vec::with_capacity(samples.len());
        let mut prev = f64::NEG_INFINITY;
        for (timestamp, pose) in samples {
            if timestamp <= prev || !timestamp.is_finite() {
                return Err(GeometryError::UnsortedTrajectory { timestamp });
            }
            prev = timestamp;
            out.push(PoseSample { timestamp, pose });
        }
        Ok(Self { samples: out })
    }

    /// Appends a sample; its timestamp must be greater than the last one.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnsortedTrajectory`] otherwise.
    pub fn push(&mut self, timestamp: f64, pose: Pose) -> Result<(), GeometryError> {
        if let Some(last) = self.samples.last() {
            if timestamp <= last.timestamp {
                return Err(GeometryError::UnsortedTrajectory { timestamp });
            }
        }
        if !timestamp.is_finite() {
            return Err(GeometryError::UnsortedTrajectory { timestamp });
        }
        self.samples.push(PoseSample { timestamp, pose });
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trajectory has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Timestamp of the first sample.
    pub fn start_time(&self) -> Option<f64> {
        self.samples.first().map(|s| s.timestamp)
    }

    /// Timestamp of the last sample.
    pub fn end_time(&self) -> Option<f64> {
        self.samples.last().map(|s| s.timestamp)
    }

    /// Duration covered by the trajectory, in seconds.
    pub fn duration(&self) -> f64 {
        match (self.start_time(), self.end_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Iterator over the raw samples.
    pub fn iter(&self) -> std::slice::Iter<'_, PoseSample> {
        self.samples.iter()
    }

    /// Interpolated pose at time `t`.
    ///
    /// Linear interpolation of translation and slerp of rotation between the
    /// bracketing samples; exact sample timestamps return the stored pose.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::TimestampOutOfRange`] when `t` lies outside
    /// `[start_time, end_time]` and [`GeometryError::EmptyTrajectory`] when
    /// there are no samples.
    pub fn pose_at(&self, t: f64) -> Result<Pose, GeometryError> {
        if self.samples.is_empty() {
            return Err(GeometryError::EmptyTrajectory);
        }
        let first = self.samples.first().expect("nonempty");
        let last = self.samples.last().expect("nonempty");
        if t < first.timestamp || t > last.timestamp {
            return Err(GeometryError::TimestampOutOfRange {
                timestamp: t,
                start: first.timestamp,
                end: last.timestamp,
            });
        }
        if self.samples.len() == 1 {
            return Ok(first.pose);
        }
        // Binary search for the bracketing interval.
        let idx = self
            .samples
            .partition_point(|s| s.timestamp <= t)
            .min(self.samples.len() - 1);
        let hi = &self.samples[idx];
        if idx == 0 {
            return Ok(hi.pose);
        }
        let lo = &self.samples[idx - 1];
        if (hi.timestamp - lo.timestamp).abs() < f64::EPSILON {
            return Ok(lo.pose);
        }
        let alpha = (t - lo.timestamp) / (hi.timestamp - lo.timestamp);
        Ok(lo.pose.interpolate(&hi.pose, alpha))
    }

    /// Total path length of the camera centre.
    pub fn path_length(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| (w[1].pose.translation - w[0].pose.translation).norm())
            .sum()
    }

    /// Builds a linear (constant-velocity) trajectory from `start` to `end`
    /// poses over `[t_start, t_end]`, sampled at `n` points.
    ///
    /// Convenience used by the synthetic slider sequences.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `t_end <= t_start`.
    pub fn linear(start: Pose, end: Pose, t_start: f64, t_end: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        assert!(t_end > t_start, "end time must exceed start time");
        let samples = (0..n)
            .map(|i| {
                let alpha = i as f64 / (n - 1) as f64;
                let t = t_start + alpha * (t_end - t_start);
                (t, start.interpolate(&end, alpha))
            })
            .collect();
        Self::from_samples(samples).expect("linear samples are strictly increasing")
    }

    /// The bounding box of camera centres, as `(min, max)` corners.
    pub fn translation_bounds(&self) -> Option<(Vec3, Vec3)> {
        let first = self.samples.first()?;
        let mut min = first.pose.translation;
        let mut max = first.pose.translation;
        for s in &self.samples {
            let t = s.pose.translation;
            min = Vec3::new(min.x.min(t.x), min.y.min(t.y), min.z.min(t.z));
            max = Vec3::new(max.x.max(t.x), max.y.max(t.y), max.z.max(t.z));
        }
        Some((min, max))
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = &'a PoseSample;
    type IntoIter = std::slice::Iter<'a, PoseSample>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quat::UnitQuaternion;

    #[test]
    fn rejects_empty_and_unsorted() {
        assert!(matches!(
            Trajectory::from_samples(vec![]),
            Err(GeometryError::EmptyTrajectory)
        ));
        let bad = vec![(1.0, Pose::identity()), (0.5, Pose::identity())];
        assert!(matches!(
            Trajectory::from_samples(bad),
            Err(GeometryError::UnsortedTrajectory { .. })
        ));
    }

    #[test]
    fn push_enforces_ordering() {
        let mut t = Trajectory::new();
        t.push(0.0, Pose::identity()).unwrap();
        assert!(t.push(0.0, Pose::identity()).is_err());
        assert!(t.push(1.0, Pose::identity()).is_ok());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn interpolation_midpoint() {
        let traj = Trajectory::from_samples(vec![
            (0.0, Pose::from_translation(Vec3::ZERO)),
            (2.0, Pose::from_translation(Vec3::new(4.0, 0.0, 0.0))),
        ])
        .unwrap();
        let p = traj.pose_at(1.0).unwrap();
        assert!((p.translation.x - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_sample_times_return_stored_pose() {
        let pose1 = Pose::new(
            UnitQuaternion::from_euler(0.1, 0.0, 0.0),
            Vec3::new(1.0, 2.0, 3.0),
        );
        let traj = Trajectory::from_samples(vec![
            (0.0, Pose::identity()),
            (1.0, pose1),
            (2.0, Pose::identity()),
        ])
        .unwrap();
        let p = traj.pose_at(1.0).unwrap();
        assert!(p.translation_distance(&pose1) < 1e-12);
        assert!(p.rotation_distance(&pose1) < 1e-12);
        let p0 = traj.pose_at(0.0).unwrap();
        assert!(p0.translation_distance(&Pose::identity()) < 1e-12);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let traj = Trajectory::from_samples(vec![(1.0, Pose::identity()), (2.0, Pose::identity())])
            .unwrap();
        assert!(traj.pose_at(0.5).is_err());
        assert!(traj.pose_at(2.5).is_err());
        assert!(traj.pose_at(1.5).is_ok());
    }

    #[test]
    fn linear_trajectory_properties() {
        let start = Pose::from_translation(Vec3::ZERO);
        let end = Pose::from_translation(Vec3::new(0.3, 0.0, 0.0));
        let traj = Trajectory::linear(start, end, 0.0, 1.0, 11);
        assert_eq!(traj.len(), 11);
        assert!((traj.duration() - 1.0).abs() < 1e-12);
        assert!((traj.path_length() - 0.3).abs() < 1e-12);
        let (min, max) = traj.translation_bounds().unwrap();
        assert!((min - Vec3::ZERO).norm() < 1e-12);
        assert!((max - Vec3::new(0.3, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn single_sample_trajectory() {
        let traj = Trajectory::from_samples(vec![(1.0, Pose::from_translation(Vec3::X))]).unwrap();
        let p = traj.pose_at(1.0).unwrap();
        assert!((p.translation - Vec3::X).norm() < 1e-12);
        assert_eq!(traj.duration(), 0.0);
    }
}
