//! Rigid-body poses in SE(3): the camera trajectory representation used by
//! the EMVS mapper and the Eventor accelerator driver.

use crate::mat::{Mat3, Mat4};
use crate::quat::UnitQuaternion;
use crate::vec::Vec3;
use std::fmt;
use std::ops::Mul;

/// A rigid-body transform (rotation + translation).
///
/// The convention throughout this workspace is *camera-to-world*: a
/// [`Pose`] stored in a trajectory maps points expressed in the camera frame
/// into the world frame:
///
/// ```text
/// p_world = R * p_camera + t
/// ```
///
/// so `t` is the camera's position in the world and `R`'s columns are the
/// camera axes expressed in world coordinates.
///
/// # Examples
///
/// ```
/// use eventor_geom::{Pose, Vec3, UnitQuaternion};
/// let cam = Pose::new(UnitQuaternion::identity(), Vec3::new(0.0, 0.0, -1.0));
/// // A point one meter in front of the camera lies at the world origin.
/// assert!((cam.transform(Vec3::new(0.0, 0.0, 1.0)) - Vec3::ZERO).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// Orientation (camera-to-world rotation).
    pub rotation: UnitQuaternion,
    /// Position of the camera origin in world coordinates.
    pub translation: Vec3,
}

impl Pose {
    /// The identity pose.
    pub fn identity() -> Self {
        Self {
            rotation: UnitQuaternion::identity(),
            translation: Vec3::ZERO,
        }
    }

    /// Creates a pose from a rotation and translation.
    pub fn new(rotation: UnitQuaternion, translation: Vec3) -> Self {
        Self {
            rotation,
            translation,
        }
    }

    /// Creates a pure translation pose.
    pub fn from_translation(translation: Vec3) -> Self {
        Self {
            rotation: UnitQuaternion::identity(),
            translation,
        }
    }

    /// Creates a pose from a rotation matrix and translation.
    pub fn from_matrix_parts(r: &Mat3, t: Vec3) -> Self {
        Self {
            rotation: UnitQuaternion::from_rotation_matrix(r),
            translation: t,
        }
    }

    /// Applies the pose to a point (`p_world = R p + t`).
    #[inline]
    pub fn transform(&self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Applies only the rotational part (for directions).
    #[inline]
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        self.rotation.rotate(v)
    }

    /// The inverse transform (world-to-camera when `self` is camera-to-world).
    pub fn inverse(&self) -> Self {
        let inv_rot = self.rotation.inverse();
        Self {
            rotation: inv_rot,
            translation: -inv_rot.rotate(self.translation),
        }
    }

    /// Composition: `self * rhs` applies `rhs` first, then `self`.
    pub fn compose(&self, rhs: &Self) -> Self {
        Self {
            rotation: self.rotation * rhs.rotation,
            translation: self.rotation.rotate(rhs.translation) + self.translation,
        }
    }

    /// Relative pose mapping points from `other`'s frame into `self`'s frame:
    /// `self⁻¹ * other`.
    pub fn relative_to(&self, other: &Self) -> Self {
        self.inverse().compose(other)
    }

    /// Euclidean distance between the two camera centers.
    pub fn translation_distance(&self, other: &Self) -> f64 {
        (self.translation - other.translation).norm()
    }

    /// Angular distance between orientations, in radians.
    pub fn rotation_distance(&self, other: &Self) -> f64 {
        self.rotation.angle_to(other.rotation)
    }

    /// Interpolates between two poses (slerp for rotation, lerp for
    /// translation); `t` in `[0, 1]`.
    pub fn interpolate(&self, other: &Self, t: f64) -> Self {
        Self {
            rotation: self.rotation.slerp(other.rotation, t),
            translation: self.translation.lerp(other.translation, t),
        }
    }

    /// Converts to a homogeneous 4×4 matrix.
    pub fn to_matrix(&self) -> Mat4 {
        Mat4::from_rotation_translation(self.rotation.to_rotation_matrix(), self.translation)
    }

    /// Rotation as a 3×3 matrix.
    pub fn rotation_matrix(&self) -> Mat3 {
        self.rotation.to_rotation_matrix()
    }
}

impl Mul for Pose {
    type Output = Pose;
    fn mul(self, rhs: Pose) -> Pose {
        self.compose(&rhs)
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pose(t={}, {})", self.translation, self.rotation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn identity_pose_is_noop() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Pose::identity().transform(p), p);
    }

    #[test]
    fn inverse_round_trip() {
        let pose = Pose::new(
            UnitQuaternion::from_euler(0.2, -0.4, 0.9),
            Vec3::new(1.0, -2.0, 0.5),
        );
        let p = Vec3::new(0.3, 0.7, 2.0);
        let back = pose.inverse().transform(pose.transform(p));
        assert!((back - p).norm() < 1e-12);
    }

    #[test]
    fn compose_then_apply_matches_sequential() {
        let a = Pose::new(
            UnitQuaternion::from_axis_angle(Vec3::Z, 0.3),
            Vec3::new(1.0, 0.0, 0.0),
        );
        let b = Pose::new(
            UnitQuaternion::from_axis_angle(Vec3::X, -0.5),
            Vec3::new(0.0, 2.0, 0.0),
        );
        let p = Vec3::new(0.1, 0.2, 0.3);
        let via_compose = a.compose(&b).transform(p);
        let via_seq = a.transform(b.transform(p));
        assert!((via_compose - via_seq).norm() < 1e-12);
        assert!(((a * b).transform(p) - via_seq).norm() < 1e-12);
    }

    #[test]
    fn relative_pose_maps_between_frames() {
        let world_from_a = Pose::new(
            UnitQuaternion::from_axis_angle(Vec3::Y, 0.4),
            Vec3::new(1.0, 1.0, 1.0),
        );
        let world_from_b = Pose::new(
            UnitQuaternion::from_axis_angle(Vec3::Z, -0.2),
            Vec3::new(-1.0, 0.0, 2.0),
        );
        let a_from_b = world_from_a.relative_to(&world_from_b);
        let p_b = Vec3::new(0.5, -0.5, 1.5);
        let via_world = world_from_a
            .inverse()
            .transform(world_from_b.transform(p_b));
        let direct = a_from_b.transform(p_b);
        assert!((via_world - direct).norm() < 1e-12);
    }

    #[test]
    fn distances() {
        let a = Pose::from_translation(Vec3::new(0.0, 0.0, 0.0));
        let b = Pose::new(
            UnitQuaternion::from_axis_angle(Vec3::Z, FRAC_PI_2),
            Vec3::new(3.0, 4.0, 0.0),
        );
        assert!((a.translation_distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.rotation_distance(&b) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn interpolation_endpoints() {
        let a = Pose::from_translation(Vec3::new(0.0, 0.0, 0.0));
        let b = Pose::new(
            UnitQuaternion::from_axis_angle(Vec3::X, 1.0),
            Vec3::new(2.0, 0.0, 0.0),
        );
        assert!(a.interpolate(&b, 0.0).translation_distance(&a) < 1e-12);
        assert!(a.interpolate(&b, 1.0).translation_distance(&b) < 1e-12);
        let mid = a.interpolate(&b, 0.5);
        assert!((mid.translation.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_matrix_matches_transform() {
        let pose = Pose::new(
            UnitQuaternion::from_euler(0.1, 0.2, 0.3),
            Vec3::new(4.0, 5.0, 6.0),
        );
        let p = Vec3::new(-1.0, 2.0, 0.5);
        let via_pose = pose.transform(p);
        let via_mat = pose.to_matrix().transform_point(p);
        assert!((via_pose - via_mat).norm() < 1e-12);
    }
}
