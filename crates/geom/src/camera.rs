//! Pinhole camera model with radial–tangential distortion.
//!
//! The DAVIS 240×180 sensor used by the paper is modelled as a standard
//! pinhole camera. Event *distortion correction* — one of the stages the
//! paper reschedules to run per event before aggregation — uses the inverse
//! of the radial–tangential ("plumb bob") distortion model implemented here.

use crate::mat::Mat3;
use crate::vec::{Vec2, Vec3};
use crate::GeometryError;

/// Width of the DAVIS240 sensor in pixels.
pub const DAVIS_WIDTH: u32 = 240;
/// Height of the DAVIS240 sensor in pixels.
pub const DAVIS_HEIGHT: u32 = 180;

/// Pinhole intrinsic parameters.
///
/// # Examples
///
/// ```
/// use eventor_geom::{CameraIntrinsics, Vec3};
/// let k = CameraIntrinsics::davis240_default();
/// let px = k.project(Vec3::new(0.0, 0.0, 1.0)).unwrap();
/// assert!((px.x - k.cx).abs() < 1e-12);
/// assert!((px.y - k.cy).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraIntrinsics {
    /// Focal length along x, in pixels.
    pub fx: f64,
    /// Focal length along y, in pixels.
    pub fy: f64,
    /// Principal point x, in pixels.
    pub cx: f64,
    /// Principal point y, in pixels.
    pub cy: f64,
    /// Sensor width in pixels.
    pub width: u32,
    /// Sensor height in pixels.
    pub height: u32,
}

/// Radial–tangential distortion coefficients `(k1, k2, p1, p2, k3)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistortionModel {
    /// Second-order radial coefficient.
    pub k1: f64,
    /// Fourth-order radial coefficient.
    pub k2: f64,
    /// First tangential coefficient.
    pub p1: f64,
    /// Second tangential coefficient.
    pub p2: f64,
    /// Sixth-order radial coefficient.
    pub k3: f64,
}

/// A full camera model: intrinsics plus (possibly zero) lens distortion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraModel {
    /// Pinhole intrinsics.
    pub intrinsics: CameraIntrinsics,
    /// Lens distortion.
    pub distortion: DistortionModel,
}

impl CameraIntrinsics {
    /// Creates a new intrinsics struct.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidIntrinsics`] if either focal length is
    /// not strictly positive or the resolution is zero.
    pub fn new(
        fx: f64,
        fy: f64,
        cx: f64,
        cy: f64,
        width: u32,
        height: u32,
    ) -> Result<Self, GeometryError> {
        if fx <= 0.0 || fy <= 0.0 || !fx.is_finite() || !fy.is_finite() || width == 0 || height == 0
        {
            return Err(GeometryError::InvalidIntrinsics {
                fx,
                fy,
                width,
                height,
            });
        }
        Ok(Self {
            fx,
            fy,
            cx,
            cy,
            width,
            height,
        })
    }

    /// Default intrinsics for a DAVIS240-class sensor (240×180, ~66° HFOV).
    ///
    /// The values approximate the calibration shipped with the event-camera
    /// dataset the paper evaluates on.
    pub fn davis240_default() -> Self {
        Self {
            fx: 199.0,
            fy: 199.0,
            cx: 120.0,
            cy: 90.0,
            width: DAVIS_WIDTH,
            height: DAVIS_HEIGHT,
        }
    }

    /// The calibration matrix `K`.
    pub fn matrix(&self) -> Mat3 {
        Mat3 {
            m: [
                [self.fx, 0.0, self.cx],
                [0.0, self.fy, self.cy],
                [0.0, 0.0, 1.0],
            ],
        }
    }

    /// The inverse calibration matrix `K⁻¹`.
    pub fn inverse_matrix(&self) -> Mat3 {
        Mat3 {
            m: [
                [1.0 / self.fx, 0.0, -self.cx / self.fx],
                [0.0, 1.0 / self.fy, -self.cy / self.fy],
                [0.0, 0.0, 1.0],
            ],
        }
    }

    /// Projects a camera-frame 3-D point to pixel coordinates.
    ///
    /// Returns `None` for points at or behind the camera plane (`z <= 0`).
    pub fn project(&self, p: Vec3) -> Option<Vec2> {
        if p.z <= 0.0 {
            return None;
        }
        Some(Vec2::new(
            self.fx * p.x / p.z + self.cx,
            self.fy * p.y / p.z + self.cy,
        ))
    }

    /// Back-projects a pixel to the normalized image plane (`z = 1`).
    pub fn unproject(&self, px: Vec2) -> Vec3 {
        Vec3::new((px.x - self.cx) / self.fx, (px.y - self.cy) / self.fy, 1.0)
    }

    /// Converts a pixel to normalized (metric) image coordinates.
    pub fn pixel_to_normalized(&self, px: Vec2) -> Vec2 {
        Vec2::new((px.x - self.cx) / self.fx, (px.y - self.cy) / self.fy)
    }

    /// Converts normalized image coordinates to a pixel.
    pub fn normalized_to_pixel(&self, n: Vec2) -> Vec2 {
        Vec2::new(n.x * self.fx + self.cx, n.y * self.fy + self.cy)
    }

    /// Whether a (sub-)pixel coordinate lies inside the sensor.
    pub fn contains(&self, px: Vec2) -> bool {
        px.x >= 0.0 && px.y >= 0.0 && px.x < self.width as f64 && px.y < self.height as f64
    }

    /// Total number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

impl DistortionModel {
    /// A distortion-free model.
    pub fn none() -> Self {
        Self::default()
    }

    /// Creates a radial-only model.
    pub fn radial(k1: f64, k2: f64, k3: f64) -> Self {
        Self {
            k1,
            k2,
            k3,
            ..Self::default()
        }
    }

    /// A mild distortion profile similar to the DAVIS240C lens calibration.
    pub fn davis240_default() -> Self {
        Self {
            k1: -0.368,
            k2: 0.150,
            p1: -0.0003,
            p2: -0.0002,
            k3: 0.0,
        }
    }

    /// Whether all coefficients are zero.
    pub fn is_zero(&self) -> bool {
        self.k1 == 0.0 && self.k2 == 0.0 && self.p1 == 0.0 && self.p2 == 0.0 && self.k3 == 0.0
    }

    /// Applies the forward distortion model to normalized coordinates.
    pub fn distort(&self, n: Vec2) -> Vec2 {
        let r2 = n.norm_squared();
        let r4 = r2 * r2;
        let r6 = r4 * r2;
        let radial = 1.0 + self.k1 * r2 + self.k2 * r4 + self.k3 * r6;
        let dx = 2.0 * self.p1 * n.x * n.y + self.p2 * (r2 + 2.0 * n.x * n.x);
        let dy = self.p1 * (r2 + 2.0 * n.y * n.y) + 2.0 * self.p2 * n.x * n.y;
        Vec2::new(n.x * radial + dx, n.y * radial + dy)
    }

    /// Inverts the distortion model iteratively (fixed-point iteration).
    ///
    /// Converges quickly for the mild lens profiles of event sensors; the
    /// iteration count is capped at 20.
    pub fn undistort(&self, d: Vec2) -> Vec2 {
        if self.is_zero() {
            return d;
        }
        let mut n = d;
        for _ in 0..20 {
            let distorted = self.distort(n);
            let err = distorted - d;
            n -= err;
            if err.norm_squared() < 1e-18 {
                break;
            }
        }
        n
    }
}

impl CameraModel {
    /// Creates a camera model from intrinsics and distortion.
    pub fn new(intrinsics: CameraIntrinsics, distortion: DistortionModel) -> Self {
        Self {
            intrinsics,
            distortion,
        }
    }

    /// A distortion-free DAVIS240-class camera.
    pub fn davis240_ideal() -> Self {
        Self::new(
            CameraIntrinsics::davis240_default(),
            DistortionModel::none(),
        )
    }

    /// A DAVIS240-class camera with the default lens distortion profile.
    pub fn davis240_distorted() -> Self {
        Self::new(
            CameraIntrinsics::davis240_default(),
            DistortionModel::davis240_default(),
        )
    }

    /// Projects a camera-frame point to a *distorted* pixel (what the sensor
    /// actually records).
    pub fn project_distorted(&self, p: Vec3) -> Option<Vec2> {
        if p.z <= 0.0 {
            return None;
        }
        let n = Vec2::new(p.x / p.z, p.y / p.z);
        let d = self.distortion.distort(n);
        let px = self.intrinsics.normalized_to_pixel(d);
        Some(px)
    }

    /// Undistorts a raw (distorted) pixel coordinate into an ideal pinhole
    /// pixel coordinate.
    ///
    /// This is the *event distortion correction* stage of the EMVS pipeline.
    pub fn undistort_pixel(&self, raw: Vec2) -> Vec2 {
        if self.distortion.is_zero() {
            return raw;
        }
        let n = self.intrinsics.pixel_to_normalized(raw);
        let u = self.distortion.undistort(n);
        self.intrinsics.normalized_to_pixel(u)
    }

    /// Back-projects an undistorted pixel into a unit-norm viewing ray in the
    /// camera frame.
    pub fn pixel_to_bearing(&self, px: Vec2) -> Vec3 {
        self.intrinsics
            .unproject(px)
            .normalized()
            .expect("unprojected ray always has z=1, norm > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_intrinsics_rejected() {
        assert!(CameraIntrinsics::new(0.0, 1.0, 0.0, 0.0, 10, 10).is_err());
        assert!(CameraIntrinsics::new(1.0, -1.0, 0.0, 0.0, 10, 10).is_err());
        assert!(CameraIntrinsics::new(1.0, 1.0, 0.0, 0.0, 0, 10).is_err());
        assert!(CameraIntrinsics::new(100.0, 100.0, 5.0, 5.0, 10, 10).is_ok());
    }

    #[test]
    fn project_unproject_round_trip() {
        let k = CameraIntrinsics::davis240_default();
        let p = Vec3::new(0.2, -0.1, 2.0);
        let px = k.project(p).unwrap();
        let ray = k.unproject(px);
        // The unprojected ray scaled by the depth recovers the point.
        assert!((ray * p.z - p).norm() < 1e-10);
    }

    #[test]
    fn points_behind_camera_do_not_project() {
        let k = CameraIntrinsics::davis240_default();
        assert!(k.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(k.project(Vec3::new(0.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn k_matrix_and_inverse() {
        let k = CameraIntrinsics::davis240_default();
        let prod = k.matrix() * k.inverse_matrix();
        assert!(prod.max_abs_diff(&Mat3::identity()) < 1e-12);
    }

    #[test]
    fn principal_point_projects_to_center() {
        let k = CameraIntrinsics::davis240_default();
        let px = k.project(Vec3::new(0.0, 0.0, 3.0)).unwrap();
        assert!((px - Vec2::new(k.cx, k.cy)).norm() < 1e-12);
    }

    #[test]
    fn contains_respects_bounds() {
        let k = CameraIntrinsics::davis240_default();
        assert!(k.contains(Vec2::new(0.0, 0.0)));
        assert!(k.contains(Vec2::new(239.9, 179.9)));
        assert!(!k.contains(Vec2::new(240.0, 0.0)));
        assert!(!k.contains(Vec2::new(-0.1, 10.0)));
    }

    #[test]
    fn distortion_round_trip() {
        let d = DistortionModel::davis240_default();
        let n = Vec2::new(0.21, -0.13);
        let distorted = d.distort(n);
        let back = d.undistort(distorted);
        assert!((back - n).norm() < 1e-9);
    }

    #[test]
    fn zero_distortion_is_identity() {
        let d = DistortionModel::none();
        let n = Vec2::new(0.4, 0.3);
        assert_eq!(d.distort(n), n);
        assert_eq!(d.undistort(n), n);
        assert!(d.is_zero());
    }

    #[test]
    fn undistort_pixel_recovers_ideal_projection() {
        let cam = CameraModel::davis240_distorted();
        let p = Vec3::new(0.15, 0.08, 1.5);
        let raw = cam.project_distorted(p).unwrap();
        let ideal = cam.intrinsics.project(p).unwrap();
        let corrected = cam.undistort_pixel(raw);
        assert!((corrected - ideal).norm() < 1e-6);
    }

    #[test]
    fn bearing_is_unit_norm() {
        let cam = CameraModel::davis240_ideal();
        let b = cam.pixel_to_bearing(Vec2::new(10.0, 170.0));
        assert!((b.norm() - 1.0).abs() < 1e-12);
        assert!(b.z > 0.0);
    }

    #[test]
    fn pixel_count() {
        let k = CameraIntrinsics::davis240_default();
        assert_eq!(k.pixel_count(), 240 * 180);
    }
}
