//! # eventor-geom
//!
//! Geometry substrate for the Eventor EMVS reproduction: small fixed-size
//! linear algebra, SE(3) poses and trajectories, pinhole camera models with
//! radial–tangential distortion, and the plane-induced homography /
//! proportional back-projection machinery that powers the event-based
//! space-sweep.
//!
//! The crate is deliberately self-contained (no external linear-algebra
//! dependency): the EMVS datapath only needs 2/3/4-vectors, 3×3 / 4×4
//! matrices, quaternions and a handful of camera-geometry routines, and
//! keeping them here makes the quantized fixed-point re-implementation in
//! `eventor-core` easy to cross-check against the exact double-precision
//! reference.
//!
//! ## Example
//!
//! ```
//! use eventor_geom::{CameraIntrinsics, CanonicalHomography, Pose, Vec2, Vec3};
//!
//! # fn main() -> Result<(), eventor_geom::GeometryError> {
//! let intrinsics = CameraIntrinsics::davis240_default();
//! let reference = Pose::identity();
//! let camera = Pose::from_translation(Vec3::new(0.05, 0.0, 0.0));
//! let homography = CanonicalHomography::compute(&reference, &camera, &intrinsics, 1.0)?;
//! let on_plane = homography.project(Vec2::new(120.0, 90.0));
//! assert!(on_plane.is_some());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod camera;
mod error;
mod homography;
mod mat;
mod quat;
mod se3;
mod trajectory;
mod vec;

pub use camera::{CameraIntrinsics, CameraModel, DistortionModel, DAVIS_HEIGHT, DAVIS_WIDTH};
pub use error::GeometryError;
pub use homography::{
    apply_homography, backproject_exhaustive, CanonicalHomography, ProportionalCoefficients,
};
pub use mat::{Mat3, Mat4};
pub use quat::UnitQuaternion;
pub use se3::Pose;
pub use trajectory::{PoseSample, Trajectory};
pub use vec::{Vec2, Vec3, Vec4};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn finite_angle() -> impl Strategy<Value = f64> {
        -3.0..3.0f64
    }

    fn small_translation() -> impl Strategy<Value = f64> {
        -0.5..0.5f64
    }

    proptest! {
        #[test]
        fn pose_inverse_round_trip(
            roll in finite_angle(), pitch in finite_angle(), yaw in finite_angle(),
            tx in small_translation(), ty in small_translation(), tz in small_translation(),
            px in -5.0..5.0f64, py in -5.0..5.0f64, pz in -5.0..5.0f64,
        ) {
            let pose = Pose::new(UnitQuaternion::from_euler(roll, pitch, yaw), Vec3::new(tx, ty, tz));
            let p = Vec3::new(px, py, pz);
            let back = pose.inverse().transform(pose.transform(p));
            prop_assert!((back - p).norm() < 1e-9);
        }

        #[test]
        fn rotation_preserves_norm(
            roll in finite_angle(), pitch in finite_angle(), yaw in finite_angle(),
            px in -5.0..5.0f64, py in -5.0..5.0f64, pz in -5.0..5.0f64,
        ) {
            let q = UnitQuaternion::from_euler(roll, pitch, yaw);
            let v = Vec3::new(px, py, pz);
            prop_assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn quaternion_matrix_round_trip(
            roll in finite_angle(), pitch in finite_angle(), yaw in finite_angle(),
        ) {
            let q = UnitQuaternion::from_euler(roll, pitch, yaw);
            let q2 = UnitQuaternion::from_rotation_matrix(&q.to_rotation_matrix());
            prop_assert!((q.dot(q2).abs() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn projection_round_trip(
            px in -0.4..0.4f64, py in -0.3..0.3f64, z in 0.5..10.0f64,
        ) {
            let k = CameraIntrinsics::davis240_default();
            let p = Vec3::new(px * z, py * z, z);
            if let Some(pix) = k.project(p) {
                let ray = k.unproject(pix);
                prop_assert!((ray * z - p).norm() < 1e-8);
            }
        }

        #[test]
        fn distortion_round_trip(nx in -0.4..0.4f64, ny in -0.4..0.4f64) {
            let d = DistortionModel::davis240_default();
            let n = Vec2::new(nx, ny);
            let back = d.undistort(d.distort(n));
            prop_assert!((back - n).norm() < 1e-6);
        }

        #[test]
        fn proportional_transfer_matches_raycast(
            tx in -0.2..0.2f64, ty in -0.2..0.2f64, tz in -0.15..0.15f64,
            yaw in -0.05..0.05f64,
            ex in 10.0..230.0f64, ey in 10.0..170.0f64,
        ) {
            let k = CameraIntrinsics::davis240_default();
            let reference = Pose::identity();
            let cam = Pose::new(UnitQuaternion::from_euler(0.0, 0.0, yaw), Vec3::new(tx, ty, tz));
            let depths: Vec<f64> = (0..20)
                .map(|i| {
                    let t = i as f64 / 19.0;
                    1.0 / ((1.0 - t) / 1.0 + t / 5.0)
                })
                .collect();
            let hom = CanonicalHomography::compute(&reference, &cam, &k, depths[0]);
            let phi = ProportionalCoefficients::compute(&reference, &cam, &k, &depths, depths[0]);
            if let (Ok(hom), Ok(phi)) = (hom, phi) {
                let px = Vec2::new(ex, ey);
                if let Some(canonical) = hom.project(px) {
                    let exact = backproject_exhaustive(&reference, &cam, &k, px, &depths);
                    for (i, expect) in exact.iter().enumerate() {
                        if let Some(expect) = expect {
                            let got = phi.transfer(canonical, i);
                            prop_assert!((got - *expect).norm() < 1e-4,
                                "plane {}: {} vs {}", i, got, expect);
                        }
                    }
                }
            }
        }
    }
}
