//! Error type for geometric operations.

use std::error::Error;
use std::fmt;

/// Errors returned by the geometry substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeometryError {
    /// Camera intrinsics were not physically plausible.
    InvalidIntrinsics {
        /// Focal length along x that was supplied.
        fx: f64,
        /// Focal length along y that was supplied.
        fy: f64,
        /// Sensor width that was supplied.
        width: u32,
        /// Sensor height that was supplied.
        height: u32,
    },
    /// A depth value was not strictly positive and finite.
    InvalidDepth {
        /// The offending depth.
        depth: f64,
    },
    /// A plane-induced homography was singular (camera centre on the plane,
    /// or numerically degenerate geometry).
    DegenerateHomography,
    /// Trajectory timestamps were not strictly increasing.
    UnsortedTrajectory {
        /// The offending timestamp.
        timestamp: f64,
    },
    /// A trajectory operation required at least one sample.
    EmptyTrajectory,
    /// A pose query fell outside the trajectory's time span.
    TimestampOutOfRange {
        /// The queried timestamp.
        timestamp: f64,
        /// First timestamp covered by the trajectory.
        start: f64,
        /// Last timestamp covered by the trajectory.
        end: f64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidIntrinsics {
                fx,
                fy,
                width,
                height,
            } => write!(
                f,
                "invalid camera intrinsics (fx={fx}, fy={fy}, {width}x{height})"
            ),
            Self::InvalidDepth { depth } => {
                write!(f, "depth plane value {depth} is not strictly positive")
            }
            Self::DegenerateHomography => {
                write!(f, "plane-induced homography is degenerate")
            }
            Self::UnsortedTrajectory { timestamp } => {
                write!(
                    f,
                    "trajectory timestamp {timestamp} is not strictly increasing"
                )
            }
            Self::EmptyTrajectory => write!(f, "trajectory has no samples"),
            Self::TimestampOutOfRange {
                timestamp,
                start,
                end,
            } => write!(
                f,
                "timestamp {timestamp} outside trajectory span [{start}, {end}]"
            ),
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_lowercase_start() {
        let errors = [
            GeometryError::InvalidIntrinsics {
                fx: 0.0,
                fy: 1.0,
                width: 1,
                height: 1,
            },
            GeometryError::InvalidDepth { depth: -1.0 },
            GeometryError::DegenerateHomography,
            GeometryError::UnsortedTrajectory { timestamp: 1.0 },
            GeometryError::EmptyTrajectory,
            GeometryError::TimestampOutOfRange {
                timestamp: 5.0,
                start: 0.0,
                end: 1.0,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
