//! 3×3 and 4×4 matrices (row-major), covering the homography and rigid-motion
//! algebra needed by the EMVS space-sweep geometry.

use crate::vec::{Vec3, Vec4};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A 3×3 matrix stored row-major.
///
/// Used for rotation matrices, camera intrinsic matrices and plane-induced
/// homographies.
///
/// # Examples
///
/// ```
/// use eventor_geom::{Mat3, Vec3};
/// let m = Mat3::identity();
/// assert_eq!(m * Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major elements `[row][col]`.
    pub m: [[f64; 3]; 3],
}

/// A 4×4 matrix stored row-major (homogeneous rigid transforms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Row-major elements `[row][col]`.
    pub m: [[f64; 4]; 4],
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Mat3 {
    /// The zero matrix.
    pub fn zeros() -> Self {
        Self { m: [[0.0; 3]; 3] }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = [[0.0; 3]; 3];
        m[0][0] = 1.0;
        m[1][1] = 1.0;
        m[2][2] = 1.0;
        Self { m }
    }

    /// Builds a matrix from three rows.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Self {
            m: [[r0.x, r0.y, r0.z], [r1.x, r1.y, r1.z], [r2.x, r2.y, r2.z]],
        }
    }

    /// Builds a matrix from three columns.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Self {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// Builds a diagonal matrix.
    pub fn from_diagonal(d: Vec3) -> Self {
        let mut m = [[0.0; 3]; 3];
        m[0][0] = d.x;
        m[1][1] = d.y;
        m[2][2] = d.z;
        Self { m }
    }

    /// Outer product `a * bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        Self {
            m: [
                [a.x * b.x, a.x * b.y, a.x * b.z],
                [a.y * b.x, a.y * b.y, a.y * b.z],
                [a.z * b.x, a.z * b.y, a.z * b.z],
            ],
        }
    }

    /// Skew-symmetric (cross-product) matrix of `v`: `skew(v) * x == v.cross(x)`.
    pub fn skew(v: Vec3) -> Self {
        Self {
            m: [[0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0]],
        }
    }

    /// Returns row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Returns column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 3`.
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros();
        for i in 0..3 {
            for j in 0..3 {
                t.m[j][i] = self.m[i][j];
            }
        }
        t
    }

    /// Determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Trace (sum of diagonal elements).
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Matrix inverse via the adjugate.
    ///
    /// Returns `None` when the determinant magnitude is below `1e-15` (the
    /// matrix is singular or numerically so).
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if det.abs() < 1e-15 {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / det;
        let adj = [
            [
                m[1][1] * m[2][2] - m[1][2] * m[2][1],
                m[0][2] * m[2][1] - m[0][1] * m[2][2],
                m[0][1] * m[1][2] - m[0][2] * m[1][1],
            ],
            [
                m[1][2] * m[2][0] - m[1][0] * m[2][2],
                m[0][0] * m[2][2] - m[0][2] * m[2][0],
                m[0][2] * m[1][0] - m[0][0] * m[1][2],
            ],
            [
                m[1][0] * m[2][1] - m[1][1] * m[2][0],
                m[0][1] * m[2][0] - m[0][0] * m[2][1],
                m[0][0] * m[1][1] - m[0][1] * m[1][0],
            ],
        ];
        let mut out = Self::zeros();
        for (row, adj_row) in out.m.iter_mut().zip(&adj) {
            for (entry, &a) in row.iter_mut().zip(adj_row) {
                *entry = a * inv_det;
            }
        }
        Some(out)
    }

    /// Scales the matrix so that the bottom-right element equals one.
    ///
    /// Homographies are defined up to scale; this canonical form makes
    /// comparisons (and fixed-point quantization of `H`) well-defined.
    ///
    /// Returns `None` when `m[2][2]` is (numerically) zero.
    pub fn normalized_homography(&self) -> Option<Self> {
        let s = self.m[2][2];
        if s.abs() < 1e-15 {
            return None;
        }
        let mut out = *self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] /= s;
            }
        }
        Some(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.m
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute element-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        let mut d: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                d = d.max((self.m[i][j] - other.m[i][j]).abs());
            }
        }
        d
    }

    /// Returns true when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.m.iter().flat_map(|r| r.iter()).all(|v| v.is_finite())
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zeros();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.row(i).dot(rhs.col(j));
            }
        }
        out
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] *= s;
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zeros();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] + rhs.m[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zeros();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] - rhs.m[i][j];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.m[i][j]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.m[i][j]
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..3 {
            writeln!(
                f,
                "[{:12.6} {:12.6} {:12.6}]",
                self.m[i][0], self.m[i][1], self.m[i][2]
            )?;
        }
        Ok(())
    }
}

impl Mat4 {
    /// The zero matrix.
    pub fn zeros() -> Self {
        Self { m: [[0.0; 4]; 4] }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Self { m }
    }

    /// Builds a homogeneous rigid transform from a rotation and translation.
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Self {
        let mut m = Self::identity();
        for i in 0..3 {
            for j in 0..3 {
                m.m[i][j] = r.m[i][j];
            }
        }
        m.m[0][3] = t.x;
        m.m[1][3] = t.y;
        m.m[2][3] = t.z;
        m
    }

    /// Extracts the upper-left 3×3 rotation block.
    pub fn rotation(&self) -> Mat3 {
        let mut r = Mat3::zeros();
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] = self.m[i][j];
            }
        }
        r
    }

    /// Extracts the translation column.
    pub fn translation(&self) -> Vec3 {
        Vec3::new(self.m[0][3], self.m[1][3], self.m[2][3])
    }

    /// Transforms a 3-D point assuming the last row is `[0 0 0 1]`.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation() * p + self.translation()
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;
    fn mul(self, v: Vec4) -> Vec4 {
        let r = |i: usize| Vec4::new(self.m[i][0], self.m[i][1], self.m[i][2], self.m[i][3]).dot(v);
        Vec4::new(r(0), r(1), r(2), r(3))
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zeros();
        for i in 0..4 {
            for j in 0..4 {
                out.m[i][j] = (0..4).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        out
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..4 {
            writeln!(
                f,
                "[{:12.6} {:12.6} {:12.6} {:12.6}]",
                self.m[i][0], self.m[i][1], self.m[i][2], self.m[i][3]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, -1.0, 4.0),
            Vec3::new(2.0, 2.0, 1.0),
        );
        assert_eq!(Mat3::identity() * a, a);
        assert_eq!(a * Mat3::identity(), a);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.5),
            Vec3::new(-1.0, 3.0, 2.0),
            Vec3::new(0.0, 1.0, 1.5),
        );
        let inv = a.inverse().unwrap();
        let prod = a * inv;
        let id = Mat3::identity();
        assert!(prod.max_abs_diff(&id) < 1e-10, "{prod}");
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(2.0, 4.0, 6.0),
            Vec3::new(0.0, 1.0, 1.0),
        );
        assert!(a.inverse().is_none());
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert!(approx(d.determinant(), 24.0));
        assert!(approx(d.trace(), 9.0));
    }

    #[test]
    fn skew_matches_cross_product() {
        let v = Vec3::new(0.3, -1.2, 2.0);
        let x = Vec3::new(1.0, 0.5, -0.7);
        let via_mat = Mat3::skew(v) * x;
        let via_cross = v.cross(x);
        assert!((via_mat - via_cross).norm() < 1e-12);
    }

    #[test]
    fn outer_product_rank_one() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let o = Mat3::outer(a, b);
        assert!(approx(o.determinant(), 0.0));
        assert!(approx(o.m[1][2], 12.0));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 10.0),
        );
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn homography_normalization() {
        let h = Mat3::from_rows(
            Vec3::new(2.0, 0.0, 4.0),
            Vec3::new(0.0, 2.0, 6.0),
            Vec3::new(0.0, 0.0, 2.0),
        );
        let n = h.normalized_homography().unwrap();
        assert!(approx(n.m[2][2], 1.0));
        assert!(approx(n.m[0][0], 1.0));
        assert!(approx(n.m[0][2], 2.0));
    }

    #[test]
    fn mat4_rigid_transform_round_trip() {
        let r = Mat3::identity();
        let t = Vec3::new(1.0, -2.0, 3.0);
        let m = Mat4::from_rotation_translation(r, t);
        assert_eq!(m.rotation(), r);
        assert_eq!(m.translation(), t);
        assert_eq!(m.transform_point(Vec3::ZERO), t);
    }

    #[test]
    fn mat4_composition_matches_sequential_application() {
        let a = Mat4::from_rotation_translation(Mat3::identity(), Vec3::new(1.0, 0.0, 0.0));
        let b = Mat4::from_rotation_translation(Mat3::identity(), Vec3::new(0.0, 2.0, 0.0));
        let c = a * b;
        let p = Vec3::new(0.5, 0.5, 0.5);
        let via_c = c.transform_point(p);
        let via_seq = a.transform_point(b.transform_point(p));
        assert!((via_c - via_seq).norm() < 1e-12);
    }

    #[test]
    fn rows_and_cols() {
        let a = Mat3::from_cols(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        assert_eq!(a.col(0), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.row(0), Vec3::new(1.0, 4.0, 7.0));
        assert_eq!(a[(2, 1)], 6.0);
    }
}
