//! Plane-induced homographies — the geometric core of the *Canonical Event
//! Back-Projection* stage (`𝒫{Z0}` in the paper).
//!
//! The EMVS space-sweep maps each event from the *current* camera image onto
//! the canonical depth plane `Z0` of a *virtual* (reference) camera using a
//! 3×3 homography, and then transfers the point to the remaining depth planes
//! `Zi` with a per-frame proportional relation (see
//! [`crate::homography::ProportionalCoefficients`]).

use crate::camera::CameraIntrinsics;
use crate::mat::Mat3;
use crate::se3::Pose;
use crate::vec::{Vec2, Vec3};
use crate::GeometryError;

/// Applies a homography to a pixel coordinate.
///
/// Returns `None` when the point maps to infinity (third homogeneous
/// coordinate is zero), which in the accelerator corresponds to the
/// "projection missing judgement" of the Nearest Voxel Finder.
pub fn apply_homography(h: &Mat3, px: Vec2) -> Option<Vec2> {
    (*h * px.to_homogeneous()).hnormalized()
}

/// The homography `H_{Z0}` mapping pixels of the *current* event camera onto
/// the canonical depth plane `Z0` of the *virtual* reference camera, expressed
/// in virtual-camera pixel coordinates.
///
/// Derivation: a pixel `u` of the current camera back-projects to the ray
/// `X_v(λ) = c + λ·R·K⁻¹·ũ` in the virtual frame, where `(R, c)` is the
/// current-camera pose expressed in the virtual frame. Intersecting with the
/// fronto-parallel plane `Z = Z0` of the virtual camera and re-projecting with
/// `K_v` yields a plane-induced homography
///
/// ```text
/// H_{Z0} ∝ K_v · (Z0·R  +  (c − c_z·R·e_3·…))  — implemented via the standard
/// H = K_v (R + c·nᵀ/d) K_c⁻¹ with n, d expressed in the *current* frame.
/// ```
///
/// We compute it by mapping the plane into the current frame and inverting,
/// which is numerically robust and keeps the formula readable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanonicalHomography {
    /// The 3×3 homography, scaled so that `m[2][2] == 1`.
    pub h: Mat3,
    /// The canonical depth (distance of plane `Z0` from the virtual camera).
    pub z0: f64,
}

impl CanonicalHomography {
    /// Computes `H_{Z0}` for an event frame.
    ///
    /// * `virtual_from_world` — pose of the virtual (reference) camera,
    ///   camera-to-world.
    /// * `camera_from_world` — pose of the event camera at the frame's
    ///   timestamp, camera-to-world.
    /// * `intrinsics` — shared pinhole intrinsics (`K_c = K_v = K`).
    /// * `z0` — canonical plane depth in the virtual frame (must be > 0).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::DegenerateHomography`] when the induced
    /// homography is singular (e.g. the camera centre lies on the plane) and
    /// [`GeometryError::InvalidDepth`] when `z0 <= 0`.
    pub fn compute(
        virtual_from_world: &Pose,
        camera_from_world: &Pose,
        intrinsics: &CameraIntrinsics,
        z0: f64,
    ) -> Result<Self, GeometryError> {
        if z0 <= 0.0 || !z0.is_finite() {
            return Err(GeometryError::InvalidDepth { depth: z0 });
        }
        // Pose of the current camera expressed in the virtual frame.
        let v_from_c = virtual_from_world.relative_to(camera_from_world);
        let r = v_from_c.rotation_matrix(); // rotates current-frame vectors into the virtual frame
        let c = v_from_c.translation; // current camera centre in the virtual frame

        // Plane Z = z0 in the virtual frame: n_v = (0,0,1), offset d_v = z0.
        // Expressed in the current frame the plane has normal n_c = Rᵀ n_v and
        // offset d_c = z0 - n_v·c. The homography mapping *virtual* pixels to
        // *current* pixels induced by that plane is
        //   H_cv = K (R_cv + t_cv n_vᵀ / z0) K⁻¹
        // with (R_cv, t_cv) the virtual-to-current transform. We build H_cv and
        // invert it to obtain the desired current→virtual mapping; inverting a
        // 3×3 keeps the derivation simple and exact.
        let c_from_v = v_from_c.inverse();
        let r_cv = c_from_v.rotation_matrix();
        let t_cv = c_from_v.translation;
        let n_v = Vec3::Z;
        let k = intrinsics.matrix();
        let k_inv = intrinsics.inverse_matrix();
        let h_cv = k * (r_cv + Mat3::outer(t_cv, n_v) * (1.0 / z0)) * k_inv;
        let h_vc = h_cv.inverse().ok_or(GeometryError::DegenerateHomography)?;
        let h = h_vc
            .normalized_homography()
            .ok_or(GeometryError::DegenerateHomography)?;
        let _ = (r, c);
        Ok(Self { h, z0 })
    }

    /// Maps an (undistorted) event pixel of the current camera onto the
    /// canonical plane, returning virtual-camera pixel coordinates.
    pub fn project(&self, event_pixel: Vec2) -> Option<Vec2> {
        apply_homography(&self.h, event_pixel)
    }
}

/// Per-frame coefficients of the *Proportional Event Back-Projection*
/// (`𝒫{Z0 ↝ Zi}` in the paper).
///
/// Projections of the points of a single viewing ray onto the virtual image
/// all lie on a line through the epipole `e` (the projection of the current
/// camera centre into the virtual camera). The projection at depth `Zi` is a
/// homothety of the projection at `Z0` about `e`:
///
/// ```text
/// x(Zi) = rᵢ·x(Z0) + (1 − rᵢ)·eₓ,   rᵢ = (1 − c_z/Zi) / (1 − c_z/Z0)
/// ```
///
/// where `c_z` is the Z-coordinate of the current camera centre in the
/// virtual frame. The coefficients `{rᵢ, (1 − rᵢ)·eₓ, (1 − rᵢ)·e_y}` are the
/// parameters `φ` that the paper pre-computes on the ARM core and ships to the
/// FPGA once per event frame; each `PE_Zi` then needs two scalar MACs per
/// event and per plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ProportionalCoefficients {
    /// Scale factor `rᵢ` per depth plane.
    pub scale: Vec<f64>,
    /// Offset `(1 − rᵢ)·eₓ` per depth plane (virtual-camera pixels).
    pub offset_x: Vec<f64>,
    /// Offset `(1 − rᵢ)·e_y` per depth plane (virtual-camera pixels).
    pub offset_y: Vec<f64>,
    /// Depth of each plane in the virtual frame.
    pub depths: Vec<f64>,
}

impl ProportionalCoefficients {
    /// Computes the per-frame coefficients `φ` for a set of depth planes.
    ///
    /// `z0` is the canonical depth used by the matching
    /// [`CanonicalHomography`] (it does not have to be one of `depths`). The
    /// accelerator uses the *farthest* plane as the canonical plane so that
    /// the canonical back-projections stay within the Q9.7 coordinate range.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidDepth`] if any depth (or `z0`) is not
    /// strictly positive, and [`GeometryError::DegenerateHomography`] when the
    /// current camera centre lies on the canonical plane (the homothety is
    /// undefined).
    pub fn compute(
        virtual_from_world: &Pose,
        camera_from_world: &Pose,
        intrinsics: &CameraIntrinsics,
        depths: &[f64],
        z0: f64,
    ) -> Result<Self, GeometryError> {
        if depths.is_empty() {
            return Err(GeometryError::InvalidDepth { depth: f64::NAN });
        }
        for &d in depths {
            if d <= 0.0 || !d.is_finite() {
                return Err(GeometryError::InvalidDepth { depth: d });
            }
        }
        if z0 <= 0.0 || !z0.is_finite() {
            return Err(GeometryError::InvalidDepth { depth: z0 });
        }
        let v_from_c = virtual_from_world.relative_to(camera_from_world);
        let c = v_from_c.translation;

        // Epipole: projection of the current camera centre into the virtual
        // camera. For (near-)pure fronto-parallel motion c_z ≈ 0 and the
        // epipole is at infinity; the homothety then degenerates to a pure
        // translation along the epipolar direction, handled below.
        let denom0 = 1.0 - c.z / z0;
        if denom0.abs() < 1e-12 {
            return Err(GeometryError::DegenerateHomography);
        }

        let n = depths.len();
        let mut scale = Vec::with_capacity(n);
        let mut offset_x = Vec::with_capacity(n);
        let mut offset_y = Vec::with_capacity(n);

        if c.z.abs() < 1e-12 {
            // Epipole at infinity (sideways / slider motion, the common EMVS
            // case). The exact relation is then
            //   x(Zi) = x(Z0) + fx·cₓ·(1/Zi − 1/Z0)
            // i.e. scale 1 and a per-plane pixel offset.
            for &zi in depths {
                scale.push(1.0);
                offset_x.push(intrinsics.fx * c.x * (1.0 / zi - 1.0 / z0));
                offset_y.push(intrinsics.fy * c.y * (1.0 / zi - 1.0 / z0));
            }
        } else {
            let ex = intrinsics.fx * c.x / c.z + intrinsics.cx;
            let ey = intrinsics.fy * c.y / c.z + intrinsics.cy;
            for &zi in depths {
                let r = (1.0 - c.z / zi) / denom0;
                scale.push(r);
                offset_x.push((1.0 - r) * ex);
                offset_y.push((1.0 - r) * ey);
            }
        }

        Ok(Self {
            scale,
            offset_x,
            offset_y,
            depths: depths.to_vec(),
        })
    }

    /// Number of depth planes covered.
    pub fn len(&self) -> usize {
        self.scale.len()
    }

    /// Whether there are no planes (never true for values built by
    /// [`ProportionalCoefficients::compute`]).
    pub fn is_empty(&self) -> bool {
        self.scale.is_empty()
    }

    /// Transfers a canonical-plane point `x(Z0)` to depth plane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn transfer(&self, canonical: Vec2, i: usize) -> Vec2 {
        Vec2::new(
            self.scale[i] * canonical.x + self.offset_x[i],
            self.scale[i] * canonical.y + self.offset_y[i],
        )
    }
}

/// Reference implementation of event back-projection that raycasts each event
/// against every depth plane directly (no homography / proportional shortcut).
///
/// Used by the test-suite as ground truth for both the canonical homography
/// and the proportional transfer.
pub fn backproject_exhaustive(
    virtual_from_world: &Pose,
    camera_from_world: &Pose,
    intrinsics: &CameraIntrinsics,
    event_pixel: Vec2,
    depths: &[f64],
) -> Vec<Option<Vec2>> {
    let v_from_c = virtual_from_world.relative_to(camera_from_world);
    let c = v_from_c.translation;
    let dir = v_from_c.rotate(intrinsics.unproject(event_pixel));
    depths
        .iter()
        .map(|&z| {
            if dir.z.abs() < 1e-15 {
                return None;
            }
            let lambda = (z - c.z) / dir.z;
            let p = c + dir * lambda;
            if p.z <= 0.0 {
                return None;
            }
            Some(Vec2::new(
                intrinsics.fx * p.x / p.z + intrinsics.cx,
                intrinsics.fy * p.y / p.z + intrinsics.cy,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quat::UnitQuaternion;

    fn intrinsics() -> CameraIntrinsics {
        CameraIntrinsics::davis240_default()
    }

    fn depths(n: usize, z_min: f64, z_max: f64) -> Vec<f64> {
        // Uniform in inverse depth, index 0 = closest plane (canonical).
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                1.0 / ((1.0 - t) / z_min + t / z_max)
            })
            .collect()
    }

    #[test]
    fn identity_pose_gives_identity_homography() {
        let pose = Pose::identity();
        let h = CanonicalHomography::compute(&pose, &pose, &intrinsics(), 2.0).unwrap();
        assert!(h.h.max_abs_diff(&Mat3::identity()) < 1e-9);
        let px = Vec2::new(100.0, 50.0);
        assert!((h.project(px).unwrap() - px).norm() < 1e-9);
    }

    #[test]
    fn rejects_nonpositive_canonical_depth() {
        let pose = Pose::identity();
        assert!(CanonicalHomography::compute(&pose, &pose, &intrinsics(), 0.0).is_err());
        assert!(CanonicalHomography::compute(&pose, &pose, &intrinsics(), -1.0).is_err());
    }

    #[test]
    fn homography_matches_exhaustive_backprojection_on_z0() {
        let k = intrinsics();
        let virtual_pose = Pose::identity();
        let cam_pose = Pose::new(
            UnitQuaternion::from_euler(0.02, -0.03, 0.01),
            Vec3::new(0.10, -0.04, 0.05),
        );
        let zs = depths(20, 1.0, 5.0);
        let h = CanonicalHomography::compute(&virtual_pose, &cam_pose, &k, zs[0]).unwrap();
        for &(x, y) in &[(20.0, 20.0), (120.0, 90.0), (230.0, 170.0), (5.0, 140.0)] {
            let px = Vec2::new(x, y);
            let via_h = h.project(px).unwrap();
            let via_ray = backproject_exhaustive(&virtual_pose, &cam_pose, &k, px, &zs)[0].unwrap();
            assert!(
                (via_h - via_ray).norm() < 1e-6,
                "pixel {px}: homography {via_h} vs raycast {via_ray}"
            );
        }
    }

    #[test]
    fn proportional_transfer_matches_exhaustive_backprojection() {
        let k = intrinsics();
        let virtual_pose = Pose::identity();
        // General motion including a Z component so the homothety branch is used.
        let cam_pose = Pose::new(
            UnitQuaternion::from_euler(0.01, 0.02, -0.015),
            Vec3::new(0.08, 0.03, 0.06),
        );
        let zs = depths(50, 1.0, 6.0);
        let h = CanonicalHomography::compute(&virtual_pose, &cam_pose, &k, zs[0]).unwrap();
        let phi =
            ProportionalCoefficients::compute(&virtual_pose, &cam_pose, &k, &zs, zs[0]).unwrap();
        assert_eq!(phi.len(), zs.len());

        for &(x, y) in &[(30.0, 40.0), (120.0, 90.0), (200.0, 160.0)] {
            let px = Vec2::new(x, y);
            let canonical = h.project(px).unwrap();
            let exhaustive = backproject_exhaustive(&virtual_pose, &cam_pose, &k, px, &zs);
            for (i, exp) in exhaustive.iter().enumerate() {
                let got = phi.transfer(canonical, i);
                let exp = exp.unwrap();
                assert!(
                    (got - exp).norm() < 1e-5,
                    "plane {i}: transfer {got} vs raycast {exp}"
                );
            }
        }
    }

    #[test]
    fn proportional_transfer_sideways_motion_epipole_at_infinity() {
        let k = intrinsics();
        let virtual_pose = Pose::identity();
        // Pure sideways slider motion: c_z == 0 exactly.
        let cam_pose = Pose::from_translation(Vec3::new(0.15, 0.0, 0.0));
        let zs = depths(30, 0.8, 4.0);
        let h = CanonicalHomography::compute(&virtual_pose, &cam_pose, &k, zs[0]).unwrap();
        let phi =
            ProportionalCoefficients::compute(&virtual_pose, &cam_pose, &k, &zs, zs[0]).unwrap();
        let px = Vec2::new(80.0, 60.0);
        let canonical = h.project(px).unwrap();
        let exhaustive = backproject_exhaustive(&virtual_pose, &cam_pose, &k, px, &zs);
        for (i, exp) in exhaustive.iter().enumerate() {
            let got = phi.transfer(canonical, i);
            let exp = exp.unwrap();
            assert!((got - exp).norm() < 1e-6, "plane {i}: {got} vs {exp}");
        }
    }

    #[test]
    fn canonical_plane_coefficients_are_identity() {
        let k = intrinsics();
        let virtual_pose = Pose::identity();
        let cam_pose = Pose::from_translation(Vec3::new(0.05, 0.02, 0.03));
        let zs = depths(10, 1.0, 3.0);
        let phi =
            ProportionalCoefficients::compute(&virtual_pose, &cam_pose, &k, &zs, zs[0]).unwrap();
        assert!((phi.scale[0] - 1.0).abs() < 1e-12);
        assert!(phi.offset_x[0].abs() < 1e-9);
        assert!(phi.offset_y[0].abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_depth_lists() {
        let k = intrinsics();
        let pose = Pose::identity();
        assert!(ProportionalCoefficients::compute(&pose, &pose, &k, &[], 1.0).is_err());
        assert!(ProportionalCoefficients::compute(&pose, &pose, &k, &[1.0, -2.0], 1.0).is_err());
    }

    #[test]
    fn degenerate_camera_on_plane_is_an_error() {
        let k = intrinsics();
        let virtual_pose = Pose::identity();
        // Camera centre exactly on the canonical plane Z0 = 1.
        let cam_pose = Pose::from_translation(Vec3::new(0.0, 0.0, 1.0));
        let zs = vec![1.0, 2.0, 3.0];
        assert!(
            ProportionalCoefficients::compute(&virtual_pose, &cam_pose, &k, &zs, zs[0]).is_err()
        );
    }
}
