//! Unit quaternions for representing camera orientation along a trajectory.

use crate::mat::Mat3;
use crate::vec::Vec3;
use std::fmt;
use std::ops::Mul;

/// A unit quaternion representing a 3-D rotation.
///
/// Stored as `(w, x, y, z)` with `w` the scalar part. Constructors normalize
/// the quaternion so downstream rotation code can assume unit norm.
///
/// # Examples
///
/// ```
/// use eventor_geom::{UnitQuaternion, Vec3};
/// let q = UnitQuaternion::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2);
/// let r = q.rotate(Vec3::X);
/// assert!((r - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitQuaternion {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Default for UnitQuaternion {
    fn default() -> Self {
        Self::identity()
    }
}

impl UnitQuaternion {
    /// The identity rotation.
    pub const fn identity() -> Self {
        Self {
            w: 1.0,
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
    }

    /// Creates a unit quaternion from raw components, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if all components are zero.
    pub fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        let n = (w * w + x * x + y * y + z * z).sqrt();
        assert!(n > 0.0, "cannot normalize a zero quaternion");
        Self {
            w: w / n,
            x: x / n,
            y: y / n,
            z: z / n,
        }
    }

    /// Builds a quaternion from components that are **already unit norm**,
    /// preserving their exact bit patterns (no renormalization).
    ///
    /// [`UnitQuaternion::new`] divides by the computed norm, which can
    /// perturb even an already-normalized quaternion by one ULP per
    /// component; deserializers that must round-trip poses bit-exactly (the
    /// `eventor-evtr/1` record/replay container) use this constructor
    /// instead. Returns `None` when the components deviate from unit norm
    /// by more than `tolerance`.
    pub fn from_normalized(w: f64, x: f64, y: f64, z: f64, tolerance: f64) -> Option<Self> {
        let norm = (w * w + x * x + y * y + z * z).sqrt();
        if !norm.is_finite() || (norm - 1.0).abs() > tolerance {
            return None;
        }
        Some(Self { w, x, y, z })
    }

    /// Creates a rotation of `angle` radians about `axis`.
    ///
    /// A zero axis yields the identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        match axis.normalized() {
            None => Self::identity(),
            Some(a) => {
                let half = angle * 0.5;
                let s = half.sin();
                Self {
                    w: half.cos(),
                    x: a.x * s,
                    y: a.y * s,
                    z: a.z * s,
                }
            }
        }
    }

    /// Creates a rotation from roll (about X), pitch (about Y) and yaw (about Z),
    /// applied in Z·Y·X order.
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Self {
        let qx = Self::from_axis_angle(Vec3::X, roll);
        let qy = Self::from_axis_angle(Vec3::Y, pitch);
        let qz = Self::from_axis_angle(Vec3::Z, yaw);
        qz * qy * qx
    }

    /// Converts a rotation matrix (assumed orthonormal) to a quaternion.
    pub fn from_rotation_matrix(r: &Mat3) -> Self {
        let m = &r.m;
        let trace = m[0][0] + m[1][1] + m[2][2];
        if trace > 0.0 {
            let s = (trace + 1.0).sqrt() * 2.0;
            Self::new(
                0.25 * s,
                (m[2][1] - m[1][2]) / s,
                (m[0][2] - m[2][0]) / s,
                (m[1][0] - m[0][1]) / s,
            )
        } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
            let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
            Self::new(
                (m[2][1] - m[1][2]) / s,
                0.25 * s,
                (m[0][1] + m[1][0]) / s,
                (m[0][2] + m[2][0]) / s,
            )
        } else if m[1][1] > m[2][2] {
            let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
            Self::new(
                (m[0][2] - m[2][0]) / s,
                (m[0][1] + m[1][0]) / s,
                0.25 * s,
                (m[1][2] + m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
            Self::new(
                (m[1][0] - m[0][1]) / s,
                (m[0][2] + m[2][0]) / s,
                (m[1][2] + m[2][1]) / s,
                0.25 * s,
            )
        }
    }

    /// Converts to a rotation matrix.
    pub fn to_rotation_matrix(self) -> Mat3 {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        Mat3 {
            m: [
                [
                    1.0 - 2.0 * (y * y + z * z),
                    2.0 * (x * y - w * z),
                    2.0 * (x * z + w * y),
                ],
                [
                    2.0 * (x * y + w * z),
                    1.0 - 2.0 * (x * x + z * z),
                    2.0 * (y * z - w * x),
                ],
                [
                    2.0 * (x * z - w * y),
                    2.0 * (y * z + w * x),
                    1.0 - 2.0 * (x * x + y * y),
                ],
            ],
        }
    }

    /// Rotates a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2*q_vec x (q_vec x v + w*v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// The inverse (conjugate for unit quaternions) rotation.
    pub fn inverse(self) -> Self {
        Self {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Quaternion dot product (cosine of half the angle between rotations).
    pub fn dot(self, rhs: Self) -> f64 {
        self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Rotation angle in radians, in `[0, π]`.
    pub fn angle(self) -> f64 {
        2.0 * self.w.clamp(-1.0, 1.0).abs().acos()
    }

    /// Angular distance to another rotation, in radians.
    pub fn angle_to(self, other: Self) -> f64 {
        (self.inverse() * other).angle()
    }

    /// Spherical linear interpolation between two rotations.
    ///
    /// `t = 0` returns `self`, `t = 1` returns `other`. Takes the shortest
    /// path on the rotation manifold (handles the quaternion double cover).
    pub fn slerp(self, other: Self, t: f64) -> Self {
        let mut b = other;
        let mut cos = self.dot(other);
        if cos < 0.0 {
            cos = -cos;
            b = Self {
                w: -other.w,
                x: -other.x,
                y: -other.y,
                z: -other.z,
            };
        }
        if cos > 0.9995 {
            // Nearly parallel: fall back to normalized linear interpolation.
            return Self::new(
                self.w + t * (b.w - self.w),
                self.x + t * (b.x - self.x),
                self.y + t * (b.y - self.y),
                self.z + t * (b.z - self.z),
            );
        }
        let theta = cos.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let wa = ((1.0 - t) * theta).sin() / sin_theta;
        let wb = (t * theta).sin() / sin_theta;
        Self::new(
            wa * self.w + wb * b.w,
            wa * self.x + wb * b.x,
            wa * self.y + wb * b.y,
            wa * self.z + wb * b.z,
        )
    }

    /// Quaternion norm (should be 1 up to floating-point error).
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }
}

impl Mul for UnitQuaternion {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }
}

impl fmt::Display for UnitQuaternion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q(w={:.6}, x={:.6}, y={:.6}, z={:.6})",
            self.w, self.x, self.y, self.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert!((UnitQuaternion::identity().rotate(v) - v).norm() < 1e-15);
    }

    #[test]
    fn axis_angle_quarter_turn() {
        let q = UnitQuaternion::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!((q.rotate(Vec3::X) - Vec3::Y).norm() < 1e-12);
        assert!((q.rotate(Vec3::Y) - (-Vec3::X)).norm() < 1e-12);
    }

    #[test]
    fn rotation_matrix_round_trip() {
        let q = UnitQuaternion::from_euler(0.3, -0.7, 1.2);
        let r = q.to_rotation_matrix();
        let q2 = UnitQuaternion::from_rotation_matrix(&r);
        // q and -q represent the same rotation.
        let same = q.dot(q2).abs();
        assert!((same - 1.0).abs() < 1e-10);
    }

    #[test]
    fn matrix_is_orthonormal() {
        let r = UnitQuaternion::from_euler(0.1, 0.2, 0.3).to_rotation_matrix();
        let should_be_id = r * r.transpose();
        assert!(should_be_id.max_abs_diff(&Mat3::identity()) < 1e-12);
        assert!((r.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_undoes_rotation() {
        let q = UnitQuaternion::from_euler(0.5, 0.2, -0.9);
        let v = Vec3::new(2.0, 0.1, -1.0);
        assert!((q.inverse().rotate(q.rotate(v)) - v).norm() < 1e-12);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = UnitQuaternion::from_axis_angle(Vec3::X, 0.4);
        let b = UnitQuaternion::from_axis_angle(Vec3::Y, -0.6);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let composed = (a * b).rotate(v);
        let sequential = a.rotate(b.rotate(v));
        assert!((composed - sequential).norm() < 1e-12);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = UnitQuaternion::identity();
        let b = UnitQuaternion::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(a.slerp(b, 0.0).angle_to(a) < 1e-12);
        assert!(a.slerp(b, 1.0).angle_to(b) < 1e-12);
        let mid = a.slerp(b, 0.5);
        assert!((mid.angle_to(a) - FRAC_PI_2 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn angle_of_half_turn() {
        let q = UnitQuaternion::from_axis_angle(Vec3::Y, PI);
        assert!((q.angle() - PI).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let q = UnitQuaternion::from_euler(1.0, -2.0, 0.5);
        let v = Vec3::new(0.3, 0.4, 0.5);
        assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn euler_zero_is_identity() {
        let q = UnitQuaternion::from_euler(0.0, 0.0, 0.0);
        assert!(q.angle() < 1e-12);
    }
}
