//! # eventor-emvs
//!
//! The **baseline** event-based multi-view stereo (EMVS) mapper: the
//! space-sweep algorithm of Rebecq et al. that the paper runs on an Intel i5
//! CPU as its comparison point (Table 3, "Intel CPU" column; the "Original"
//! bars of Fig. 4 and Fig. 7a).
//!
//! The pipeline is the original (non-reformulated) schedule: events are
//! aggregated into 1024-event frames, distortion-corrected per frame,
//! back-projected onto the canonical plane `Z0` of the current key reference
//! view with a plane-induced homography, transferred to all DSI depth planes,
//! and voted into an `f32` DSI with **bilinear** voting. Scene structure is
//! detected per key frame and merged into a global point cloud.
//!
//! The hardware-friendly reformulation (streaming distortion correction,
//! pre-computed coefficients, nearest voting, fixed-point quantization) lives
//! in `eventor-core`.
//!
//! This crate also hosts the **streaming session core** shared by every
//! pipeline: the [`ExecutionBackend`] contract, the push/poll
//! [`SessionDriver`] and the [`BaselineBackend`] — see [`EmvsMapper::reconstruct`],
//! which is a thin batch wrapper over a session.
//!
//! ## Example
//!
//! ```no_run
//! use eventor_emvs::{EmvsConfig, EmvsMapper};
//! use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sequence = SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())?;
//! let config = EmvsConfig::default().with_depth_range(sequence.depth_range.0, sequence.depth_range.1);
//! let mapper = EmvsMapper::new(sequence.camera, config)?;
//! let output = mapper.reconstruct(&sequence.events, &sequence.trajectory)?;
//! println!("reconstructed {} key frames", output.keyframes.len());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod backproject;
mod config;
mod error;
mod keyframe;
mod mapper;
mod parallel;
mod profile;
mod session;

pub use backproject::FrameGeometry;
pub use config::{EmvsConfig, VotingMode};
pub use error::EmvsError;
pub use keyframe::KeyframeSelector;
pub use mapper::{EmvsMapper, EmvsOutput, KeyframeReconstruction};
pub use parallel::{run_sharded, shard_packets, ParallelConfig};
pub use profile::{Stage, StageProfile};
pub use session::{
    finalize_volume, import_vote_tiles, reconstruct_with_backend, BackendVoteState,
    BaselineBackend, DriverCheckpoint, ExecutionBackend, FrameWork, SessionDriver, SessionEvent,
    DEFAULT_MAX_PENDING_EVENTS, ENGINE_SPILL_EVENTS,
};
