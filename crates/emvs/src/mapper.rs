//! The full EMVS space-sweep mapper (baseline CPU implementation).
//!
//! This is the algorithm the paper's Intel i5 column of Table 3 measures:
//! event aggregation, per-frame back-projection geometry, canonical and
//! proportional event back-projection, DSI voting (bilinear by default),
//! key-frame management, scene-structure detection and map merging — all in
//! double/single-precision floating point.

use crate::backproject::FrameGeometry;
use crate::config::{EmvsConfig, VotingMode};
use crate::keyframe::KeyframeSelector;
use crate::parallel::{plan_segments, run_sharded, shard_packets, ParallelConfig};
use crate::profile::{Stage, StageProfile};
use crate::EmvsError;
use eventor_dsi::{detect_structure, DepthMap, DepthPlanes, DsiVolume, PointCloud};
use eventor_events::{aggregate, EventFrame, EventStream};
use eventor_geom::{CameraModel, Pose, Trajectory, Vec2};
use std::time::Instant;

/// The reconstruction produced for one key reference view.
#[derive(Debug, Clone)]
pub struct KeyframeReconstruction {
    /// Camera-to-world pose of the key reference (virtual camera) view.
    pub reference_pose: Pose,
    /// Semi-dense depth map extracted from the local DSI.
    pub depth_map: DepthMap,
    /// The depth map converted to a world-frame point cloud.
    pub local_cloud: PointCloud,
    /// Number of event frames accumulated into this DSI.
    pub frames_used: usize,
    /// Number of events accumulated into this DSI.
    pub events_used: usize,
    /// Number of DSI votes cast for this key frame.
    pub votes_cast: u64,
}

/// Output of a full EMVS reconstruction run.
#[derive(Debug, Clone)]
pub struct EmvsOutput {
    /// Per-key-frame reconstructions, in trajectory order.
    pub keyframes: Vec<KeyframeReconstruction>,
    /// The merged global point cloud.
    pub global_map: PointCloud,
    /// Per-stage runtime profile of the run.
    pub profile: StageProfile,
}

impl EmvsOutput {
    /// The first key frame's reconstruction (the one the accuracy figures
    /// evaluate), if any.
    pub fn primary(&self) -> Option<&KeyframeReconstruction> {
        self.keyframes.first()
    }
}

/// The baseline EMVS mapper.
#[derive(Debug, Clone)]
pub struct EmvsMapper {
    camera: CameraModel,
    config: EmvsConfig,
    parallel: ParallelConfig,
}

impl EmvsMapper {
    /// Creates a mapper for the given camera and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations
    /// (zero frame size, fewer than two depth planes, inverted depth range).
    pub fn new(camera: CameraModel, config: EmvsConfig) -> Result<Self, EmvsError> {
        if config.events_per_frame == 0 {
            return Err(EmvsError::InvalidConfig {
                reason: "events_per_frame must be positive".into(),
            });
        }
        if config.num_depth_planes < 2 {
            return Err(EmvsError::InvalidConfig {
                reason: "need at least two depth planes".into(),
            });
        }
        if config.depth_range.0 <= 0.0 || config.depth_range.1 <= config.depth_range.0 {
            return Err(EmvsError::InvalidConfig {
                reason: format!("invalid depth range {:?}", config.depth_range),
            });
        }
        Ok(Self {
            camera,
            config,
            parallel: ParallelConfig::sequential(),
        })
    }

    /// Enables the parallel sharded voting engine for this mapper.
    ///
    /// With [`ParallelConfig::sequential`] (the default) the original
    /// single-threaded golden path runs. With more than one shard the
    /// reconstruction is planned into key-frame segments and voted on worker
    /// shards with a deterministic tree-reduction merge; see
    /// [`crate::plan_segments`]. Nearest voting stays bit-identical to the
    /// sequential result; bilinear voting is deterministic per shard count
    /// but may differ from the sequential float summation order by ULPs.
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The camera model.
    pub fn camera(&self) -> &CameraModel {
        &self.camera
    }

    /// The configuration.
    pub fn config(&self) -> &EmvsConfig {
        &self.config
    }

    /// The active parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Runs the full reconstruction on an event stream with a known
    /// trajectory.
    ///
    /// # Errors
    ///
    /// * [`EmvsError::NoEvents`] when the stream is empty,
    /// * [`EmvsError::Geometry`] when a frame pose cannot be interpolated or
    ///   induces degenerate geometry,
    /// * [`EmvsError::Dsi`] when the DSI cannot be allocated.
    pub fn reconstruct(
        &self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        if events.is_empty() {
            return Err(EmvsError::NoEvents);
        }
        if self.parallel.is_engine() {
            return self.reconstruct_parallel(events, trajectory);
        }
        let mut profile = StageProfile::new();

        let planes = DepthPlanes::uniform_inverse_depth(
            self.config.depth_range.0,
            self.config.depth_range.1,
            self.config.num_depth_planes,
        )?;
        let width = self.camera.intrinsics.width as usize;
        let height = self.camera.intrinsics.height as usize;
        let mut dsi = DsiVolume::<f32>::new(width, height, planes.clone())?;

        let t0 = Instant::now();
        let frames = aggregate(events, self.config.events_per_frame);
        profile.add(Stage::Aggregation, t0.elapsed());

        let mut selector = KeyframeSelector::new(
            self.config.keyframe_distance,
            self.config.min_frames_per_keyframe,
        );
        let mut reference: Option<Pose> = None;
        let mut keyframes: Vec<KeyframeReconstruction> = Vec::new();
        let mut global_map = PointCloud::new();
        let mut frames_in_keyframe = 0usize;
        let mut events_in_keyframe = 0usize;

        // Scratch buffers reused across frames.
        let mut undistorted: Vec<Vec2> = Vec::with_capacity(self.config.events_per_frame);
        let mut canonical: Vec<Option<Vec2>> = Vec::with_capacity(self.config.events_per_frame);
        let mut vote_targets: Vec<(f64, f64, usize)> =
            Vec::with_capacity(self.config.events_per_frame * planes.len());

        for frame in &frames {
            let Some(timestamp) = frame.timestamp() else {
                continue;
            };
            let pose = trajectory.pose_at(timestamp)?;

            match reference {
                None => reference = Some(pose),
                Some(ref ref_pose) => {
                    if selector.should_switch(ref_pose, &pose) {
                        let t = Instant::now();
                        let reconstruction = self.finalize_keyframe(
                            &dsi,
                            ref_pose,
                            frames_in_keyframe,
                            events_in_keyframe,
                        );
                        profile.add(Stage::Detection, t.elapsed());
                        let t = Instant::now();
                        global_map.merge(&reconstruction.local_cloud);
                        dsi.reset();
                        profile.add(Stage::Merging, t.elapsed());
                        keyframes.push(reconstruction);
                        profile.keyframes += 1;
                        reference = Some(pose);
                        selector.reset();
                        frames_in_keyframe = 0;
                        events_in_keyframe = 0;
                    }
                }
            }
            let ref_pose = reference.expect("reference pose set above");

            self.process_frame(
                frame,
                &ref_pose,
                &pose,
                &planes,
                &mut dsi,
                &mut profile,
                &mut undistorted,
                &mut canonical,
                &mut vote_targets,
            )?;

            selector.register_frame();
            frames_in_keyframe += 1;
            events_in_keyframe += frame.len();
            profile.frames_processed += 1;
            profile.events_processed += frame.len() as u64;
        }

        // Finalize the last key frame.
        if let Some(ref_pose) = reference {
            if frames_in_keyframe > 0 {
                let t = Instant::now();
                let reconstruction =
                    self.finalize_keyframe(&dsi, &ref_pose, frames_in_keyframe, events_in_keyframe);
                profile.add(Stage::Detection, t.elapsed());
                let t = Instant::now();
                global_map.merge(&reconstruction.local_cloud);
                profile.add(Stage::Merging, t.elapsed());
                keyframes.push(reconstruction);
                profile.keyframes += 1;
            }
        }

        Ok(EmvsOutput {
            keyframes,
            global_map,
            profile,
        })
    }

    /// The parallel sharded voting engine's drive of the baseline dataflow:
    /// plan key-frame segments, vote packets on worker shards into per-shard
    /// DSI tiles, tree-reduce, detect.
    ///
    /// The fused per-stage work is identical to the sequential path
    /// (undistort → canonical projection → per-plane transfer → vote); only
    /// the schedule differs. Wall-clock time of the fused hot loop is
    /// attributed evenly to its four stages in the profile, since the stages
    /// are not separately timeable once fused.
    fn reconstruct_parallel(
        &self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        let mut profile = StageProfile::new();
        let planes = DepthPlanes::uniform_inverse_depth(
            self.config.depth_range.0,
            self.config.depth_range.1,
            self.config.num_depth_planes,
        )?;
        let width = self.camera.intrinsics.width as usize;
        let height = self.camera.intrinsics.height as usize;

        let t = Instant::now();
        let frames = aggregate(events, self.config.events_per_frame);
        profile.add(Stage::Aggregation, t.elapsed());

        let t = Instant::now();
        let segments = plan_segments(
            &frames,
            trajectory,
            &self.camera.intrinsics,
            &planes,
            &self.config,
        )?;
        profile.add(Stage::ComputeHomography, t.elapsed());

        let shards = self.parallel.shards();
        let mut tiles: Vec<DsiVolume<f32>> = (0..shards)
            .map(|_| DsiVolume::new(width, height, planes.clone()))
            .collect::<Result<_, _>>()?;

        let mut keyframes: Vec<KeyframeReconstruction> = Vec::new();
        let mut global_map = PointCloud::new();

        for segment in &segments {
            let t = Instant::now();
            let packets = segment.packets(self.parallel.packet_events());
            let camera = &self.camera;
            let voting = self.config.voting;
            run_sharded(&mut tiles, |shard, tile| {
                for packet in shard_packets(&packets, shard, shards) {
                    let frame = &segment.frames[packet.frame];
                    let local = packet.range.start - frame.event_range.start
                        ..packet.range.end - frame.event_range.start;
                    for e in &frames[frame.frame_index].events[local] {
                        let px = camera.undistort_pixel(Vec2::new(e.x as f64, e.y as f64));
                        let Some(c) = frame.geometry.canonical(px) else {
                            continue;
                        };
                        for i in 0..frame.geometry.num_planes() {
                            let p = frame.geometry.transfer(c, i);
                            match voting {
                                VotingMode::Bilinear => tile.vote_bilinear(p.x, p.y, i, 1.0),
                                VotingMode::Nearest => tile.vote_nearest(p.x, p.y, i, 1.0),
                            }
                        }
                    }
                }
            });
            let fused = t.elapsed() / 4;
            profile.add(Stage::DistortionCorrection, fused);
            profile.add(Stage::CanonicalProjection, fused);
            profile.add(Stage::ProportionalProjection, fused);
            profile.add(Stage::VoteDsi, fused);

            let t = Instant::now();
            let merged =
                DsiVolume::tree_reduce(&mut tiles).expect("at least one shard tile exists");
            let reconstruction = self.finalize_keyframe(
                merged,
                &segment.reference_pose,
                segment.frames.len(),
                segment.events,
            );
            profile.add(Stage::Detection, t.elapsed());
            let t = Instant::now();
            global_map.merge(&reconstruction.local_cloud);
            keyframes.push(reconstruction);
            profile.keyframes += 1;
            for tile in &mut tiles {
                tile.reset();
            }
            profile.add(Stage::Merging, t.elapsed());
            profile.frames_processed += segment.frames.len() as u64;
            profile.events_processed += segment.events as u64;
        }

        Ok(EmvsOutput {
            keyframes,
            global_map,
            profile,
        })
    }

    /// Back-projects one event frame into the DSI (the `𝒫` and `ℛ` stages).
    #[allow(clippy::too_many_arguments)]
    fn process_frame(
        &self,
        frame: &EventFrame,
        reference_pose: &Pose,
        frame_pose: &Pose,
        planes: &DepthPlanes,
        dsi: &mut DsiVolume<f32>,
        profile: &mut StageProfile,
        undistorted: &mut Vec<Vec2>,
        canonical: &mut Vec<Option<Vec2>>,
        vote_targets: &mut Vec<(f64, f64, usize)>,
    ) -> Result<(), EmvsError> {
        // Event distortion correction (in the original schedule: after
        // aggregation, once per frame).
        let t = Instant::now();
        undistorted.clear();
        undistorted.extend(frame.events.iter().map(|e| {
            self.camera
                .undistort_pixel(Vec2::new(e.x as f64, e.y as f64))
        }));
        profile.add(Stage::DistortionCorrection, t.elapsed());

        // Homography H_Z0 and proportional coefficients φ (once per frame).
        let t = Instant::now();
        let geometry =
            FrameGeometry::compute(reference_pose, frame_pose, &self.camera.intrinsics, planes)?;
        profile.add(Stage::ComputeHomography, t.elapsed());
        // The reference implementation computes φ after the canonical
        // projection; the cost is attributed to its own stage either way.
        let t = Instant::now();
        let n_planes = geometry.num_planes();
        profile.add(Stage::ComputeCoefficients, t.elapsed());

        // Canonical back-projection P{Z0}, per event.
        let t = Instant::now();
        canonical.clear();
        canonical.extend(undistorted.iter().map(|&px| geometry.canonical(px)));
        profile.add(Stage::CanonicalProjection, t.elapsed());

        // Proportional back-projection P{Z0;Zi} + vote generation G.
        let t = Instant::now();
        vote_targets.clear();
        for c in canonical.iter().flatten() {
            for i in 0..n_planes {
                let p = geometry.transfer(*c, i);
                vote_targets.push((p.x, p.y, i));
            }
        }
        profile.add(Stage::ProportionalProjection, t.elapsed());

        // Vote DSI voxels V.
        let t = Instant::now();
        match self.config.voting {
            VotingMode::Bilinear => {
                for &(x, y, plane) in vote_targets.iter() {
                    dsi.vote_bilinear(x, y, plane, 1.0);
                }
            }
            VotingMode::Nearest => {
                for &(x, y, plane) in vote_targets.iter() {
                    dsi.vote_nearest(x, y, plane, 1.0);
                }
            }
        }
        profile.add(Stage::VoteDsi, t.elapsed());
        Ok(())
    }

    /// Scene-structure detection and point-cloud conversion for a finished
    /// key frame.
    fn finalize_keyframe(
        &self,
        dsi: &DsiVolume<f32>,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
    ) -> KeyframeReconstruction {
        let depth_map = detect_structure(dsi, &self.config.detection);
        let local_cloud =
            PointCloud::from_depth_map(&depth_map, &self.camera.intrinsics, reference_pose);
        KeyframeReconstruction {
            reference_pose: *reference_pose,
            depth_map,
            local_cloud,
            frames_used,
            events_used,
            votes_cast: dsi.votes_cast(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

    fn slider_sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    fn config_for(seq: &SyntheticSequence) -> EmvsConfig {
        EmvsConfig::default()
            .with_depth_range(seq.depth_range.0, seq.depth_range.1)
            .with_depth_planes(60)
    }

    #[test]
    fn invalid_configurations_rejected() {
        let cam = CameraModel::davis240_ideal();
        let bad = EmvsConfig {
            events_per_frame: 0,
            ..Default::default()
        };
        assert!(EmvsMapper::new(cam, bad).is_err());
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(EmvsMapper::new(cam, bad).is_err());
        let bad = EmvsConfig {
            depth_range: (2.0, 1.0),
            ..Default::default()
        };
        assert!(EmvsMapper::new(cam, bad).is_err());
        assert!(EmvsMapper::new(cam, EmvsConfig::default()).is_ok());
    }

    #[test]
    fn empty_stream_is_an_error() {
        let cam = CameraModel::davis240_ideal();
        let mapper = EmvsMapper::new(cam, EmvsConfig::default()).unwrap();
        let traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 2);
        assert!(matches!(
            mapper.reconstruct(&EventStream::new(), &traj),
            Err(EmvsError::NoEvents)
        ));
    }

    #[test]
    fn reconstructs_slider_scene_with_low_abs_rel() {
        let seq = slider_sequence();
        let mapper = EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let out = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();
        assert!(!out.keyframes.is_empty());
        let primary = out.primary().unwrap();
        assert!(
            primary.depth_map.valid_count() > 50,
            "too sparse: {}",
            primary.depth_map.valid_count()
        );

        let gt = seq.ground_truth_depth_at(&primary.reference_pose);
        let metrics = primary
            .depth_map
            .compare_to_ground_truth(gt.as_slice())
            .unwrap();
        assert!(
            metrics.abs_rel < 0.12,
            "AbsRel too high: {:.4} ({} px compared)",
            metrics.abs_rel,
            metrics.compared_pixels
        );
        assert!(metrics.compared_pixels > 50);
        assert!(!out.global_map.is_empty());
    }

    #[test]
    fn profile_shows_backprojection_dominates() {
        let seq = slider_sequence();
        let mapper = EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let out = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let p = &out.profile;
        assert!(p.frames_processed > 0);
        assert_eq!(p.events_processed as usize, seq.events.len());
        // The paper reports >80% on the full-resolution dataset; on the small
        // test configuration the share is still clearly dominant.
        assert!(
            p.projection_raycounting_fraction() > 0.5,
            "P+R fraction unexpectedly low: {:.2}",
            p.projection_raycounting_fraction()
        );
        assert!(p.fpga_subtask_fraction() > 0.7);
        assert!(p.frame_us() > 0.0);
        assert!(p.event_rate() > 0.0);
    }

    #[test]
    fn nearest_voting_accuracy_is_close_to_bilinear() {
        let seq = slider_sequence();
        let bilinear = EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let nearest = EmvsMapper::new(
            seq.camera,
            config_for(&seq).with_voting(VotingMode::Nearest),
        )
        .unwrap();
        let out_b = bilinear.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let out_n = nearest.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let gt_b = seq.ground_truth_depth_at(&out_b.primary().unwrap().reference_pose);
        let gt_n = seq.ground_truth_depth_at(&out_n.primary().unwrap().reference_pose);
        let m_b = out_b
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_b.as_slice())
            .unwrap();
        let m_n = out_n
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_n.as_slice())
            .unwrap();
        // Fig. 4a: the nearest-voting accuracy loss is small (paper: <1.18%
        // AbsRel difference). Allow a slightly wider band on the tiny test set.
        assert!(
            (m_n.abs_rel - m_b.abs_rel).abs() < 0.05,
            "nearest {:.4} vs bilinear {:.4}",
            m_n.abs_rel,
            m_b.abs_rel
        );
    }

    #[test]
    fn parallel_mapper_matches_sequential_nearest_voting() {
        let seq = slider_sequence();
        let config = config_for(&seq).with_voting(VotingMode::Nearest);
        let sequential = EmvsMapper::new(seq.camera, config.clone())
            .unwrap()
            .reconstruct(&seq.events, &seq.trajectory)
            .unwrap();
        let parallel = EmvsMapper::new(seq.camera, config)
            .unwrap()
            .with_parallelism(ParallelConfig::with_shards(4))
            .reconstruct(&seq.events, &seq.trajectory)
            .unwrap();
        assert_eq!(sequential.keyframes.len(), parallel.keyframes.len());
        for (s, p) in sequential.keyframes.iter().zip(&parallel.keyframes) {
            assert_eq!(s.votes_cast, p.votes_cast);
            assert_eq!(s.depth_map.depth_data(), p.depth_map.depth_data());
        }
        assert_eq!(
            sequential.profile.events_processed,
            parallel.profile.events_processed
        );
    }

    #[test]
    fn long_trajectory_produces_multiple_keyframes() {
        let seq = slider_sequence();
        let config = config_for(&seq).with_keyframe_distance(0.02);
        let mapper = EmvsMapper::new(seq.camera, config).unwrap();
        let out = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();
        assert!(
            out.keyframes.len() >= 2,
            "expected multiple keyframes, got {}",
            out.keyframes.len()
        );
        assert_eq!(out.profile.keyframes as usize, out.keyframes.len());
        // Reference poses advance along the trajectory.
        let first = out.keyframes.first().unwrap().reference_pose;
        let last = out.keyframes.last().unwrap().reference_pose;
        assert!(first.translation_distance(&last) > 0.02);
    }
}
