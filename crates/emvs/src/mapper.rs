//! The full EMVS space-sweep mapper (baseline CPU implementation).
//!
//! This is the algorithm the paper's Intel i5 column of Table 3 measures:
//! event aggregation, per-frame back-projection geometry, canonical and
//! proportional event back-projection, DSI voting (bilinear by default),
//! key-frame management, scene-structure detection and map merging — all in
//! double/single-precision floating point.
//!
//! Since the streaming redesign, [`EmvsMapper::reconstruct`] is a thin batch
//! wrapper over the session core ([`crate::SessionDriver`]) running the
//! [`crate::BaselineBackend`]; the per-frame datapath is unchanged and the
//! nearest-voting output is bit-identical to the original in-line loop.

use crate::config::EmvsConfig;
use crate::parallel::ParallelConfig;
use crate::profile::StageProfile;
use crate::session::{reconstruct_with_backend, BaselineBackend};
use crate::EmvsError;
use eventor_dsi::{DepthMap, PointCloud};
use eventor_events::EventStream;
use eventor_geom::{CameraModel, Pose, Trajectory};

/// The reconstruction produced for one key reference view.
#[derive(Debug, Clone)]
pub struct KeyframeReconstruction {
    /// Camera-to-world pose of the key reference (virtual camera) view.
    pub reference_pose: Pose,
    /// Semi-dense depth map extracted from the local DSI.
    pub depth_map: DepthMap,
    /// The depth map converted to a world-frame point cloud.
    pub local_cloud: PointCloud,
    /// Number of event frames accumulated into this DSI.
    pub frames_used: usize,
    /// Number of events accumulated into this DSI.
    pub events_used: usize,
    /// Number of DSI votes cast for this key frame.
    pub votes_cast: u64,
}

/// Output of a full EMVS reconstruction run.
#[derive(Debug, Clone)]
pub struct EmvsOutput {
    /// Per-key-frame reconstructions, in trajectory order.
    pub keyframes: Vec<KeyframeReconstruction>,
    /// The merged global point cloud.
    pub global_map: PointCloud,
    /// Per-stage runtime profile of the run.
    pub profile: StageProfile,
}

impl EmvsOutput {
    /// The first key frame's reconstruction (the one the accuracy figures
    /// evaluate), if any.
    pub fn primary(&self) -> Option<&KeyframeReconstruction> {
        self.keyframes.first()
    }
}

/// The baseline EMVS mapper.
#[derive(Debug, Clone)]
pub struct EmvsMapper {
    camera: CameraModel,
    config: EmvsConfig,
    parallel: ParallelConfig,
}

impl EmvsMapper {
    /// Creates a mapper for the given camera and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations
    /// (zero frame size, fewer than two depth planes, inverted depth range)
    /// — the shared [`EmvsConfig::validate`] contract.
    pub fn new(camera: CameraModel, config: EmvsConfig) -> Result<Self, EmvsError> {
        config.validate()?;
        Ok(Self {
            camera,
            config,
            parallel: ParallelConfig::sequential(),
        })
    }

    /// Enables the parallel sharded voting engine for this mapper.
    ///
    /// With [`ParallelConfig::sequential`] (the default) the original
    /// single-threaded golden path runs. With more than one shard the
    /// key frame's vote packets are distributed over worker shards with a
    /// deterministic tree-reduction merge (see [`crate::BaselineBackend`]).
    /// Nearest voting stays bit-identical to the sequential result; bilinear
    /// voting is deterministic per shard count but may differ from the
    /// sequential float summation order by ULPs.
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The camera model.
    pub fn camera(&self) -> &CameraModel {
        &self.camera
    }

    /// The configuration.
    pub fn config(&self) -> &EmvsConfig {
        &self.config
    }

    /// The active parallelism configuration.
    pub fn parallelism(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Runs the full reconstruction on an event stream with a known
    /// trajectory — the batch wrapper over a streaming session with the
    /// [`BaselineBackend`].
    ///
    /// # Errors
    ///
    /// * [`EmvsError::NoEvents`] when the stream is empty,
    /// * [`EmvsError::Geometry`] when a frame pose cannot be interpolated or
    ///   induces degenerate geometry,
    /// * [`EmvsError::Dsi`] when the DSI cannot be allocated.
    pub fn reconstruct(
        &self,
        events: &EventStream,
        trajectory: &Trajectory,
    ) -> Result<EmvsOutput, EmvsError> {
        let backend = BaselineBackend::new(self.camera, &self.config, self.parallel)?;
        reconstruct_with_backend(
            self.camera,
            self.config.clone(),
            backend,
            events,
            trajectory,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VotingMode;
    use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

    fn slider_sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    fn config_for(seq: &SyntheticSequence) -> EmvsConfig {
        EmvsConfig::default()
            .with_depth_range(seq.depth_range.0, seq.depth_range.1)
            .with_depth_planes(60)
    }

    #[test]
    fn invalid_configurations_rejected() {
        let cam = CameraModel::davis240_ideal();
        let bad = EmvsConfig {
            events_per_frame: 0,
            ..Default::default()
        };
        assert!(EmvsMapper::new(cam, bad).is_err());
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(EmvsMapper::new(cam, bad).is_err());
        let bad = EmvsConfig {
            depth_range: (2.0, 1.0),
            ..Default::default()
        };
        assert!(EmvsMapper::new(cam, bad).is_err());
        assert!(EmvsMapper::new(cam, EmvsConfig::default()).is_ok());
    }

    #[test]
    fn empty_stream_is_an_error() {
        let cam = CameraModel::davis240_ideal();
        let mapper = EmvsMapper::new(cam, EmvsConfig::default()).unwrap();
        let traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 2);
        assert!(matches!(
            mapper.reconstruct(&EventStream::new(), &traj),
            Err(EmvsError::NoEvents)
        ));
    }

    #[test]
    fn reconstructs_slider_scene_with_low_abs_rel() {
        let seq = slider_sequence();
        let mapper = EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let out = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();
        assert!(!out.keyframes.is_empty());
        let primary = out.primary().unwrap();
        assert!(
            primary.depth_map.valid_count() > 50,
            "too sparse: {}",
            primary.depth_map.valid_count()
        );

        let gt = seq.ground_truth_depth_at(&primary.reference_pose);
        let metrics = primary
            .depth_map
            .compare_to_ground_truth(gt.as_slice())
            .unwrap();
        assert!(
            metrics.abs_rel < 0.12,
            "AbsRel too high: {:.4} ({} px compared)",
            metrics.abs_rel,
            metrics.compared_pixels
        );
        assert!(metrics.compared_pixels > 50);
        assert!(!out.global_map.is_empty());
    }

    #[test]
    fn profile_shows_backprojection_dominates() {
        let seq = slider_sequence();
        let mapper = EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let out = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let p = &out.profile;
        assert!(p.frames_processed > 0);
        assert_eq!(p.events_processed as usize, seq.events.len());
        // The paper reports >80% on the full-resolution dataset; on the small
        // test configuration the share is still clearly dominant.
        assert!(
            p.projection_raycounting_fraction() > 0.5,
            "P+R fraction unexpectedly low: {:.2}",
            p.projection_raycounting_fraction()
        );
        assert!(p.fpga_subtask_fraction() > 0.7);
        assert!(p.frame_us() > 0.0);
        assert!(p.event_rate() > 0.0);
    }

    #[test]
    fn nearest_voting_accuracy_is_close_to_bilinear() {
        let seq = slider_sequence();
        let bilinear = EmvsMapper::new(seq.camera, config_for(&seq)).unwrap();
        let nearest = EmvsMapper::new(
            seq.camera,
            config_for(&seq).with_voting(VotingMode::Nearest),
        )
        .unwrap();
        let out_b = bilinear.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let out_n = nearest.reconstruct(&seq.events, &seq.trajectory).unwrap();
        let gt_b = seq.ground_truth_depth_at(&out_b.primary().unwrap().reference_pose);
        let gt_n = seq.ground_truth_depth_at(&out_n.primary().unwrap().reference_pose);
        let m_b = out_b
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_b.as_slice())
            .unwrap();
        let m_n = out_n
            .primary()
            .unwrap()
            .depth_map
            .compare_to_ground_truth(gt_n.as_slice())
            .unwrap();
        // Fig. 4a: the nearest-voting accuracy loss is small (paper: <1.18%
        // AbsRel difference). Allow a slightly wider band on the tiny test set.
        assert!(
            (m_n.abs_rel - m_b.abs_rel).abs() < 0.05,
            "nearest {:.4} vs bilinear {:.4}",
            m_n.abs_rel,
            m_b.abs_rel
        );
    }

    #[test]
    fn parallel_mapper_matches_sequential_nearest_voting() {
        let seq = slider_sequence();
        let config = config_for(&seq).with_voting(VotingMode::Nearest);
        let sequential = EmvsMapper::new(seq.camera, config.clone())
            .unwrap()
            .reconstruct(&seq.events, &seq.trajectory)
            .unwrap();
        let parallel = EmvsMapper::new(seq.camera, config)
            .unwrap()
            .with_parallelism(ParallelConfig::with_shards(4))
            .reconstruct(&seq.events, &seq.trajectory)
            .unwrap();
        assert_eq!(sequential.keyframes.len(), parallel.keyframes.len());
        for (s, p) in sequential.keyframes.iter().zip(&parallel.keyframes) {
            assert_eq!(s.votes_cast, p.votes_cast);
            assert_eq!(s.depth_map.depth_data(), p.depth_map.depth_data());
        }
        assert_eq!(
            sequential.profile.events_processed,
            parallel.profile.events_processed
        );
    }

    #[test]
    fn long_trajectory_produces_multiple_keyframes() {
        let seq = slider_sequence();
        let config = config_for(&seq).with_keyframe_distance(0.02);
        let mapper = EmvsMapper::new(seq.camera, config).unwrap();
        let out = mapper.reconstruct(&seq.events, &seq.trajectory).unwrap();
        assert!(
            out.keyframes.len() >= 2,
            "expected multiple keyframes, got {}",
            out.keyframes.len()
        );
        assert_eq!(out.profile.keyframes as usize, out.keyframes.len());
        // Reference poses advance along the trajectory.
        let first = out.keyframes.first().unwrap().reference_pose;
        let last = out.keyframes.last().unwrap().reference_pose;
        assert!(first.translation_distance(&last) > 0.02);
    }
}
