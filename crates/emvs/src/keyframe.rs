//! Key reference-view selection (`𝒦`).
//!
//! EMVS builds one local DSI per key reference view. A new key frame is
//! selected when the event camera has translated far enough from the current
//! reference view; all events in between vote into the reference view's DSI.

use eventor_geom::Pose;

/// Decides when to switch to a new key reference view.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyframeSelector {
    distance_threshold: f64,
    min_frames: usize,
    frames_since_switch: usize,
}

impl KeyframeSelector {
    /// Creates a selector.
    ///
    /// * `distance_threshold` — translation distance (metres) between the
    ///   current pose and the reference view that triggers a switch,
    /// * `min_frames` — minimum number of event frames that must have been
    ///   accumulated before a switch is allowed.
    pub fn new(distance_threshold: f64, min_frames: usize) -> Self {
        Self {
            distance_threshold,
            min_frames,
            frames_since_switch: 0,
        }
    }

    /// The configured distance threshold.
    pub fn distance_threshold(&self) -> f64 {
        self.distance_threshold
    }

    /// Number of frames accumulated into the current key frame so far.
    pub fn frames_since_switch(&self) -> usize {
        self.frames_since_switch
    }

    /// Registers that one event frame was processed into the current DSI.
    pub fn register_frame(&mut self) {
        self.frames_since_switch += 1;
    }

    /// Resets the frame counter (called when a new key frame is selected).
    pub fn reset(&mut self) {
        self.frames_since_switch = 0;
    }

    /// Overwrites the frame counter — the checkpoint-restore path, which must
    /// resurrect a mid-key-frame selector exactly where the snapshot left it.
    pub fn restore_frame_count(&mut self, frames_since_switch: usize) {
        self.frames_since_switch = frames_since_switch;
    }

    /// Whether the camera has moved far enough from `reference` for `current`
    /// to become a new key frame.
    pub fn should_switch(&self, reference: &Pose, current: &Pose) -> bool {
        self.frames_since_switch >= self.min_frames
            && reference.translation_distance(current) > self.distance_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_geom::Vec3;

    #[test]
    fn switch_requires_distance_and_minimum_frames() {
        let mut sel = KeyframeSelector::new(0.1, 2);
        let reference = Pose::identity();
        let far = Pose::from_translation(Vec3::new(0.2, 0.0, 0.0));
        let near = Pose::from_translation(Vec3::new(0.05, 0.0, 0.0));

        // Not enough frames yet.
        assert!(!sel.should_switch(&reference, &far));
        sel.register_frame();
        sel.register_frame();
        assert_eq!(sel.frames_since_switch(), 2);
        // Far enough and enough frames.
        assert!(sel.should_switch(&reference, &far));
        // Close poses never switch.
        assert!(!sel.should_switch(&reference, &near));
        // Reset starts the count again.
        sel.reset();
        assert!(!sel.should_switch(&reference, &far));
    }

    #[test]
    fn threshold_accessor() {
        let sel = KeyframeSelector::new(0.25, 1);
        assert_eq!(sel.distance_threshold(), 0.25);
    }
}
