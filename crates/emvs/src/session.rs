//! The streaming **session** core: push-based incremental ingestion of poses
//! and events, driven frame by frame through a pluggable
//! [`ExecutionBackend`].
//!
//! The paper's accelerator is an *online* system — events arrive as a stream
//! and the device votes incrementally — but the original entry points of this
//! repository were batch-only (`reconstruct(&EventStream, &Trajectory)`).
//! This module provides the streaming core both worlds share:
//!
//! * [`SessionDriver`] owns the host-side state machine that is common to
//!   every execution backend: the incrementally grown trajectory, the
//!   bounded pending-event buffer, fixed-size frame aggregation, key-frame
//!   selection, per-frame geometry (`H_{Z0}` / `φ`) computation, keyframe
//!   retirement and global-map merging.
//! * [`ExecutionBackend`] is the narrow contract a voting engine implements:
//!   vote one aggregated frame, retire one key frame. The baseline float
//!   mapper ([`BaselineBackend`]), the reformulated/quantized software and
//!   sharded engines and the co-simulated device (`eventor-core`) all sit
//!   behind it.
//! * [`SessionEvent`] is what [`SessionDriver::poll`] yields: lifecycle
//!   notifications (`SegmentRetired` → `DepthMapReady` → `KeyframeReady`)
//!   emitted as key frames complete.
//!
//! ## Equivalence guarantee
//!
//! Frames are cut from the *concatenation* of all pushed events at fixed
//! `events_per_frame` boundaries, exactly like the batch `aggregate` pass, so
//! the reconstruction is a pure function of the event sequence and the
//! trajectory — **independent of how the stream was split into pushed
//! packets**. For the quantized nearest-voting datapath the output is
//! bit-identical to the batch golden path for every backend
//! (`tests/session_equivalence.rs`, `tests/session_properties.rs`): all of
//! them — software, sharded, and the co-simulated device — delegate the
//! per-event arithmetic to the one bit-true integer kernel in
//! `eventor_fixed::kernel`, so backends differ only in scheduling.
//!
//! ## Backpressure and bounded memory
//!
//! In-flight memory is bounded: at most `max_pending_events` events are
//! buffered (frames leave the buffer as soon as the trajectory covers their
//! mid-point timestamp), and each backend holds fixed-size DSI state plus at
//! most [`ENGINE_SPILL_EVENTS`] buffered key-frame events (the sharded
//! engines spill buffered votes into their tiles past that threshold, so
//! even a key frame that never retires cannot grow without bound). When the
//! buffer is full, [`SessionDriver::push_events`] first tries to drain ready
//! frames and then reports [`EmvsError::Backpressure`] instead of growing
//! without bound; [`SessionDriver::discard_pending`] is the explicit escape
//! hatch for events whose poses can never arrive.

use crate::backproject::FrameGeometry;
use crate::config::{EmvsConfig, VotingMode};
use crate::keyframe::KeyframeSelector;
use crate::mapper::{EmvsOutput, KeyframeReconstruction};
use crate::parallel::{run_sharded, shard_packets, ParallelConfig};
use crate::profile::{Stage, StageProfile};
use crate::EmvsError;
use eventor_dsi::{detect_structure, DepthPlanes, DetectionConfig, DsiVolume, PointCloud};
use eventor_events::{packetize_frame, Event, EventStream, VotePacket};
use eventor_geom::{CameraModel, Pose, Trajectory, Vec2};
use std::time::Instant;

/// Default bound on the session's pending-event buffer (events not yet
/// aggregated into a processed frame). Generous enough for batch-style
/// feeding of the synthetic sequences, small enough to keep a runaway
/// producer from exhausting memory (~16 MiB of events).
pub const DEFAULT_MAX_PENDING_EVENTS: usize = 1 << 20;

/// One aggregated event frame handed to an [`ExecutionBackend`], with the
/// host-side per-frame context already computed by the driver.
#[derive(Debug)]
pub struct FrameWork<'a> {
    /// Sequential index of the frame within the session's stream.
    pub frame_index: usize,
    /// Representative timestamp of the frame (mid-point of first and last
    /// event), the time the frame pose was interpolated at.
    pub timestamp: f64,
    /// The frame's events, in time order.
    pub events: &'a [Event],
    /// Camera-to-world pose of the active key reference view.
    pub reference_pose: Pose,
    /// Interpolated camera-to-world pose of this frame.
    pub frame_pose: Pose,
    /// `H_{Z0}` and `φ` for this frame, relative to the reference view.
    pub geometry: &'a FrameGeometry,
}

/// Lifecycle notifications yielded by [`SessionDriver::poll`].
///
/// For each retired key frame the driver emits, in order: `SegmentRetired`
/// (the DSI stopped accumulating), `DepthMapReady` (structure detection ran),
/// `KeyframeReady` (the full reconstruction — depth map and world-frame
/// cloud — is available via [`SessionDriver::keyframes`]). Sessions with map
/// fusion enabled (`eventor-core`'s `EventorSession`) additionally emit
/// `MapFused`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionEvent {
    /// A key frame's voting segment closed: no more votes will be cast into
    /// its DSI.
    SegmentRetired {
        /// Key-frame index (position in [`SessionDriver::keyframes`]).
        index: usize,
        /// Event frames voted into the segment.
        frames: usize,
        /// Events voted into the segment.
        events: usize,
    },
    /// Structure detection ran on the retired segment's DSI.
    DepthMapReady {
        /// Key-frame index.
        index: usize,
        /// Semi-dense pixels estimated in the depth map.
        valid_pixels: usize,
    },
    /// The key frame's full reconstruction is available.
    KeyframeReady {
        /// Key-frame index.
        index: usize,
        /// DSI votes cast for this key frame.
        votes_cast: u64,
        /// Points contributed to the session's global point cloud.
        map_points: usize,
    },
    /// The key frame's cloud was fused into an attached incremental global
    /// map (only emitted by sessions with fusion enabled).
    MapFused {
        /// Key-frame index.
        index: usize,
        /// Points inserted into the map.
        points: usize,
        /// Voxels newly occupied by this key frame.
        new_voxels: usize,
    },
}

/// The partial DSI vote state of a backend's open key frame, exported by
/// [`ExecutionBackend::export_vote_state`] and re-injected by
/// [`ExecutionBackend::import_vote_state`] — the backend half of a session
/// checkpoint.
///
/// Tiles are kept **per shard**: a sharded engine exports each private tile's
/// partial sums separately, so restoring into an engine with the same shard
/// count reproduces the uninterrupted run bit-for-bit even for `f32` scores
/// (whose addition is order-sensitive). Restoring into a different backend
/// shape merges the tiles into one canonical volume — exact for the
/// saturating `u16` accelerator datapath (saturating unit-vote addition is
/// associative and commutative), approximate only for cross-shape `f32`
/// migration.
#[derive(Debug, Clone)]
pub enum BackendVoteState {
    /// 16-bit integer tiles (the quantized nearest-voting accelerator
    /// datapath).
    Quantized(Vec<DsiVolume<u16>>),
    /// `f32` tiles (the baseline / unquantized datapaths).
    Float(Vec<DsiVolume<f32>>),
}

impl BackendVoteState {
    /// Number of exported tiles.
    pub fn tile_count(&self) -> usize {
        match self {
            Self::Quantized(tiles) => tiles.len(),
            Self::Float(tiles) => tiles.len(),
        }
    }

    /// Total votes cast across the exported tiles.
    pub fn votes_cast(&self) -> u64 {
        match self {
            Self::Quantized(tiles) => tiles.iter().map(|t| t.votes_cast()).sum(),
            Self::Float(tiles) => tiles.iter().map(|t| t.votes_cast()).sum(),
        }
    }
}

/// Checks an imported tile set against a backend's tile geometry and
/// reshapes it into the backend's tiles: a tile-count match restores
/// per-shard partial sums verbatim (bit-exact for every score type); any
/// other count merges everything into tile 0 — the canonical form, exact for
/// saturating integer scores. Every target tile is reset first.
///
/// Shared by every built-in backend's
/// [`ExecutionBackend::import_vote_state`], so the geometry validation and
/// reshaping rules cannot drift between them.
///
/// # Errors
///
/// [`EmvsError::Checkpoint`] (naming `backend`) when any incoming tile's
/// dimensions differ from the targets'.
pub fn import_vote_tiles<S: eventor_dsi::VoxelScore>(
    incoming: Vec<DsiVolume<S>>,
    targets: &mut [&mut DsiVolume<S>],
    backend: &'static str,
) -> Result<(), EmvsError> {
    let (w, h, p) = (
        targets[0].width(),
        targets[0].height(),
        targets[0].num_planes(),
    );
    for tile in &incoming {
        if tile.width() != w || tile.height() != h || tile.num_planes() != p {
            return Err(EmvsError::Checkpoint {
                reason: format!(
                    "checkpointed DSI tile is {}x{}x{} but backend '{backend}' expects {w}x{h}x{p}",
                    tile.width(),
                    tile.height(),
                    tile.num_planes()
                ),
            });
        }
    }
    for target in targets.iter_mut() {
        target.reset();
    }
    if incoming.len() == targets.len() {
        for (target, tile) in targets.iter_mut().zip(incoming) {
            **target = tile;
        }
    } else {
        for tile in &incoming {
            targets[0].merge_from(tile);
        }
    }
    Ok(())
}

/// The contract between the streaming session driver and a voting engine
/// (versioned as `eventor-backend/1`, see `docs/ARCHITECTURE.md` §6).
///
/// A backend owns the DSI state of exactly one in-flight key frame. The
/// driver guarantees the call sequence
/// `vote_frame* (retire_keyframe vote_frame*)*`: every frame between two
/// retirements (and before the first) belongs to the key frame retired next,
/// and `retire_keyframe` must leave the backend ready for the next key
/// frame's first `vote_frame`.
///
/// Backends are [`Send`] so a whole session can migrate between the worker
/// threads of the `eventor-serve` multi-session engine; all calls remain
/// `&mut self` from one thread at a time, so no internal synchronisation is
/// required.
pub trait ExecutionBackend: std::fmt::Debug + Send {
    /// Short stable identifier of the backend (`"software"`, `"sharded"`,
    /// `"cosim"`, `"baseline"`, …).
    fn name(&self) -> &'static str;

    /// Votes one aggregated event frame into the active key frame's DSI.
    ///
    /// Stage timings the backend performs itself (distortion correction,
    /// projections, voting) are attributed to `profile`; the driver accounts
    /// for aggregation, geometry computation and merging.
    ///
    /// # Errors
    ///
    /// Backend-specific failures (e.g. the co-simulated device rejecting a
    /// staged frame) surface as [`EmvsError`] and abort the session.
    fn vote_frame(
        &mut self,
        work: &FrameWork<'_>,
        profile: &mut StageProfile,
    ) -> Result<(), EmvsError>;

    /// Closes the active key frame: runs structure detection on the
    /// accumulated DSI, converts it to a world-frame cloud, resets the DSI
    /// and returns the reconstruction.
    ///
    /// # Errors
    ///
    /// Backend-specific failures surface as [`EmvsError`].
    fn retire_keyframe(
        &mut self,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        profile: &mut StageProfile,
    ) -> Result<KeyframeReconstruction, EmvsError>;

    /// Optional [`std::any::Any`] view for downcasting a boxed backend (used
    /// e.g. to recover the co-simulation report). Backends that carry no
    /// queryable state can keep the default `None`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Exports the open key frame's partial DSI vote state for a session
    /// checkpoint.
    ///
    /// Backends that buffer key-frame work (the sharded engines) first flush
    /// their buffers into the tiles — equivalent to a spill boundary, which
    /// is already proven safe at any point of a key frame — so the exported
    /// tiles alone determine the key frame's remaining evolution. The
    /// backend stays fully usable afterwards: exporting is observation, not
    /// retirement.
    ///
    /// # Errors
    ///
    /// The default implementation reports [`EmvsError::Checkpoint`]: custom
    /// backends opt in by overriding both this and
    /// [`Self::import_vote_state`].
    fn export_vote_state(
        &mut self,
        _profile: &mut StageProfile,
    ) -> Result<BackendVoteState, EmvsError> {
        Err(EmvsError::Checkpoint {
            reason: format!("backend '{}' does not support checkpointing", self.name()),
        })
    }

    /// Injects a checkpointed vote state into a **fresh** backend (no frames
    /// voted yet), resurrecting the open key frame's partial DSI exactly
    /// where [`Self::export_vote_state`] captured it.
    ///
    /// # Errors
    ///
    /// [`EmvsError::Checkpoint`] when the state's score type or tile
    /// geometry does not fit this backend, or (default implementation) when
    /// the backend does not support checkpointing.
    fn import_vote_state(
        &mut self,
        _state: BackendVoteState,
        _profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        Err(EmvsError::Checkpoint {
            reason: format!("backend '{}' does not support checkpointing", self.name()),
        })
    }
}

impl<B: ExecutionBackend + ?Sized> ExecutionBackend for Box<B> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn vote_frame(
        &mut self,
        work: &FrameWork<'_>,
        profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        (**self).vote_frame(work, profile)
    }

    fn retire_keyframe(
        &mut self,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        profile: &mut StageProfile,
    ) -> Result<KeyframeReconstruction, EmvsError> {
        (**self).retire_keyframe(reference_pose, frames_used, events_used, profile)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }

    fn export_vote_state(
        &mut self,
        profile: &mut StageProfile,
    ) -> Result<BackendVoteState, EmvsError> {
        (**self).export_vote_state(profile)
    }

    fn import_vote_state(
        &mut self,
        state: BackendVoteState,
        profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        (**self).import_vote_state(state, profile)
    }
}

/// The streaming session state machine, generic over the execution backend.
///
/// `eventor-core` wraps this in the boxed-backend `EventorSession` façade;
/// the batch `reconstruct()` entry points of all three legacy pipelines are
/// thin wrappers that feed a driver the whole trajectory and stream at once
/// (see [`reconstruct_with_backend`]).
#[derive(Debug)]
pub struct SessionDriver<B: ExecutionBackend> {
    camera: CameraModel,
    config: EmvsConfig,
    planes: DepthPlanes,
    backend: B,
    trajectory: Trajectory,
    /// Buffered events not yet processed: the live region is
    /// `pending[cursor..]`. Frames are cut by advancing `cursor` (O(1)) and
    /// the consumed prefix is compacted away amortizedly, so the batch
    /// wrappers — which buffer the whole stream — stay O(events) instead of
    /// the O(events²) a `drain(..n)` per frame would cost.
    pending: Vec<Event>,
    cursor: usize,
    max_pending_events: usize,
    last_event_t: Option<f64>,
    events_pushed: u64,
    next_frame_index: usize,
    selector: KeyframeSelector,
    reference: Option<Pose>,
    frames_in_keyframe: usize,
    events_in_keyframe: usize,
    keyframes: Vec<KeyframeReconstruction>,
    global_map: PointCloud,
    profile: StageProfile,
    outbox: Vec<SessionEvent>,
}

impl<B: ExecutionBackend> SessionDriver<B> {
    /// Creates a driver for the given camera, configuration and backend.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations
    /// (via [`EmvsConfig::validate`], through [`EmvsConfig::depth_planes`]).
    pub fn new(camera: CameraModel, config: EmvsConfig, backend: B) -> Result<Self, EmvsError> {
        let planes = config.depth_planes()?;
        let selector =
            KeyframeSelector::new(config.keyframe_distance, config.min_frames_per_keyframe);
        Ok(Self {
            camera,
            config,
            planes,
            backend,
            trajectory: Trajectory::new(),
            pending: Vec::new(),
            cursor: 0,
            max_pending_events: DEFAULT_MAX_PENDING_EVENTS,
            last_event_t: None,
            events_pushed: 0,
            next_frame_index: 0,
            selector,
            reference: None,
            frames_in_keyframe: 0,
            events_in_keyframe: 0,
            keyframes: Vec::new(),
            global_map: PointCloud::new(),
            profile: StageProfile::new(),
            outbox: Vec::new(),
        })
    }

    /// Overrides the in-flight event bound (clamped to at least one frame).
    pub fn with_max_pending_events(mut self, cap: usize) -> Self {
        self.max_pending_events = cap.max(self.config.events_per_frame);
        self
    }

    /// The camera model.
    pub fn camera(&self) -> &CameraModel {
        &self.camera
    }

    /// The EMVS configuration.
    pub fn config(&self) -> &EmvsConfig {
        &self.config
    }

    /// The execution backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Events buffered but not yet aggregated into a processed frame.
    pub fn pending_events(&self) -> usize {
        self.pending.len() - self.cursor
    }

    /// Total events pushed into the session so far.
    pub fn events_pushed(&self) -> u64 {
        self.events_pushed
    }

    /// Key frames retired so far, in stream order.
    pub fn keyframes(&self) -> &[KeyframeReconstruction] {
        &self.keyframes
    }

    /// The per-stage runtime profile accumulated so far.
    pub fn profile(&self) -> &StageProfile {
        &self.profile
    }

    /// Appends one trajectory sample; timestamps must be strictly
    /// increasing.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::Geometry`] for non-monotonic or non-finite
    /// timestamps.
    pub fn push_pose(&mut self, timestamp: f64, pose: Pose) -> Result<(), EmvsError> {
        self.trajectory.push(timestamp, pose)?;
        Ok(())
    }

    /// Appends every sample of `trajectory` (convenience for the batch
    /// wrappers and replay feeds).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::push_pose`].
    pub fn push_trajectory(&mut self, trajectory: &Trajectory) -> Result<(), EmvsError> {
        for sample in trajectory.iter() {
            self.push_pose(sample.timestamp, sample.pose)?;
        }
        Ok(())
    }

    /// Pushes a packet of events (any size, including a partial or multiple
    /// frames' worth). Events must be time-ordered across all pushes.
    ///
    /// # Returns
    ///
    /// The number of events ingested. It equals `events.len()` unless the
    /// bounded buffer filled (or draining hit an error) mid-push: then the
    /// accepted prefix is safely inside the session and the caller resumes
    /// from the returned offset after [`poll`](Self::poll)ing or pushing
    /// the missing poses — `write(2)`-style short-write semantics, so no
    /// event is ever consumed twice or lost.
    ///
    /// # Errors
    ///
    /// * [`EmvsError::OutOfOrder`] when an event precedes one already
    ///   pushed (nothing is ingested),
    /// * [`EmvsError::Backpressure`] when the buffer is full even after
    ///   draining every ready frame and **zero** events could be accepted —
    ///   the caller must [`poll`](Self::poll) or push the missing poses
    ///   first.
    ///
    /// Errors are only returned when no event was ingested; a failure after
    /// part of the packet was accepted reports the short count instead, and
    /// the underlying error resurfaces on the next [`poll`](Self::poll) or
    /// push.
    pub fn push_events(&mut self, events: &[Event]) -> Result<usize, EmvsError> {
        if events.is_empty() {
            return Ok(0);
        }
        // Validate ordering of the whole packet up front so a rejected push
        // ingests nothing.
        if let Some(timestamp) = eventor_events::first_out_of_order(events, self.last_event_t) {
            return Err(EmvsError::OutOfOrder { timestamp });
        }
        let mut accepted = 0usize;
        while accepted < events.len() {
            let mut free = self.max_pending_events - self.pending_events();
            if free == 0 {
                if let Err(e) = self.drain_ready() {
                    if accepted > 0 {
                        // Short write: the prefix is ingested; the drain
                        // error resurfaces on the next poll/push, so the
                        // caller never re-pushes (and duplicates) it.
                        return Ok(accepted);
                    }
                    return Err(e);
                }
                free = self.max_pending_events - self.pending_events();
            }
            if free == 0 {
                if accepted == 0 {
                    return Err(EmvsError::Backpressure {
                        pending: self.pending_events(),
                        capacity: self.max_pending_events,
                    });
                }
                break;
            }
            let take = free.min(events.len() - accepted);
            let t = Instant::now();
            self.pending
                .extend_from_slice(&events[accepted..accepted + take]);
            self.profile.add(Stage::Aggregation, t.elapsed());
            self.events_pushed += take as u64;
            accepted += take;
            self.last_event_t = Some(events[accepted - 1].t);
        }
        Ok(accepted)
    }

    /// [`Self::push_events`] on an [`EventStream`] packet.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::push_events`].
    pub fn push_packet(&mut self, packet: &EventStream) -> Result<usize, EmvsError> {
        self.push_events(packet.as_slice())
    }

    /// Processes every ready frame (complete frames whose mid-point
    /// timestamp the trajectory already covers) and returns the session
    /// events emitted since the last poll.
    ///
    /// # Errors
    ///
    /// Propagates pose-interpolation, geometry and backend errors — the same
    /// failures the batch `reconstruct()` paths report.
    pub fn poll(&mut self) -> Result<Vec<SessionEvent>, EmvsError> {
        self.drain_ready()?;
        Ok(std::mem::take(&mut self.outbox))
    }

    /// Takes any emitted session events without processing more frames.
    pub fn take_events(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.outbox)
    }

    /// Drops every buffered (unprocessed) event and returns how many were
    /// discarded.
    ///
    /// This is the explicit escape hatch for unrecoverable ingestion
    /// failures — e.g. events whose frame mid-point precedes the first
    /// pushed pose, which no future `push_pose` can cover (timestamps are
    /// strictly increasing): [`Self::poll`] keeps the failed frame buffered
    /// and repeats the error, and the caller decides whether to discard and
    /// move on. Already-processed frames and retired key frames are
    /// unaffected.
    pub fn discard_pending(&mut self) -> usize {
        let dropped = self.pending_events();
        self.pending.clear();
        self.cursor = 0;
        dropped
    }

    /// Flushes the session: processes **all** buffered frames (including the
    /// trailing partial frame) and retires the final key frame. Pose lookups
    /// beyond the pushed trajectory fail here, exactly as they do in the
    /// batch paths.
    ///
    /// Idempotent; [`Self::finish`] calls it implicitly.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::poll`].
    pub fn flush(&mut self) -> Result<(), EmvsError> {
        let n = self.config.events_per_frame;
        while self.pending_events() >= n {
            self.cut_and_process(n)?;
        }
        let trailing = self.pending_events();
        if trailing > 0 {
            self.cut_and_process(trailing)?;
        }
        if self.frames_in_keyframe > 0 {
            self.retire_active_keyframe()?;
        }
        Ok(())
    }

    /// Flushes and consumes the session, returning the accumulated output in
    /// the same shape as the batch `reconstruct()` entry points.
    ///
    /// # Errors
    ///
    /// [`EmvsError::NoEvents`] when no event was ever pushed, plus the
    /// [`Self::flush`] failure modes.
    pub fn finish(self) -> Result<EmvsOutput, EmvsError> {
        self.finish_with_backend().0
    }

    /// [`Self::finish`], additionally handing the backend back to the caller
    /// (even on error), so owners of stateful backends — e.g. the
    /// co-simulation's device — can recover them.
    pub fn finish_with_backend(mut self) -> (Result<EmvsOutput, EmvsError>, B) {
        if let Err(e) = self.flush() {
            return (Err(e), self.backend);
        }
        if self.events_pushed == 0 {
            return (Err(EmvsError::NoEvents), self.backend);
        }
        let output = EmvsOutput {
            keyframes: self.keyframes,
            global_map: self.global_map,
            profile: self.profile,
        };
        (Ok(output), self.backend)
    }

    /// Consumes the driver and returns the backend without flushing.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Captures the complete mid-flight session state as a
    /// [`DriverCheckpoint`]: configuration, trajectory, unprocessed events,
    /// key-frame bookkeeping, retired reconstructions and the backend's
    /// partial DSI vote state. The session stays fully usable afterwards —
    /// checkpointing is observation, not shutdown.
    ///
    /// Restoring the checkpoint into a fresh driver
    /// ([`SessionDriver::restore`]) and feeding it the remainder of the
    /// stream reproduces the uninterrupted run bit-for-bit (for the
    /// order-independent quantized datapath on any backend shape; for `f32`
    /// scores when the restored backend has the same tile count).
    ///
    /// # Errors
    ///
    /// [`EmvsError::Checkpoint`] when undrained session events are pending
    /// (callers must [`poll`](Self::poll) first, so no lifecycle
    /// notification is lost in the snapshot) or when the backend does not
    /// support checkpointing.
    pub fn snapshot(&mut self) -> Result<DriverCheckpoint, EmvsError> {
        if !self.outbox.is_empty() {
            return Err(EmvsError::Checkpoint {
                reason: format!(
                    "{} undrained session events: poll() before snapshotting",
                    self.outbox.len()
                ),
            });
        }
        let vote_state = self.backend.export_vote_state(&mut self.profile)?;
        Ok(DriverCheckpoint {
            camera: self.camera,
            config: self.config.clone(),
            max_pending_events: self.max_pending_events,
            trajectory: self.trajectory.clone(),
            pending: self.pending[self.cursor..].to_vec(),
            last_event_t: self.last_event_t,
            events_pushed: self.events_pushed,
            next_frame_index: self.next_frame_index,
            frames_since_switch: self.selector.frames_since_switch(),
            reference: self.reference,
            frames_in_keyframe: self.frames_in_keyframe,
            events_in_keyframe: self.events_in_keyframe,
            keyframes: self.keyframes.clone(),
            vote_state,
        })
    }

    /// Resurrects a checkpointed session into a **fresh** backend (no frames
    /// voted yet), exactly where [`Self::snapshot`] captured it: the next
    /// pushed event continues the original stream.
    ///
    /// The backend is typically of the same kind that produced the
    /// checkpoint; migrating across backends is supported wherever the vote
    /// state converts exactly (see [`BackendVoteState`]).
    ///
    /// # Errors
    ///
    /// [`EmvsError::Checkpoint`] for internally inconsistent checkpoints or
    /// a vote state the backend cannot accept, plus [`Self::new`]'s
    /// validation failures.
    pub fn restore(backend: B, checkpoint: DriverCheckpoint) -> Result<Self, EmvsError> {
        let DriverCheckpoint {
            camera,
            config,
            max_pending_events,
            trajectory,
            pending,
            last_event_t,
            events_pushed,
            next_frame_index,
            frames_since_switch,
            reference,
            frames_in_keyframe,
            events_in_keyframe,
            keyframes,
            vote_state,
        } = checkpoint;
        if (events_pushed as usize) < pending.len() {
            return Err(EmvsError::Checkpoint {
                reason: format!(
                    "inconsistent checkpoint: {} pending events but only {events_pushed} pushed",
                    pending.len()
                ),
            });
        }
        if pending.windows(2).any(|w| w[0].t > w[1].t) {
            return Err(EmvsError::Checkpoint {
                reason: "inconsistent checkpoint: pending events out of time order".into(),
            });
        }
        if let (Some(last), Some(tail)) = (last_event_t, pending.last()) {
            if tail.t > last {
                return Err(EmvsError::Checkpoint {
                    reason: "inconsistent checkpoint: pending events newer than last_event_t"
                        .into(),
                });
            }
        }
        let mut driver =
            Self::new(camera, config, backend)?.with_max_pending_events(max_pending_events);
        driver
            .backend
            .import_vote_state(vote_state, &mut driver.profile)?;
        driver.trajectory = trajectory;
        driver.pending = pending;
        driver.cursor = 0;
        driver.last_event_t = last_event_t;
        driver.events_pushed = events_pushed;
        driver.next_frame_index = next_frame_index;
        driver.selector.restore_frame_count(frames_since_switch);
        driver.reference = reference;
        driver.frames_in_keyframe = frames_in_keyframe;
        driver.events_in_keyframe = events_in_keyframe;
        // The global map is a deterministic fold of the retired key frames'
        // local clouds (see `retire_active_keyframe`), so it is rebuilt
        // rather than serialized.
        for kf in &keyframes {
            driver.global_map.merge(&kf.local_cloud);
        }
        driver.keyframes = keyframes;
        // Work counters restart from the checkpoint; stage wall times restart
        // at zero (they are measurements of this process, not session state).
        driver.profile.frames_processed = driver.next_frame_index as u64;
        driver.profile.events_processed = driver.events_pushed - driver.pending.len() as u64;
        driver.profile.keyframes = driver.keyframes.len() as u64;
        Ok(driver)
    }

    /// Whether the next complete frame can be processed (enough events and
    /// trajectory coverage of its mid-point timestamp).
    fn frame_ready(&self) -> bool {
        let n = self.config.events_per_frame;
        if self.pending_events() < n {
            return false;
        }
        let mid = 0.5 * (self.pending[self.cursor].t + self.pending[self.cursor + n - 1].t);
        matches!(self.trajectory.end_time(), Some(end) if end >= mid)
    }

    fn drain_ready(&mut self) -> Result<(), EmvsError> {
        while self.frame_ready() {
            let n = self.config.events_per_frame;
            self.cut_and_process(n)?;
        }
        Ok(())
    }

    /// Cuts the next `n` pending events into a frame (advancing the buffer
    /// cursor, O(1)) and processes it. The consumed prefix is compacted away
    /// once it dominates the buffer, keeping the total cost linear in the
    /// number of events.
    ///
    /// The cursor only advances when the frame processed successfully: a
    /// failed frame (e.g. a pose lookup outside the pushed trajectory) stays
    /// buffered, so an erroring `poll()` never silently drops events — the
    /// caller sees the same error again until the situation is resolved.
    fn cut_and_process(&mut self, n: usize) -> Result<(), EmvsError> {
        debug_assert!(n > 0 && self.pending_events() >= n);
        let buffer = std::mem::take(&mut self.pending);
        let start = self.cursor;
        let frame = &buffer[start..start + n];
        let timestamp = 0.5 * (frame[0].t + frame[n - 1].t);
        let result = self.process_frame(frame, timestamp);
        self.pending = buffer;
        if result.is_ok() {
            self.cursor += n;
            // The buffer-management copies are the session's analogue of the
            // batch `aggregate()` chunking pass; attribute them (together
            // with the ingestion copies in `push_events`) to Aggregation.
            let t = Instant::now();
            if self.cursor == self.pending.len() {
                self.pending.clear();
                self.cursor = 0;
            } else if self.cursor >= 4096 && self.cursor * 2 >= self.pending.len() {
                self.pending.drain(..self.cursor);
                self.cursor = 0;
            }
            self.profile.add(Stage::Aggregation, t.elapsed());
        }
        result
    }

    /// The per-frame body of the sequential golden path: pose lookup,
    /// key-frame switch check, geometry computation, backend vote.
    fn process_frame(&mut self, events: &[Event], timestamp: f64) -> Result<(), EmvsError> {
        let pose = self.trajectory.pose_at(timestamp)?;

        match self.reference {
            None => self.reference = Some(pose),
            Some(ref ref_pose) => {
                if self.selector.should_switch(ref_pose, &pose) {
                    self.retire_active_keyframe()?;
                    self.reference = Some(pose);
                    self.selector.reset();
                }
            }
        }
        let ref_pose = self.reference.expect("reference pose set above");

        let t = Instant::now();
        let geometry =
            FrameGeometry::compute(&ref_pose, &pose, &self.camera.intrinsics, &self.planes)?;
        self.profile.add(Stage::ComputeHomography, t.elapsed());

        let work = FrameWork {
            frame_index: self.next_frame_index,
            timestamp,
            events,
            reference_pose: ref_pose,
            frame_pose: pose,
            geometry: &geometry,
        };
        self.backend.vote_frame(&work, &mut self.profile)?;

        self.next_frame_index += 1;
        self.selector.register_frame();
        self.frames_in_keyframe += 1;
        self.events_in_keyframe += events.len();
        self.profile.frames_processed += 1;
        self.profile.events_processed += events.len() as u64;
        Ok(())
    }

    fn retire_active_keyframe(&mut self) -> Result<(), EmvsError> {
        let ref_pose = self.reference.expect("a key frame is active");
        let index = self.keyframes.len();
        let frames = self.frames_in_keyframe;
        let events = self.events_in_keyframe;
        let reconstruction =
            self.backend
                .retire_keyframe(&ref_pose, frames, events, &mut self.profile)?;
        let t = Instant::now();
        self.global_map.merge(&reconstruction.local_cloud);
        self.profile.add(Stage::Merging, t.elapsed());
        self.outbox.push(SessionEvent::SegmentRetired {
            index,
            frames,
            events,
        });
        self.outbox.push(SessionEvent::DepthMapReady {
            index,
            valid_pixels: reconstruction.depth_map.valid_count(),
        });
        self.outbox.push(SessionEvent::KeyframeReady {
            index,
            votes_cast: reconstruction.votes_cast,
            map_points: reconstruction.local_cloud.len(),
        });
        self.keyframes.push(reconstruction);
        self.profile.keyframes += 1;
        self.frames_in_keyframe = 0;
        self.events_in_keyframe = 0;
        Ok(())
    }
}

/// The complete state of a mid-flight session, captured by
/// [`SessionDriver::snapshot`] and resurrected by [`SessionDriver::restore`].
///
/// Everything the reconstruction is a function of is here: the configuration,
/// the trajectory pushed so far, the unprocessed pending events, the
/// key-frame bookkeeping (including the partially-accumulated selector
/// count), the retired reconstructions and the backend's partial DSI vote
/// state. Deliberately *not* here: the global map (a deterministic fold of
/// the key frames' local clouds, rebuilt on restore), the depth planes
/// (derived from the configuration) and stage wall times (measurements of a
/// process, not of the session).
///
/// `eventor-core`'s `SessionCheckpoint` wraps this in the durable
/// `eventor-evtr/1` `CKPT` container; this in-memory form is what the
/// driver layer exchanges.
#[derive(Debug, Clone)]
pub struct DriverCheckpoint {
    /// The session's camera model.
    pub camera: CameraModel,
    /// The EMVS configuration (depth planes are re-derived from it).
    pub config: EmvsConfig,
    /// The in-flight event bound.
    pub max_pending_events: usize,
    /// Every trajectory sample pushed so far.
    pub trajectory: Trajectory,
    /// Buffered events not yet aggregated into a processed frame.
    pub pending: Vec<Event>,
    /// Timestamp of the newest event ever pushed (ordering fence).
    pub last_event_t: Option<f64>,
    /// Total events pushed into the session.
    pub events_pushed: u64,
    /// Index the next processed frame will carry.
    pub next_frame_index: usize,
    /// Frames accumulated into the open key frame by the selector.
    pub frames_since_switch: usize,
    /// Pose of the active key reference view, if one is open.
    pub reference: Option<Pose>,
    /// Frames voted into the open key frame.
    pub frames_in_keyframe: usize,
    /// Events voted into the open key frame.
    pub events_in_keyframe: usize,
    /// Key frames retired so far, in stream order.
    pub keyframes: Vec<KeyframeReconstruction>,
    /// The backend's partial DSI vote state for the open key frame.
    pub vote_state: BackendVoteState,
}

/// Builds a [`KeyframeReconstruction`] from an accumulated DSI: structure
/// detection, world-frame point-cloud conversion, vote-count capture — the
/// one keyframe-finalization path every backend (baseline, software,
/// sharded, cosim readback) shares.
pub fn finalize_volume<S: eventor_dsi::VoxelScore>(
    dsi: &DsiVolume<S>,
    detection: &DetectionConfig,
    camera: &CameraModel,
    reference_pose: &Pose,
    frames_used: usize,
    events_used: usize,
) -> KeyframeReconstruction {
    let depth_map = detect_structure(dsi, detection);
    let local_cloud = PointCloud::from_depth_map(&depth_map, &camera.intrinsics, reference_pose);
    KeyframeReconstruction {
        reference_pose: *reference_pose,
        depth_map,
        local_cloud,
        frames_used,
        events_used,
        votes_cast: dsi.votes_cast(),
    }
}

/// Runs a whole batch reconstruction through a session: the shared body of
/// every legacy `reconstruct(&EventStream, &Trajectory)` entry point.
///
/// # Errors
///
/// [`EmvsError::NoEvents`] for an empty stream, otherwise the session's
/// failure modes (which match the original batch loops).
pub fn reconstruct_with_backend<B: ExecutionBackend>(
    camera: CameraModel,
    config: EmvsConfig,
    backend: B,
    events: &EventStream,
    trajectory: &Trajectory,
) -> Result<EmvsOutput, EmvsError> {
    if events.is_empty() {
        return Err(EmvsError::NoEvents);
    }
    let mut driver =
        SessionDriver::new(camera, config, backend)?.with_max_pending_events(usize::MAX);
    driver.push_trajectory(trajectory)?;
    driver.push_events(events.as_slice())?;
    driver.finish()
}

/// Buffered events at which the sharded backends flush their open key
/// frame's buffered votes into the shard tiles. Bounds backend memory for
/// arbitrarily long key frames (e.g. a stationary camera that never triggers
/// a key-frame switch) at roughly one spill window of events plus the
/// fixed-size tiles.
pub const ENGINE_SPILL_EVENTS: usize = 1 << 16;

/// One event frame buffered by [`BaselineBackend`]'s sharded mode until its
/// key frame retires.
#[derive(Debug)]
struct BufferedFrame {
    events: Vec<Event>,
    geometry: FrameGeometry,
}

/// The baseline float EMVS datapath behind the session contract: the
/// original (non-reformulated) schedule with bilinear or nearest voting into
/// an `f32` DSI — exactly the per-frame work of the seed
/// `EmvsMapper::reconstruct` loop.
///
/// With an engine [`ParallelConfig`] the backend buffers the key frame's
/// frames and votes them on worker shards at retirement (packet round-robin,
/// private tiles, deterministic tree reduction) — the baseline half of the
/// PR-1 parallel voting engine, now expressed as a session backend.
#[derive(Debug)]
pub struct BaselineBackend {
    camera: CameraModel,
    voting: VotingMode,
    detection: DetectionConfig,
    parallel: ParallelConfig,
    /// Sequential mode: `tiles[0]` is the single DSI. Engine mode: one
    /// private tile per shard.
    tiles: Vec<DsiVolume<f32>>,
    buffered: Vec<BufferedFrame>,
    buffered_events: usize,
    // Scratch buffers reused across frames (sequential mode).
    undistorted: Vec<Vec2>,
    canonical: Vec<Option<Vec2>>,
    vote_targets: Vec<(f64, f64, usize)>,
}

impl BaselineBackend {
    /// Creates the backend, allocating its DSI tile(s).
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] for unusable configurations and
    /// [`EmvsError::Dsi`] when the DSI cannot be allocated.
    pub fn new(
        camera: CameraModel,
        config: &EmvsConfig,
        parallel: ParallelConfig,
    ) -> Result<Self, EmvsError> {
        let planes = config.depth_planes()?;
        let width = camera.intrinsics.width as usize;
        let height = camera.intrinsics.height as usize;
        let count = if parallel.is_engine() {
            parallel.shards()
        } else {
            1
        };
        let tiles: Vec<DsiVolume<f32>> = (0..count)
            .map(|_| DsiVolume::new(width, height, planes.clone()))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            camera,
            voting: config.voting,
            detection: config.detection,
            parallel,
            tiles,
            buffered: Vec::new(),
            buffered_events: 0,
            undistorted: Vec::with_capacity(config.events_per_frame),
            canonical: Vec::with_capacity(config.events_per_frame),
            vote_targets: Vec::new(),
        })
    }

    /// Sequential golden path for one frame: undistort → canonical
    /// projection → proportional projection → vote (the `𝒫` / `ℛ` stages of
    /// the original schedule, identical to the seed mapper's per-frame
    /// body).
    fn vote_frame_sequential(&mut self, work: &FrameWork<'_>, profile: &mut StageProfile) {
        let t = Instant::now();
        self.undistorted.clear();
        self.undistorted.extend(work.events.iter().map(|e| {
            self.camera
                .undistort_pixel(Vec2::new(e.x as f64, e.y as f64))
        }));
        profile.add(Stage::DistortionCorrection, t.elapsed());

        // The reference implementation computes φ after the canonical
        // projection; the (trivial) cost keeps its own stage either way.
        let t = Instant::now();
        let n_planes = work.geometry.num_planes();
        profile.add(Stage::ComputeCoefficients, t.elapsed());

        let t = Instant::now();
        self.canonical.clear();
        self.canonical.extend(
            self.undistorted
                .iter()
                .map(|&px| work.geometry.canonical(px)),
        );
        profile.add(Stage::CanonicalProjection, t.elapsed());

        let t = Instant::now();
        self.vote_targets.clear();
        for c in self.canonical.iter().flatten() {
            for i in 0..n_planes {
                let p = work.geometry.transfer(*c, i);
                self.vote_targets.push((p.x, p.y, i));
            }
        }
        profile.add(Stage::ProportionalProjection, t.elapsed());

        let t = Instant::now();
        let dsi = &mut self.tiles[0];
        match self.voting {
            VotingMode::Bilinear => {
                for &(x, y, plane) in &self.vote_targets {
                    dsi.vote_bilinear(x, y, plane, 1.0);
                }
            }
            VotingMode::Nearest => {
                for &(x, y, plane) in &self.vote_targets {
                    dsi.vote_nearest(x, y, plane, 1.0);
                }
            }
        }
        profile.add(Stage::VoteDsi, t.elapsed());
    }

    /// Votes every buffered frame into the shard tiles (packet round-robin)
    /// and clears the buffer. Called at key-frame retirement and whenever
    /// the buffer crosses [`ENGINE_SPILL_EVENTS`], so an arbitrarily long
    /// key frame never buffers unboundedly — only the tiles (fixed-size)
    /// accumulate. Safe at any boundary: nearest voting is
    /// order-independent, and a single-shard partition preserves the exact
    /// sequential packet order across spills.
    fn vote_buffered(&mut self, profile: &mut StageProfile) {
        if self.buffered.is_empty() {
            return;
        }
        let t = Instant::now();
        let packet_events = self.parallel.packet_events();
        let mut packets: Vec<VotePacket> = Vec::new();
        for (i, frame) in self.buffered.iter().enumerate() {
            packetize_frame(i, 0..frame.events.len(), packet_events, &mut packets);
        }
        let shards = self.parallel.shards();
        let camera = &self.camera;
        let voting = self.voting;
        let buffered = &self.buffered;
        run_sharded(&mut self.tiles, |shard, tile| {
            for packet in shard_packets(&packets, shard, shards) {
                let frame = &buffered[packet.frame];
                for e in &frame.events[packet.range.clone()] {
                    let px = camera.undistort_pixel(Vec2::new(e.x as f64, e.y as f64));
                    let Some(c) = frame.geometry.canonical(px) else {
                        continue;
                    };
                    for i in 0..frame.geometry.num_planes() {
                        let p = frame.geometry.transfer(c, i);
                        match voting {
                            VotingMode::Bilinear => tile.vote_bilinear(p.x, p.y, i, 1.0),
                            VotingMode::Nearest => tile.vote_nearest(p.x, p.y, i, 1.0),
                        }
                    }
                }
            }
        });
        self.buffered.clear();
        self.buffered_events = 0;
        // The fused kernel's wall time cannot be split into its four stages
        // once fused; attribute it evenly, as the batch engine did.
        let fused = t.elapsed() / 4;
        profile.add(Stage::DistortionCorrection, fused);
        profile.add(Stage::CanonicalProjection, fused);
        profile.add(Stage::ProportionalProjection, fused);
        profile.add(Stage::VoteDsi, fused);
    }

    /// Engine-mode retirement: flush the buffered frames into the tiles,
    /// tree-reduce, detect.
    fn retire_sharded(
        &mut self,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        profile: &mut StageProfile,
    ) -> KeyframeReconstruction {
        self.vote_buffered(profile);
        let t = Instant::now();
        DsiVolume::tree_reduce(&mut self.tiles).expect("at least one shard tile");
        let reconstruction = finalize_volume(
            &self.tiles[0],
            &self.detection,
            &self.camera,
            reference_pose,
            frames_used,
            events_used,
        );
        profile.add(Stage::Detection, t.elapsed());
        reconstruction
    }
}

impl ExecutionBackend for BaselineBackend {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn vote_frame(
        &mut self,
        work: &FrameWork<'_>,
        profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        if self.parallel.is_engine() {
            self.buffered_events += work.events.len();
            self.buffered.push(BufferedFrame {
                events: work.events.to_vec(),
                geometry: work.geometry.clone(),
            });
            if self.buffered_events >= ENGINE_SPILL_EVENTS {
                self.vote_buffered(profile);
            }
        } else {
            self.vote_frame_sequential(work, profile);
        }
        Ok(())
    }

    fn retire_keyframe(
        &mut self,
        reference_pose: &Pose,
        frames_used: usize,
        events_used: usize,
        profile: &mut StageProfile,
    ) -> Result<KeyframeReconstruction, EmvsError> {
        let reconstruction = if self.parallel.is_engine() {
            self.retire_sharded(reference_pose, frames_used, events_used, profile)
        } else {
            let t = Instant::now();
            let reconstruction = finalize_volume(
                &self.tiles[0],
                &self.detection,
                &self.camera,
                reference_pose,
                frames_used,
                events_used,
            );
            profile.add(Stage::Detection, t.elapsed());
            reconstruction
        };
        let t = Instant::now();
        for tile in &mut self.tiles {
            tile.reset();
        }
        profile.add(Stage::Merging, t.elapsed());
        Ok(reconstruction)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn export_vote_state(
        &mut self,
        profile: &mut StageProfile,
    ) -> Result<BackendVoteState, EmvsError> {
        // Flushing buffered engine-mode frames is a spill boundary, already
        // proven safe at any point of a key frame.
        if self.parallel.is_engine() {
            self.vote_buffered(profile);
        }
        Ok(BackendVoteState::Float(self.tiles.clone()))
    }

    fn import_vote_state(
        &mut self,
        state: BackendVoteState,
        _profile: &mut StageProfile,
    ) -> Result<(), EmvsError> {
        self.buffered.clear();
        self.buffered_events = 0;
        match state {
            BackendVoteState::Float(tiles) => {
                let mut targets: Vec<&mut DsiVolume<f32>> = self.tiles.iter_mut().collect();
                import_vote_tiles(tiles, &mut targets, "baseline")
            }
            BackendVoteState::Quantized(_) => Err(EmvsError::Checkpoint {
                reason: "quantized vote state cannot restore into the float baseline backend"
                    .into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_events::{DatasetConfig, Polarity, SequenceKind, SyntheticSequence};
    use eventor_geom::Vec3;

    fn sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test()).unwrap()
    }

    fn config_for(seq: &SyntheticSequence) -> EmvsConfig {
        EmvsConfig::default()
            .with_depth_range(seq.depth_range.0, seq.depth_range.1)
            .with_depth_planes(60)
    }

    fn driver_for(seq: &SyntheticSequence, config: &EmvsConfig) -> SessionDriver<BaselineBackend> {
        let backend =
            BaselineBackend::new(seq.camera, config, ParallelConfig::sequential()).unwrap();
        SessionDriver::new(seq.camera, config.clone(), backend).unwrap()
    }

    #[test]
    fn push_poll_finish_matches_batch_wrapper() {
        let seq = sequence();
        let config = config_for(&seq).with_voting(VotingMode::Nearest);
        let batch = reconstruct_with_backend(
            seq.camera,
            config.clone(),
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap(),
            &seq.events,
            &seq.trajectory,
        )
        .unwrap();

        let mut driver = driver_for(&seq, &config);
        driver.push_trajectory(&seq.trajectory).unwrap();
        let mut seen = Vec::new();
        for chunk in seq.events.as_slice().chunks(777) {
            driver.push_events(chunk).unwrap();
            seen.extend(driver.poll().unwrap());
        }
        driver.flush().unwrap();
        seen.extend(driver.take_events());
        let streamed = driver.finish().unwrap();

        assert_eq!(batch.keyframes.len(), streamed.keyframes.len());
        for (b, s) in batch.keyframes.iter().zip(&streamed.keyframes) {
            assert_eq!(b.votes_cast, s.votes_cast);
            assert_eq!(b.depth_map.depth_data(), s.depth_map.depth_data());
            assert_eq!(b.frames_used, s.frames_used);
            assert_eq!(b.events_used, s.events_used);
        }
        // Three lifecycle events per retired key frame, in order.
        assert_eq!(seen.len(), 3 * streamed.keyframes.len());
        assert!(matches!(
            seen[0],
            SessionEvent::SegmentRetired { index: 0, .. }
        ));
        assert!(matches!(
            seen[1],
            SessionEvent::DepthMapReady { index: 0, .. }
        ));
        assert!(matches!(
            seen[2],
            SessionEvent::KeyframeReady { index: 0, .. }
        ));
    }

    #[test]
    fn frames_wait_for_pose_coverage() {
        let seq = sequence();
        let config = config_for(&seq);
        let mut driver = driver_for(&seq, &config);
        driver.push_events(seq.events.as_slice()).unwrap();
        // No poses yet: nothing can be processed.
        assert!(driver.poll().unwrap().is_empty());
        assert_eq!(driver.pending_events(), seq.events.len());
        driver.push_trajectory(&seq.trajectory).unwrap();
        driver.flush().unwrap();
        assert!(!driver.keyframes().is_empty());
        assert_eq!(driver.pending_events(), 0);
    }

    #[test]
    fn backpressure_is_reported_when_the_buffer_is_full() {
        let seq = sequence();
        let config = config_for(&seq);
        let cap = 2 * config.events_per_frame;
        let mut driver = driver_for(&seq, &config).with_max_pending_events(cap);
        // Without poses frames are never ready, so the buffer must fill.
        let events = seq.events.as_slice();
        let mut pushed = 0;
        let err = loop {
            match driver.push_events(&events[pushed..pushed + config.events_per_frame]) {
                Ok(n) => {
                    assert_eq!(n, config.events_per_frame, "full frames fit whole");
                    pushed += n;
                }
                Err(e) => break e,
            }
            assert!(pushed <= cap, "buffer exceeded its bound");
        };
        assert!(matches!(err, EmvsError::Backpressure { .. }));
        // Pushing the poses unblocks the same session: the buffered frames
        // drain and the rejected packet can be pushed again.
        driver.push_trajectory(&seq.trajectory).unwrap();
        driver.poll().unwrap();
        assert_eq!(driver.pending_events(), 0);
        driver
            .push_events(&events[pushed..pushed + config.events_per_frame])
            .unwrap();
    }

    #[test]
    fn out_of_order_events_are_rejected() {
        let seq = sequence();
        let config = config_for(&seq);
        let mut driver = driver_for(&seq, &config);
        let e1 = Event::new(1.0, 0, 0, Polarity::Positive);
        let e0 = Event::new(0.5, 0, 0, Polarity::Positive);
        driver.push_events(&[e1]).unwrap();
        assert!(matches!(
            driver.push_events(&[e0]),
            Err(EmvsError::OutOfOrder { .. })
        ));
        // Equal timestamps are allowed (sensors emit bursts).
        driver.push_events(&[e1]).unwrap();
    }

    #[test]
    fn oversized_packets_are_ingested_in_chunks() {
        let seq = sequence();
        let config = config_for(&seq);
        let cap = 2 * config.events_per_frame;
        // Poses first, then the entire stream (far larger than the buffer) in
        // one push: chunking + draining must accept it whole.
        let mut driver = driver_for(&seq, &config).with_max_pending_events(cap);
        driver.push_trajectory(&seq.trajectory).unwrap();
        driver.push_events(seq.events.as_slice()).unwrap();
        let streamed = driver.finish().unwrap();
        let batch = reconstruct_with_backend(
            seq.camera,
            config.clone(),
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap(),
            &seq.events,
            &seq.trajectory,
        )
        .unwrap();
        assert_eq!(batch.keyframes.len(), streamed.keyframes.len());
        assert_eq!(
            batch.profile.events_processed,
            streamed.profile.events_processed
        );
    }

    #[test]
    fn failed_frames_stay_buffered_and_can_be_discarded() {
        let seq = sequence();
        let config = config_for(&seq);
        let mut driver = driver_for(&seq, &config);
        // Events whose frame mid-points precede the first pose: pose lookup
        // fails and no future push_pose can cover them.
        let early: Vec<Event> = (0..config.events_per_frame)
            .map(|i| Event::new(i as f64 * 1e-4, 0, 0, Polarity::Positive))
            .collect();
        driver.push_events(&early).unwrap();
        driver.push_pose(100.0, Pose::identity()).unwrap();
        driver.push_pose(101.0, Pose::identity()).unwrap();
        // The error repeats without losing the events...
        assert!(driver.poll().is_err());
        assert_eq!(driver.pending_events(), config.events_per_frame);
        assert!(driver.poll().is_err());
        // ...until the caller explicitly discards them.
        assert_eq!(driver.discard_pending(), config.events_per_frame);
        assert!(driver.poll().unwrap().is_empty());
        assert_eq!(driver.pending_events(), 0);
    }

    #[test]
    fn sharded_spill_keeps_a_giant_single_keyframe_bit_identical() {
        // One key frame holding the whole stream (more events than
        // ENGINE_SPILL_EVENTS), so the engine must spill buffered votes into
        // its tiles mid-key-frame — and stay bit-identical to sequential.
        let seq = sequence();
        assert!(seq.events.len() > ENGINE_SPILL_EVENTS);
        let config = config_for(&seq)
            .with_voting(VotingMode::Nearest)
            .with_keyframe_distance(1e9);
        let run = |parallel: ParallelConfig| {
            reconstruct_with_backend(
                seq.camera,
                config.clone(),
                BaselineBackend::new(seq.camera, &config, parallel).unwrap(),
                &seq.events,
                &seq.trajectory,
            )
            .unwrap()
        };
        let sequential = run(ParallelConfig::sequential());
        let sharded = run(ParallelConfig::with_shards(4));
        assert_eq!(sequential.keyframes.len(), 1);
        assert_eq!(sharded.keyframes.len(), 1);
        assert_eq!(
            sequential.keyframes[0].votes_cast,
            sharded.keyframes[0].votes_cast
        );
        assert_eq!(
            sequential.keyframes[0].depth_map.depth_data(),
            sharded.keyframes[0].depth_map.depth_data()
        );
    }

    #[test]
    fn finishing_an_empty_session_is_no_events() {
        let seq = sequence();
        let config = config_for(&seq);
        let driver = driver_for(&seq, &config);
        assert!(matches!(driver.finish(), Err(EmvsError::NoEvents)));
    }

    #[test]
    fn pose_lookup_outside_trajectory_errors_at_flush() {
        let seq = sequence();
        let config = config_for(&seq);
        let mut driver = driver_for(&seq, &config);
        // A trajectory that ends before the events do.
        driver.push_pose(-10.0, Pose::identity()).unwrap();
        driver
            .push_pose(-9.0, Pose::from_translation(Vec3::new(0.1, 0.0, 0.0)))
            .unwrap();
        driver.push_events(seq.events.as_slice()).unwrap();
        assert!(driver.flush().is_err());
    }

    #[test]
    fn snapshot_restore_reproduces_the_uninterrupted_run() {
        let seq = sequence();
        let config = config_for(&seq).with_voting(VotingMode::Nearest);
        let uninterrupted = reconstruct_with_backend(
            seq.camera,
            config.clone(),
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap(),
            &seq.events,
            &seq.trajectory,
        )
        .unwrap();

        // Run half the stream, checkpoint mid-flight (between key frames or
        // mid-key-frame, wherever the boundary lands), drop the session.
        let mut driver = driver_for(&seq, &config);
        driver.push_trajectory(&seq.trajectory).unwrap();
        let events = seq.events.as_slice();
        let cut = events.len() / 2;
        driver.push_events(&events[..cut]).unwrap();
        driver.poll().unwrap();
        let checkpoint = driver.snapshot().unwrap();
        assert!(checkpoint.events_pushed as usize == cut);
        drop(driver);

        // Restore into a fresh driver + backend and feed the remainder.
        let backend =
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap();
        let mut restored = SessionDriver::restore(backend, checkpoint).unwrap();
        restored.push_events(&events[cut..]).unwrap();
        let resumed = restored.finish().unwrap();

        assert_eq!(uninterrupted.keyframes.len(), resumed.keyframes.len());
        for (a, b) in uninterrupted.keyframes.iter().zip(&resumed.keyframes) {
            assert_eq!(a.votes_cast, b.votes_cast);
            assert_eq!(a.depth_map.depth_data(), b.depth_map.depth_data());
            assert_eq!(a.frames_used, b.frames_used);
            assert_eq!(a.events_used, b.events_used);
        }
        assert_eq!(uninterrupted.global_map.len(), resumed.global_map.len());
        assert_eq!(
            uninterrupted.profile.events_processed,
            resumed.profile.events_processed
        );
    }

    #[test]
    fn snapshot_restore_is_exact_for_the_sharded_engine_same_shape() {
        // f32 scores are order-sensitive, but per-shard tile export makes a
        // same-shard-count restore bit-exact even mid-key-frame.
        let seq = sequence();
        let config = config_for(&seq).with_voting(VotingMode::Nearest);
        let parallel = ParallelConfig::with_shards(4);
        let uninterrupted = reconstruct_with_backend(
            seq.camera,
            config.clone(),
            BaselineBackend::new(seq.camera, &config, parallel).unwrap(),
            &seq.events,
            &seq.trajectory,
        )
        .unwrap();

        let backend = BaselineBackend::new(seq.camera, &config, parallel).unwrap();
        let mut driver = SessionDriver::new(seq.camera, config.clone(), backend).unwrap();
        driver.push_trajectory(&seq.trajectory).unwrap();
        let events = seq.events.as_slice();
        let cut = 2 * events.len() / 3;
        driver.push_events(&events[..cut]).unwrap();
        driver.poll().unwrap();
        let checkpoint = driver.snapshot().unwrap();
        assert_eq!(checkpoint.vote_state.tile_count(), 4);
        drop(driver);

        let backend = BaselineBackend::new(seq.camera, &config, parallel).unwrap();
        let mut restored = SessionDriver::restore(backend, checkpoint).unwrap();
        restored.push_events(&events[cut..]).unwrap();
        let resumed = restored.finish().unwrap();
        assert_eq!(uninterrupted.keyframes.len(), resumed.keyframes.len());
        for (a, b) in uninterrupted.keyframes.iter().zip(&resumed.keyframes) {
            assert_eq!(a.votes_cast, b.votes_cast);
            assert_eq!(a.depth_map.depth_data(), b.depth_map.depth_data());
        }
    }

    #[test]
    fn snapshot_with_undrained_events_is_refused() {
        let seq = sequence();
        let config = config_for(&seq).with_voting(VotingMode::Nearest);
        let mut driver = driver_for(&seq, &config);
        driver.push_trajectory(&seq.trajectory).unwrap();
        driver.push_events(seq.events.as_slice()).unwrap();
        driver.flush().unwrap();
        // flush() retired key frames but nothing polled their events yet.
        let err = driver.snapshot().unwrap_err();
        assert!(matches!(err, EmvsError::Checkpoint { .. }));
        assert!(err.to_string().contains("poll()"));
        driver.poll().unwrap();
        driver.snapshot().unwrap();
    }

    #[test]
    fn restore_rejects_inconsistent_checkpoints_and_wrong_geometry() {
        let seq = sequence();
        let config = config_for(&seq).with_voting(VotingMode::Nearest);
        let mut driver = driver_for(&seq, &config);
        driver.push_trajectory(&seq.trajectory).unwrap();
        driver
            .push_events(&seq.events.as_slice()[..4 * config.events_per_frame])
            .unwrap();
        driver.poll().unwrap();
        let checkpoint = driver.snapshot().unwrap();

        // More pending events than ever pushed.
        let mut bad = checkpoint.clone();
        bad.events_pushed = 1;
        bad.pending = seq.events.as_slice()[..8].to_vec();
        let backend =
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap();
        assert!(matches!(
            SessionDriver::restore(backend, bad),
            Err(EmvsError::Checkpoint { .. })
        ));

        // Tile geometry that does not match the backend.
        let mut bad = checkpoint.clone();
        bad.vote_state =
            BackendVoteState::Float(vec![
                DsiVolume::new(2, 2, config.depth_planes().unwrap()).unwrap()
            ]);
        let backend =
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap();
        assert!(matches!(
            SessionDriver::restore(backend, bad),
            Err(EmvsError::Checkpoint { .. })
        ));

        // Quantized state into the float baseline backend.
        let mut bad = checkpoint;
        bad.vote_state = BackendVoteState::Quantized(vec![]);
        let backend =
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap();
        assert!(matches!(
            SessionDriver::restore(backend, bad),
            Err(EmvsError::Checkpoint { .. })
        ));
    }

    #[test]
    fn boxed_backend_forwards_the_contract() {
        let seq = sequence();
        let config = config_for(&seq);
        let backend: Box<dyn ExecutionBackend> = Box::new(
            BaselineBackend::new(seq.camera, &config, ParallelConfig::sequential()).unwrap(),
        );
        assert_eq!(backend.name(), "baseline");
        assert!(backend.as_any().is_some());
        let output =
            reconstruct_with_backend(seq.camera, config, backend, &seq.events, &seq.trajectory)
                .unwrap();
        assert!(!output.keyframes.is_empty());
    }
}
