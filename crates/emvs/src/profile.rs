//! Per-stage runtime profiling of the EMVS pipeline.
//!
//! The paper motivates the hardware partition with two measurements on the
//! CPU implementation: event back-projection (`𝒫`) plus volumetric
//! ray-counting (`ℛ`) account for over 80 % of the total runtime, and four
//! hot sub-tasks (`𝒫{Z0}`, `𝒫{Z0;Zi}`, `𝒢`, `𝒱`) account for over 90 % of
//! `𝒫 + ℛ`. [`StageProfile`] reproduces that breakdown and feeds the CPU
//! column of Table 3.

use std::fmt;
use std::time::Duration;

/// The pipeline stages that are timed individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Event aggregation `𝒜`.
    Aggregation,
    /// Event distortion correction.
    DistortionCorrection,
    /// Computing the homography `H_{Z0}` (once per frame).
    ComputeHomography,
    /// Canonical event back-projection `𝒫{Z0}` (per event).
    CanonicalProjection,
    /// Computing the proportional coefficients `φ` (once per frame).
    ComputeCoefficients,
    /// Proportional back-projection `𝒫{Z0;Zi}` and vote generation `𝒢`
    /// (per event, per plane).
    ProportionalProjection,
    /// Voting DSI voxels `𝒱`.
    VoteDsi,
    /// Scene structure detection `𝒟`.
    Detection,
    /// Map merging `ℳ` (reset DSI, point-cloud conversion, map update).
    Merging,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 9] = [
        Stage::Aggregation,
        Stage::DistortionCorrection,
        Stage::ComputeHomography,
        Stage::CanonicalProjection,
        Stage::ComputeCoefficients,
        Stage::ProportionalProjection,
        Stage::VoteDsi,
        Stage::Detection,
        Stage::Merging,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Aggregation => "aggregation",
            Self::DistortionCorrection => "distortion correction",
            Self::ComputeHomography => "compute H_Z0",
            Self::CanonicalProjection => "P{Z0}",
            Self::ComputeCoefficients => "compute phi",
            Self::ProportionalProjection => "P{Z0;Zi} + G",
            Self::VoteDsi => "vote DSI (V)",
            Self::Detection => "detection",
            Self::Merging => "merging",
        }
    }

    /// Whether the stage belongs to `𝒫` (back-projection) or `ℛ`
    /// (ray-counting) — the portion the paper offloads to the FPGA.
    pub fn is_projection_or_raycounting(self) -> bool {
        matches!(
            self,
            Self::ComputeHomography
                | Self::CanonicalProjection
                | Self::ComputeCoefficients
                | Self::ProportionalProjection
                | Self::VoteDsi
        )
    }

    /// Whether the stage is one of the four hot sub-tasks accelerated on the
    /// FPGA (`𝒫{Z0}`, `𝒫{Z0;Zi}`, `𝒢`, `𝒱`).
    pub fn is_fpga_subtask(self) -> bool {
        matches!(
            self,
            Self::CanonicalProjection | Self::ProportionalProjection | Self::VoteDsi
        )
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Accumulated per-stage runtimes plus event/frame counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageProfile {
    durations: [Duration; 9],
    /// Number of events processed.
    pub events_processed: u64,
    /// Number of event frames processed.
    pub frames_processed: u64,
    /// Number of key frames selected.
    pub keyframes: u64,
}

impl StageProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(stage: Stage) -> usize {
        Stage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage is in ALL")
    }

    /// Adds elapsed time to a stage.
    pub fn add(&mut self, stage: Stage, elapsed: Duration) {
        self.durations[Self::slot(stage)] += elapsed;
    }

    /// Total accumulated time of one stage.
    pub fn stage_time(&self, stage: Stage) -> Duration {
        self.durations[Self::slot(stage)]
    }

    /// Total time across all stages.
    pub fn total_time(&self) -> Duration {
        self.durations.iter().sum()
    }

    /// Time spent in `𝒫 + ℛ` (the portion the paper accelerates).
    pub fn projection_raycounting_time(&self) -> Duration {
        Stage::ALL
            .iter()
            .filter(|s| s.is_projection_or_raycounting())
            .map(|&s| self.stage_time(s))
            .sum()
    }

    /// Fraction of the total runtime spent in `𝒫 + ℛ` (the paper reports
    /// over 80 %).
    pub fn projection_raycounting_fraction(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        self.projection_raycounting_time().as_secs_f64() / total
    }

    /// Fraction of `𝒫 + ℛ` spent in the four FPGA-accelerated sub-tasks
    /// (the paper reports over 90 %).
    pub fn fpga_subtask_fraction(&self) -> f64 {
        let pr = self.projection_raycounting_time().as_secs_f64();
        if pr <= 0.0 {
            return 0.0;
        }
        let hot: f64 = Stage::ALL
            .iter()
            .filter(|s| s.is_fpga_subtask())
            .map(|&s| self.stage_time(s).as_secs_f64())
            .sum();
        hot / pr
    }

    /// Mean runtime of `𝒫{Z0}` per event frame, in microseconds
    /// (Table 3, first row).
    pub fn canonical_us_per_frame(&self) -> f64 {
        if self.frames_processed == 0 {
            return 0.0;
        }
        self.stage_time(Stage::CanonicalProjection).as_secs_f64() * 1e6
            / self.frames_processed as f64
    }

    /// Mean runtime of `𝒫{Z0;Zi} + ℛ` per event frame, in microseconds
    /// (Table 3, second row).
    pub fn proportional_raycount_us_per_frame(&self) -> f64 {
        if self.frames_processed == 0 {
            return 0.0;
        }
        let t = self.stage_time(Stage::ProportionalProjection) + self.stage_time(Stage::VoteDsi);
        t.as_secs_f64() * 1e6 / self.frames_processed as f64
    }

    /// Mean total runtime per event frame in microseconds, counting only the
    /// frame-rate stages (`𝒫 + ℛ`), i.e. the Table 3 "runtime per event
    /// frame" rows.
    pub fn frame_us(&self) -> f64 {
        self.canonical_us_per_frame() + self.proportional_raycount_us_per_frame()
    }

    /// Event processing rate in events per second implied by the `𝒫 + ℛ`
    /// runtime (Table 3, "event processing rate").
    pub fn event_rate(&self) -> f64 {
        let t = self.projection_raycounting_time().as_secs_f64();
        if t <= 0.0 {
            return 0.0;
        }
        self.events_processed as f64 / t
    }

    /// Formats the per-stage breakdown as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let total = self.total_time().as_secs_f64().max(1e-12);
        out.push_str(&format!(
            "{:<24} {:>12} {:>8}\n",
            "stage", "time (ms)", "share"
        ));
        for stage in Stage::ALL {
            let t = self.stage_time(stage).as_secs_f64();
            out.push_str(&format!(
                "{:<24} {:>12.3} {:>7.1}%\n",
                stage.name(),
                t * 1e3,
                100.0 * t / total
            ));
        }
        out.push_str(&format!(
            "P+R share of total: {:.1}%   hot sub-tasks share of P+R: {:.1}%\n",
            100.0 * self.projection_raycounting_fraction(),
            100.0 * self.fpga_subtask_fraction()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_classification() {
        assert!(Stage::CanonicalProjection.is_projection_or_raycounting());
        assert!(Stage::VoteDsi.is_fpga_subtask());
        assert!(!Stage::Detection.is_projection_or_raycounting());
        assert!(!Stage::ComputeHomography.is_fpga_subtask());
        assert!(Stage::ComputeHomography.is_projection_or_raycounting());
        assert_eq!(Stage::ALL.len(), 9);
    }

    #[test]
    fn accumulation_and_fractions() {
        let mut p = StageProfile::new();
        p.add(Stage::CanonicalProjection, Duration::from_millis(10));
        p.add(Stage::ProportionalProjection, Duration::from_millis(60));
        p.add(Stage::VoteDsi, Duration::from_millis(20));
        p.add(Stage::Detection, Duration::from_millis(10));
        assert_eq!(p.total_time(), Duration::from_millis(100));
        assert!((p.projection_raycounting_fraction() - 0.9).abs() < 1e-9);
        assert!((p.fpga_subtask_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_frame_metrics() {
        let mut p = StageProfile::new();
        p.frames_processed = 10;
        p.events_processed = 10 * 1024;
        p.add(Stage::CanonicalProjection, Duration::from_micros(224));
        p.add(Stage::ProportionalProjection, Duration::from_micros(4000));
        p.add(Stage::VoteDsi, Duration::from_micros(1595));
        assert!((p.canonical_us_per_frame() - 22.4).abs() < 1e-6);
        assert!((p.proportional_raycount_us_per_frame() - 559.5).abs() < 1e-6);
        assert!(p.frame_us() > 500.0);
        assert!(p.event_rate() > 1e6);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = StageProfile::new();
        assert_eq!(p.total_time(), Duration::ZERO);
        assert_eq!(p.projection_raycounting_fraction(), 0.0);
        assert_eq!(p.fpga_subtask_fraction(), 0.0);
        assert_eq!(p.event_rate(), 0.0);
        assert_eq!(p.frame_us(), 0.0);
        assert!(!p.to_table().is_empty());
    }
}
