//! Event back-projection (`𝒫`): per-frame geometry shared by all events of an
//! event frame.
//!
//! The two-step scheme of the EMVS space-sweep is used: each (undistorted)
//! event pixel is mapped onto the canonical plane `Z0` of the virtual camera
//! through the plane-induced homography `H_{Z0}` (`𝒫{Z0}`), and then
//! transferred to every other depth plane `Zi` through the per-frame
//! proportional coefficients `φ` (`𝒫{Z0;Zi}`).

use crate::EmvsError;
use eventor_dsi::DepthPlanes;
use eventor_geom::{CameraIntrinsics, CanonicalHomography, Pose, ProportionalCoefficients, Vec2};

/// Per-frame back-projection geometry: the canonical homography and the
/// proportional transfer coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameGeometry {
    /// Homography mapping event pixels onto the canonical plane `Z0`.
    pub homography: CanonicalHomography,
    /// Proportional coefficients `φ` transferring `Z0` points to every plane.
    pub coefficients: ProportionalCoefficients,
}

impl FrameGeometry {
    /// Computes the geometry for one event frame.
    ///
    /// * `reference_pose` — camera-to-world pose of the virtual (key
    ///   reference) camera that owns the DSI,
    /// * `frame_pose` — camera-to-world pose of the event camera at the
    ///   frame timestamp,
    /// * `intrinsics` — shared pinhole intrinsics,
    /// * `planes` — the DSI depth planes. The *farthest* plane is used as the
    ///   canonical plane `Z0`: near the far plane the homography approaches
    ///   the infinite homography, which keeps the canonical back-projections
    ///   close to the sensor extent and therefore inside the Q9.7 coordinate
    ///   range of the quantized datapath.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::Geometry`] when the relative pose induces a
    /// degenerate homography (e.g. the event camera centre lies on the
    /// canonical plane).
    pub fn compute(
        reference_pose: &Pose,
        frame_pose: &Pose,
        intrinsics: &CameraIntrinsics,
        planes: &DepthPlanes,
    ) -> Result<Self, EmvsError> {
        let z0 = planes.z_max();
        let homography = CanonicalHomography::compute(reference_pose, frame_pose, intrinsics, z0)?;
        let coefficients = ProportionalCoefficients::compute(
            reference_pose,
            frame_pose,
            intrinsics,
            planes.as_slice(),
            z0,
        )?;
        Ok(Self {
            homography,
            coefficients,
        })
    }

    /// Canonical back-projection `𝒫{Z0}` of one undistorted event pixel.
    ///
    /// Returns `None` when the pixel maps to infinity.
    #[inline]
    pub fn canonical(&self, event_pixel: Vec2) -> Option<Vec2> {
        self.homography.project(event_pixel)
    }

    /// Proportional back-projection `𝒫{Z0;Zi}`: transfers a canonical-plane
    /// point to depth plane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid plane index.
    #[inline]
    pub fn transfer(&self, canonical: Vec2, i: usize) -> Vec2 {
        self.coefficients.transfer(canonical, i)
    }

    /// Number of depth planes covered.
    pub fn num_planes(&self) -> usize {
        self.coefficients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_geom::{backproject_exhaustive, Vec3};

    fn intrinsics() -> CameraIntrinsics {
        CameraIntrinsics::davis240_default()
    }

    fn planes() -> DepthPlanes {
        DepthPlanes::uniform_inverse_depth(1.0, 5.0, 40).unwrap()
    }

    #[test]
    fn frame_geometry_matches_exhaustive_raycast() {
        let reference = Pose::identity();
        let frame_pose = Pose::from_translation(Vec3::new(0.08, -0.02, 0.01));
        let planes = planes();
        let geom = FrameGeometry::compute(&reference, &frame_pose, &intrinsics(), &planes).unwrap();
        assert_eq!(geom.num_planes(), 40);

        let px = Vec2::new(150.0, 60.0);
        let canonical = geom.canonical(px).unwrap();
        let exact = backproject_exhaustive(
            &reference,
            &frame_pose,
            &intrinsics(),
            px,
            planes.as_slice(),
        );
        for (i, expect) in exact.iter().enumerate() {
            let got = geom.transfer(canonical, i);
            let expect = expect.unwrap();
            assert!((got - expect).norm() < 1e-5, "plane {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn degenerate_pose_reports_error() {
        let reference = Pose::identity();
        // Camera centre exactly on the canonical plane (the farthest plane, 5 m).
        let bad = Pose::from_translation(Vec3::new(0.0, 0.0, 5.0));
        assert!(FrameGeometry::compute(&reference, &bad, &intrinsics(), &planes()).is_err());
    }

    #[test]
    fn identity_frame_is_identity_mapping() {
        let reference = Pose::identity();
        let geom =
            FrameGeometry::compute(&reference, &reference, &intrinsics(), &planes()).unwrap();
        let px = Vec2::new(100.0, 80.0);
        let canonical = geom.canonical(px).unwrap();
        assert!((canonical - px).norm() < 1e-6);
        // With zero baseline every plane sees the same pixel.
        for i in 0..geom.num_planes() {
            assert!((geom.transfer(canonical, i) - px).norm() < 1e-6);
        }
    }
}
