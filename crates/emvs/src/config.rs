//! Configuration of the EMVS space-sweep mapper.

use crate::EmvsError;
use eventor_dsi::{DepthPlanes, DetectionConfig};
use eventor_events::DEFAULT_EVENTS_PER_FRAME;

/// DSI voting mode.
///
/// The baseline EMVS uses [`VotingMode::Bilinear`]; the Eventor accelerator
/// substitutes [`VotingMode::Nearest`] (the paper's approximate-computing
/// optimization, evaluated in Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VotingMode {
    /// Split each vote over the four surrounding voxels by bilinear weights.
    #[default]
    Bilinear,
    /// Deposit the whole vote on the nearest voxel.
    Nearest,
}

impl std::fmt::Display for VotingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bilinear => write!(f, "bilinear"),
            Self::Nearest => write!(f, "nearest"),
        }
    }
}

/// Configuration of the EMVS mapper (baseline and reformulated pipelines
/// share this struct).
#[derive(Debug, Clone, PartialEq)]
pub struct EmvsConfig {
    /// Events per aggregated frame (the paper uses 1024).
    pub events_per_frame: usize,
    /// Number of DSI depth planes `N_z`.
    pub num_depth_planes: usize,
    /// Near and far limits of the DSI depth range, in metres.
    pub depth_range: (f64, f64),
    /// DSI voting mode.
    pub voting: VotingMode,
    /// Scene-structure detection parameters.
    pub detection: DetectionConfig,
    /// Translation distance (metres) between the current camera pose and the
    /// key reference view beyond which a new key frame is selected.
    pub keyframe_distance: f64,
    /// Minimum number of event frames that must be processed into a DSI
    /// before a key-frame switch is allowed (avoids key frames with too few
    /// votes to detect anything).
    pub min_frames_per_keyframe: usize,
}

impl Default for EmvsConfig {
    fn default() -> Self {
        Self {
            events_per_frame: DEFAULT_EVENTS_PER_FRAME,
            num_depth_planes: 100,
            depth_range: (0.6, 6.0),
            voting: VotingMode::Bilinear,
            detection: DetectionConfig::default(),
            keyframe_distance: 0.25,
            min_frames_per_keyframe: 4,
        }
    }
}

impl EmvsConfig {
    /// Validates the configuration.
    ///
    /// This is the single validation path shared by the session builder and
    /// every legacy constructor (`EmvsMapper::new`, `EventorPipeline::new`,
    /// `CosimPipeline::new`), which used to copy-paste these checks.
    ///
    /// # Errors
    ///
    /// Returns [`EmvsError::InvalidConfig`] when the frame size is zero,
    /// fewer than two depth planes are requested, or the depth range is
    /// non-positive or inverted.
    pub fn validate(&self) -> Result<(), EmvsError> {
        if self.events_per_frame == 0 {
            return Err(EmvsError::InvalidConfig {
                reason: "events_per_frame must be positive".into(),
            });
        }
        if self.num_depth_planes < 2 {
            return Err(EmvsError::InvalidConfig {
                reason: "need at least two depth planes".into(),
            });
        }
        if !self.depth_range.0.is_finite()
            || !self.depth_range.1.is_finite()
            || self.depth_range.0 <= 0.0
            || self.depth_range.1 <= self.depth_range.0
        {
            return Err(EmvsError::InvalidConfig {
                reason: format!("invalid depth range {:?}", self.depth_range),
            });
        }
        Ok(())
    }

    /// Validates the configuration and constructs its DSI depth planes — the
    /// one place the `depth_range` / `num_depth_planes` pair is turned into
    /// geometry, so a configuration that validates is guaranteed to
    /// construct.
    ///
    /// # Errors
    ///
    /// Same contract as [`EmvsConfig::validate`].
    pub fn depth_planes(&self) -> Result<DepthPlanes, EmvsError> {
        self.validate()?;
        Ok(DepthPlanes::uniform_inverse_depth(
            self.depth_range.0,
            self.depth_range.1,
            self.num_depth_planes,
        )?)
    }

    /// Builder-style override of the depth range.
    pub fn with_depth_range(mut self, z_min: f64, z_max: f64) -> Self {
        self.depth_range = (z_min, z_max);
        self
    }

    /// Builder-style override of the voting mode.
    pub fn with_voting(mut self, voting: VotingMode) -> Self {
        self.voting = voting;
        self
    }

    /// Builder-style override of the number of depth planes.
    pub fn with_depth_planes(mut self, n: usize) -> Self {
        self.num_depth_planes = n;
        self
    }

    /// Builder-style override of the key-frame distance threshold.
    pub fn with_keyframe_distance(mut self, distance: f64) -> Self {
        self.keyframe_distance = distance;
        self
    }

    /// Builder-style override of the detection parameters.
    pub fn with_detection(mut self, detection: DetectionConfig) -> Self {
        self.detection = detection;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = EmvsConfig::default();
        assert_eq!(c.events_per_frame, 1024);
        assert_eq!(c.num_depth_planes, 100);
        assert_eq!(c.voting, VotingMode::Bilinear);
    }

    #[test]
    fn builder_overrides() {
        let c = EmvsConfig::default()
            .with_depth_range(1.0, 3.0)
            .with_voting(VotingMode::Nearest)
            .with_depth_planes(50)
            .with_keyframe_distance(0.4);
        assert_eq!(c.depth_range, (1.0, 3.0));
        assert_eq!(c.voting, VotingMode::Nearest);
        assert_eq!(c.num_depth_planes, 50);
        assert_eq!(c.keyframe_distance, 0.4);
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        assert!(EmvsConfig::default().validate().is_ok());
        let bad = EmvsConfig {
            events_per_frame: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = EmvsConfig {
            num_depth_planes: 1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        assert!(EmvsConfig::default()
            .with_depth_range(2.0, 1.0)
            .validate()
            .is_err());
        assert!(EmvsConfig::default()
            .with_depth_range(0.0, 1.0)
            .validate()
            .is_err());
        // Non-finite ranges must be rejected by validation, not surface later
        // as a planes-construction failure (or a panic behind an `expect`).
        assert!(EmvsConfig::default()
            .with_depth_range(1.0, f64::INFINITY)
            .validate()
            .is_err());
        assert!(EmvsConfig::default()
            .with_depth_range(f64::NAN, f64::NAN)
            .validate()
            .is_err());
        assert!(EmvsConfig::default().depth_planes().is_ok());
    }

    #[test]
    fn voting_mode_display() {
        assert_eq!(VotingMode::Bilinear.to_string(), "bilinear");
        assert_eq!(VotingMode::Nearest.to_string(), "nearest");
    }
}
