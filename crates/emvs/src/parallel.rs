//! Shared infrastructure of the **parallel sharded voting engine**: the
//! shard-count/packet-size configuration and the scoped worker-shard runner.
//!
//! The engine's execution model (used by the session backends — the baseline
//! [`BaselineBackend`](crate::BaselineBackend) and `eventor-core`'s
//! `ShardedBackend`; key-frame segmentation itself is performed live by the
//! session driver's key-frame selector, the same state machine the
//! sequential golden path runs):
//!
//! 1. **Vote** — split each key frame's event frames into
//!    [`VotePacket`]s (`crates/events`) and
//!    distribute the packets round-robin over `shards` worker threads. Each
//!    worker votes into its own private DSI tile, so the hot loop is
//!    lock-free and allocation-free.
//! 2. **Reduce** — merge the per-shard tiles with the fixed-shape binary tree
//!    reduction of [`DsiVolume::tree_reduce`](eventor_dsi::DsiVolume::tree_reduce),
//!    whose result depends only on the shard count, never on thread timing.
//!
//! For integer (`u16`) DSI scores and unit votes the merged volume is
//! **bit-identical to the sequential golden path for every shard count**,
//! because saturating unit-vote accumulation is order-independent — and,
//! since the bit-true kernel refactor, every quantized vote address is
//! computed by the same integer kernel (`eventor_fixed::kernel`) on the
//! same hoisted raw words regardless of which engine runs the packet, so
//! there is no arithmetic left to diverge, only scheduling. For `f32`
//! scores, nearest voting (whole `1.0` increments, exact in `f32`) is also
//! bit-identical; bilinear voting deposits fractional weights whose final
//! float rounding can differ from the sequential summation order by a few
//! ULPs — still deterministic for a fixed shard count.

use eventor_events::VotePacket;

/// Degree of parallelism of the sharded voting engine.
///
/// The default is [`ParallelConfig::sequential`], which preserves the exact
/// single-threaded golden path; [`ParallelConfig::auto`] spreads work over the
/// machine's available cores.
///
/// # Examples
///
/// ```
/// use eventor_emvs::ParallelConfig;
/// let p = ParallelConfig::with_shards(4).with_packet_events(512);
/// assert_eq!(p.shards(), 4);
/// assert_eq!(p.packet_events(), 512);
/// assert!(p.is_parallel());
/// assert!(!ParallelConfig::sequential().is_parallel());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    shards: usize,
    packet_events: usize,
    force_engine: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

impl ParallelConfig {
    /// Single-shard configuration: the engine is bypassed entirely and the
    /// sequential golden path runs.
    pub fn sequential() -> Self {
        Self {
            shards: 1,
            packet_events: eventor_events::DEFAULT_PACKET_EVENTS,
            force_engine: false,
        }
    }

    /// Runs the batched engine (segment planning + fused vote kernels) on a
    /// single shard, without worker threads.
    ///
    /// With one shard the packets execute in exact sequential order into one
    /// tile, so the result is bit-identical to the golden path for *every*
    /// datapath, including float bilinear voting. This isolates the engine's
    /// batching/hoisting speedup from its thread scaling — the
    /// `parallel_voting` benchmark's `engine_1_shard` row.
    pub fn batched() -> Self {
        Self {
            force_engine: true,
            ..Self::sequential()
        }
    }

    /// One shard per available hardware thread.
    pub fn auto() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_shards(shards)
    }

    /// A fixed shard count (clamped to at least 1). A single shard behaves
    /// like [`ParallelConfig::batched`].
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            force_engine: true,
            ..Self::sequential()
        }
    }

    /// Overrides the packet size (clamped to at least 1 event per packet).
    pub fn with_packet_events(mut self, packet_events: usize) -> Self {
        self.packet_events = packet_events.max(1);
        self
    }

    /// Number of worker shards: the size of the work partition (tiles,
    /// packet assignment, reduction shape).
    ///
    /// The partition is a pure function of this count — it never depends on
    /// the host — so results are reproducible across machines for a fixed
    /// configuration. How many OS threads actually execute the shards is a
    /// separate, host-dependent cap: [`Self::worker_threads`].
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of OS worker threads the engine uses to execute the shards:
    /// `min(shards, available hardware threads)`.
    ///
    /// Oversubscribing a CPU-bound vote kernel has no concurrency gain, so a
    /// 2-core host executes an 8-shard partition on 2 threads (each thread
    /// processes a contiguous block of shard tiles). The cap affects *only*
    /// scheduling — the partition, and therefore the output, is unchanged.
    pub fn worker_threads(&self) -> usize {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.shards.min(available).max(1)
    }

    /// Events per vote packet.
    pub fn packet_events(&self) -> usize {
        self.packet_events
    }

    /// Whether the work partition has more than one shard.
    pub fn is_parallel(&self) -> bool {
        self.shards > 1
    }

    /// Whether the batched engine runs at all (multi-shard, or single-shard
    /// batched mode).
    pub fn is_engine(&self) -> bool {
        self.shards > 1 || self.force_engine
    }
}

/// Round-robin packet-to-shard assignment: the packets shard `shard` owns
/// out of `packets`, in sequential-schedule order. This single function is
/// the load-balancing rule both engines (the baseline mapper's and
/// `eventor-core`'s) use, and the one the bit-identity argument fixes:
/// packet `p` goes to shard `p mod shards`, independent of thread timing.
#[inline]
pub fn shard_packets(
    packets: &[VotePacket],
    shard: usize,
    shards: usize,
) -> impl Iterator<Item = &VotePacket> {
    packets.iter().skip(shard).step_by(shards.max(1))
}

/// Runs `work(shard_index, &mut tiles[shard_index])` for every shard, on at
/// most `min(tiles.len(), available hardware threads)` scoped worker
/// threads; with more tiles than threads, each thread processes a contiguous
/// block of tiles.
///
/// The single-thread case runs inline on the caller's thread (no spawn),
/// which is what makes [`ParallelConfig::sequential`] a true golden path —
/// and also means an N-shard partition is fully exercised on a 1-core host,
/// just without concurrency. Each worker owns its tiles exclusively for the
/// duration of the call, so the closure needs no synchronisation;
/// determinism follows from the fixed packet-to-shard assignment chosen by
/// the caller, not from scheduling.
pub fn run_sharded<T, F>(tiles: &mut [T], work: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = tiles.len().min(available);
    if threads <= 1 {
        for (index, tile) in tiles.iter_mut().enumerate() {
            work(index, tile);
        }
        return;
    }
    let block = tiles.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_index, chunk) in tiles.chunks_mut(block).enumerate() {
            let work = &work;
            scope.spawn(move || {
                for (offset, tile) in chunk.iter_mut().enumerate() {
                    work(chunk_index * block + offset, tile);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_and_reports() {
        assert_eq!(ParallelConfig::with_shards(0).shards(), 1);
        assert_eq!(
            ParallelConfig::sequential()
                .with_packet_events(0)
                .packet_events(),
            1
        );
        assert!(ParallelConfig::auto().shards() >= 1);
        assert_eq!(ParallelConfig::default(), ParallelConfig::sequential());
        // Engine selection: sequential bypasses it, batched forces it at one
        // shard, multi-shard always uses it.
        assert!(!ParallelConfig::sequential().is_engine());
        assert!(ParallelConfig::batched().is_engine());
        assert!(!ParallelConfig::batched().is_parallel());
        assert!(ParallelConfig::with_shards(2).is_engine());
        assert!(ParallelConfig::with_shards(2).is_parallel());
        // The partition is never clamped — only the thread count is.
        assert_eq!(ParallelConfig::with_shards(64).shards(), 64);
        let threads = ParallelConfig::with_shards(64).worker_threads();
        assert!((1..=64).contains(&threads));
    }

    #[test]
    fn run_sharded_executes_every_shard_once() {
        let mut tiles = vec![0u64; 8];
        run_sharded(&mut tiles, |i, t| *t = i as u64 + 1);
        assert_eq!(tiles, (1..=8).collect::<Vec<_>>());
        let mut single = vec![0u64];
        run_sharded(&mut single, |_, t| *t = 7);
        assert_eq!(single, vec![7]);
        run_sharded::<u64, _>(&mut [], |_, _| unreachable!());
    }
}
