//! Error type for the EMVS mapper.

use eventor_dsi::DsiError;
use eventor_geom::GeometryError;
use std::error::Error;
use std::fmt;

/// Errors returned by the EMVS mapper.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmvsError {
    /// A geometric computation failed (degenerate homography, bad intrinsics,
    /// trajectory lookup failure, …).
    Geometry(GeometryError),
    /// A DSI operation failed (invalid depth range, dimension mismatch, …).
    Dsi(DsiError),
    /// The mapper was given an empty event stream.
    NoEvents,
    /// The configuration was unusable.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A streaming session's bounded in-flight event buffer is full; the
    /// caller must `poll()` (or push the poses the buffered frames are
    /// waiting for) before pushing more events.
    Backpressure {
        /// Events currently buffered in the session.
        pending: usize,
        /// Configured in-flight capacity.
        capacity: usize,
    },
    /// An event was pushed into a streaming session out of time order.
    OutOfOrder {
        /// Timestamp of the offending event.
        timestamp: f64,
    },
    /// A session checkpoint could not be captured, decoded or restored.
    Checkpoint {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for EmvsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Geometry(e) => write!(f, "geometry error: {e}"),
            Self::Dsi(e) => write!(f, "dsi error: {e}"),
            Self::NoEvents => write!(f, "event stream is empty"),
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::Backpressure { pending, capacity } => write!(
                f,
                "session buffer full ({pending}/{capacity} events in flight): poll() or push poses"
            ),
            Self::OutOfOrder { timestamp } => {
                write!(f, "event at t={timestamp} pushed out of time order")
            }
            Self::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
        }
    }
}

impl Error for EmvsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Geometry(e) => Some(e),
            Self::Dsi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for EmvsError {
    fn from(e: GeometryError) -> Self {
        Self::Geometry(e)
    }
}

impl From<DsiError> for EmvsError {
    fn from(e: DsiError) -> Self {
        Self::Dsi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: EmvsError = GeometryError::DegenerateHomography.into();
        assert!(matches!(e, EmvsError::Geometry(_)));
        assert!(e.source().is_some());
        let e: EmvsError = DsiError::EmptyPointCloud.into();
        assert!(matches!(e, EmvsError::Dsi(_)));
        assert!(!EmvsError::NoEvents.to_string().is_empty());
        assert!(EmvsError::NoEvents.source().is_none());
        let e = EmvsError::Backpressure {
            pending: 10,
            capacity: 8,
        };
        assert!(e.to_string().contains("10/8"));
        assert!(e.source().is_none());
        let e = EmvsError::OutOfOrder { timestamp: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = EmvsError::Checkpoint {
            reason: "drained".into(),
        };
        assert!(e.to_string().contains("checkpoint error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmvsError>();
    }
}
