//! The disparity space image (DSI): a `w × h × N_z` voxel grid of ray-count
//! scores attached to a virtual camera view.

use crate::planes::DepthPlanes;
use crate::DsiError;
use eventor_fixed::kernel::batch;
use eventor_fixed::kernel::PhiWords;
use eventor_fixed::PackedCoord;

/// Reusable scratch for [`DsiVolume::vote_batch`]: the packed slab-index
/// buffer the batched transfer writes and the vote deposit reads.
///
/// Owning the buffer outside the volume lets the sharded hot loop carry one
/// arena per shard across every packet segment instead of reallocating per
/// call; a fresh (empty) arena is always valid input.
#[derive(Debug, Default)]
pub struct VoteArena {
    idx: Vec<u32>,
}

impl VoteArena {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Canonical-coordinate block length of the cache-blocked vote loop: the
/// block (4 B/coord) plus its index buffer (4 B/entry) stay L1-resident
/// (16 KiB at 2048) while one plane slab (`width · height` scores, ~84 KiB
/// for a 240×180 `u16` DSI) is the L2-resident write set.
const VOTE_BLOCK: usize = 2048;

/// Score storage of a DSI voxel.
///
/// The baseline EMVS uses `f32` scores (bilinear voting deposits fractional
/// weights); the Eventor accelerator uses 16-bit integer scores (nearest
/// voting deposits unit votes, Table 1). The trait is sealed to these two
/// types so the two datapaths stay comparable.
pub trait VoxelScore:
    Copy + Default + PartialOrd + private::Sealed + std::fmt::Debug + Send
{
    /// Adds a vote of the given weight (implementations may round or
    /// saturate).
    fn add_vote(&mut self, weight: f64);
    /// The score as `f64` for detection and comparison.
    fn as_f64(self) -> f64;
    /// Accumulates another score of the same type — the shard-merge operation
    /// of the parallel voting engine. Integer scores saturate exactly like
    /// repeated unit votes would; float scores add.
    fn merge(&mut self, other: Self);
    /// Adds one unit vote — exactly equivalent to `add_vote(1.0)`, without
    /// the weight-rounding work. The parallel engine's fused kernels use this
    /// in their inner loop.
    #[inline]
    fn add_unit(&mut self) {
        self.add_vote(1.0);
    }
    /// Bytes one score occupies in the serialized vote state
    /// ([`DsiVolume::encode_vote_state`]).
    const ENCODED_BYTES: usize;
    /// Appends the score's little-endian bit pattern to `out` — bit-exact,
    /// so a decoded score is byte-identical to the encoded one.
    fn write_le(self, out: &mut Vec<u8>);
    /// Decodes one score from its little-endian bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`Self::ENCODED_BYTES`] (callers
    /// slice exactly).
    fn read_le(bytes: &[u8]) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for u16 {}
}

impl VoxelScore for f32 {
    #[inline]
    fn add_vote(&mut self, weight: f64) {
        *self += weight as f32;
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn merge(&mut self, other: Self) {
        *self += other;
    }
    const ENCODED_BYTES: usize = 4;
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes[..4].try_into().expect("4 score bytes"))
    }
}

impl VoxelScore for u16 {
    #[inline]
    fn add_vote(&mut self, weight: f64) {
        // Integer votes with saturation — the quantized DSI of Table 1.
        let inc = weight.round().max(0.0) as u32;
        *self = (*self as u32).saturating_add(inc).min(u16::MAX as u32) as u16;
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn merge(&mut self, other: Self) {
        // Saturating accumulation: merging shard counts is exact with respect
        // to sequential unit voting because min(Σ min(cᵢ, MAX), MAX) equals
        // min(Σ cᵢ, MAX) for non-negative counts.
        *self = (*self).saturating_add(other);
    }
    #[inline]
    fn add_unit(&mut self) {
        // Identical to `add_vote(1.0)` (the weight 1.0 rounds to the integer
        // increment 1), skipping the float rounding.
        *self = (*self).saturating_add(1);
    }
    const ENCODED_BYTES: usize = 2;
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        u16::from_le_bytes(bytes[..2].try_into().expect("2 score bytes"))
    }
}

/// A disparity space image: per-voxel ray-count scores for a virtual camera
/// of `width × height` pixels and [`DepthPlanes::len`] depth slices.
///
/// Voxels are stored plane-major (`[plane][row][col]`): the vote stage writes
/// one plane at a time, and the detection stage strides across planes per
/// pixel.
///
/// # Examples
///
/// ```
/// use eventor_dsi::{DepthPlanes, DsiVolume};
/// let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 8)?;
/// let mut dsi: DsiVolume<f32> = DsiVolume::new(32, 24, planes)?;
/// dsi.vote_nearest(10.2, 5.7, 3, 1.0);
/// assert_eq!(dsi.score(10, 6, 3), 1.0);
/// # Ok::<(), eventor_dsi::DsiError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DsiVolume<S: VoxelScore> {
    width: usize,
    height: usize,
    planes: DepthPlanes,
    data: Vec<S>,
    votes_cast: u64,
    votes_missed: u64,
}

impl<S: VoxelScore> DsiVolume<S> {
    /// Creates a zero-initialised DSI.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::EmptyVolume`] when `width` or `height` is zero.
    pub fn new(width: usize, height: usize, planes: DepthPlanes) -> Result<Self, DsiError> {
        if width == 0 || height == 0 {
            return Err(DsiError::EmptyVolume { width, height });
        }
        let len = width * height * planes.len();
        Ok(Self {
            width,
            height,
            planes,
            data: vec![S::default(); len],
            votes_cast: 0,
            votes_missed: 0,
        })
    }

    /// Builds a DSI from an existing score array in `(plane, row, column)`
    /// order — the readback path from an accelerator that keeps the DSI in
    /// external memory.
    ///
    /// `votes_cast` records how many votes the producer applied, so the
    /// volume's counters stay meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::EmptyVolume`] when `width` or `height` is zero and
    /// [`DsiError::DimensionMismatch`] when the score array does not hold
    /// exactly `width * height * planes.len()` entries.
    pub fn from_scores(
        width: usize,
        height: usize,
        planes: DepthPlanes,
        scores: Vec<S>,
        votes_cast: u64,
    ) -> Result<Self, DsiError> {
        if width == 0 || height == 0 {
            return Err(DsiError::EmptyVolume { width, height });
        }
        let expected = width * height * planes.len();
        if scores.len() != expected {
            return Err(DsiError::DimensionMismatch {
                expected,
                actual: scores.len(),
            });
        }
        Ok(Self {
            width,
            height,
            planes,
            data: scores,
            votes_cast,
            votes_missed: 0,
        })
    }

    /// Serializes the volume's mutable vote state — the two vote counters
    /// followed by the raw score array in plane-major order, all
    /// little-endian — for the `eventor-evtr/1` `CKPT` checkpoint section.
    ///
    /// The encoding is deterministic and bit-exact: identical volumes produce
    /// identical bytes on every platform, and
    /// [`Self::decode_vote_state`] rebuilds a volume that compares equal
    /// (score bit patterns included).
    pub fn encode_vote_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.data.len() * S::ENCODED_BYTES);
        out.extend_from_slice(&self.votes_cast.to_le_bytes());
        out.extend_from_slice(&self.votes_missed.to_le_bytes());
        for &s in &self.data {
            s.write_le(&mut out);
        }
        out
    }

    /// Rebuilds a volume from [`Self::encode_vote_state`] bytes for the given
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::EmptyVolume`] for zero dimensions and
    /// [`DsiError::InvalidVoteState`] when the byte length does not match the
    /// geometry exactly.
    pub fn decode_vote_state(
        width: usize,
        height: usize,
        planes: DepthPlanes,
        bytes: &[u8],
    ) -> Result<Self, DsiError> {
        if width == 0 || height == 0 {
            return Err(DsiError::EmptyVolume { width, height });
        }
        // Checked arithmetic: the dimensions may come from an untrusted
        // checkpoint container, and a forged width/height pair must be a
        // typed error rather than an overflow.
        let voxels = width
            .checked_mul(height)
            .and_then(|v| v.checked_mul(planes.len()))
            .and_then(|v| v.checked_mul(S::ENCODED_BYTES))
            .and_then(|v| v.checked_add(16));
        let expected = match voxels {
            Some(total_bytes) => total_bytes,
            None => {
                return Err(DsiError::InvalidVoteState {
                    reason: format!(
                        "{width}x{height}x{} volume dimensions overflow the address space",
                        planes.len()
                    ),
                })
            }
        };
        if bytes.len() != expected {
            return Err(DsiError::InvalidVoteState {
                reason: format!(
                    "vote state holds {} bytes but a {width}x{height}x{} volume needs {expected}",
                    bytes.len(),
                    planes.len()
                ),
            });
        }
        let votes_cast = u64::from_le_bytes(bytes[0..8].try_into().expect("8 counter bytes"));
        let votes_missed = u64::from_le_bytes(bytes[8..16].try_into().expect("8 counter bytes"));
        let data: Vec<S> = bytes[16..]
            .chunks_exact(S::ENCODED_BYTES)
            .map(S::read_le)
            .collect();
        Ok(Self {
            width,
            height,
            planes,
            data,
            votes_cast,
            votes_missed,
        })
    }

    /// Image width (voxels per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (voxel rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of depth planes.
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// The depth planes.
    pub fn planes(&self) -> &DepthPlanes {
        &self.planes
    }

    /// Total number of voxels.
    pub fn voxel_count(&self) -> usize {
        self.data.len()
    }

    /// Memory footprint of the score array in bytes.
    pub fn score_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<S>()
    }

    /// Number of votes deposited since the last reset.
    pub fn votes_cast(&self) -> u64 {
        self.votes_cast
    }

    /// Number of vote attempts that fell outside the volume ("projection
    /// missing" in the paper's terminology).
    pub fn votes_missed(&self) -> u64 {
        self.votes_missed
    }

    #[inline]
    fn index(&self, x: usize, y: usize, plane: usize) -> usize {
        (plane * self.height + y) * self.width + x
    }

    /// The score of voxel `(x, y, plane)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[inline]
    pub fn score(&self, x: usize, y: usize, plane: usize) -> f64 {
        assert!(x < self.width && y < self.height && plane < self.planes.len());
        self.data[self.index(x, y, plane)].as_f64()
    }

    /// The whole raw score array, plane-major then row-major — the exact
    /// layout of the accelerator's DSI region in external memory, so a
    /// checkpointed volume can be imaged back into the device model
    /// verbatim.
    pub fn raw_scores(&self) -> &[S] {
        &self.data
    }

    /// Raw scores of one depth plane, row-major.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn plane_scores(&self, plane: usize) -> &[S] {
        assert!(plane < self.planes.len());
        let start = plane * self.width * self.height;
        &self.data[start..start + self.width * self.height]
    }

    /// Mutable raw scores of one depth plane, row-major — the parallel
    /// engine's fused kernels vote plane by plane directly into the slab
    /// (index `y * width + x`), then account the deposited votes in bulk via
    /// [`Self::add_cast_votes`].
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn plane_scores_mut(&mut self, plane: usize) -> &mut [S] {
        assert!(plane < self.planes.len());
        let start = plane * self.width * self.height;
        let len = self.width * self.height;
        &mut self.data[start..start + len]
    }

    /// Bulk-accounts `n` votes deposited directly into plane slabs obtained
    /// from [`Self::plane_scores_mut`].
    pub fn add_cast_votes(&mut self, n: u64) {
        self.votes_cast += n;
    }

    /// Resets every score to zero (the "Reset DSI" step performed when a new
    /// key frame is selected) and clears the vote counters.
    pub fn reset(&mut self) {
        for v in &mut self.data {
            *v = S::default();
        }
        self.votes_cast = 0;
        self.votes_missed = 0;
    }

    /// Deposits a unit (or weighted) vote at the voxel *nearest* to the
    /// projected point — the approximate voting mode used by the accelerator.
    ///
    /// Out-of-volume projections are counted as missed and ignored.
    #[inline]
    pub fn vote_nearest(&mut self, x: f64, y: f64, plane: usize, weight: f64) {
        if plane >= self.planes.len() || !x.is_finite() || !y.is_finite() {
            self.votes_missed += 1;
            return;
        }
        let xi = x.round();
        let yi = y.round();
        if xi < 0.0 || yi < 0.0 || xi >= self.width as f64 || yi >= self.height as f64 {
            self.votes_missed += 1;
            return;
        }
        let idx = self.index(xi as usize, yi as usize, plane);
        self.data[idx].add_vote(weight);
        self.votes_cast += 1;
    }

    /// Deposits one unit vote at an exact integer voxel address — the
    /// integer entry point of the quantized nearest datapath, fed directly
    /// by the Nearest Voxel Finder's in-sensor addresses (no `f64` round
    /// trip, no re-rounding).
    ///
    /// The caller has already performed the in-sensor judgement; addresses
    /// outside the volume are counted as missed, like
    /// [`Self::vote_nearest`].
    #[inline]
    pub fn vote_at(&mut self, x: u16, y: u16, plane: usize) {
        if plane >= self.planes.len() || x as usize >= self.width || y as usize >= self.height {
            self.votes_missed += 1;
            return;
        }
        let idx = self.index(x as usize, y as usize, plane);
        self.data[idx].add_unit();
        self.votes_cast += 1;
    }

    /// Deposits a vote split over the four voxels surrounding the projected
    /// point, weighted by bilinear interpolation — the exact voting mode of
    /// the baseline EMVS.
    ///
    /// Out-of-volume projections are counted as missed and ignored; points in
    /// the border half-pixel deposit only the in-bounds portion of their
    /// weight.
    pub fn vote_bilinear(&mut self, x: f64, y: f64, plane: usize, weight: f64) {
        if plane >= self.planes.len() || !x.is_finite() || !y.is_finite() {
            self.votes_missed += 1;
            return;
        }
        if x < -0.5 || y < -0.5 || x > self.width as f64 - 0.5 || y > self.height as f64 - 0.5 {
            self.votes_missed += 1;
            return;
        }
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let mut deposited = false;
        for (dx, dy, w) in [
            (0.0, 0.0, (1.0 - fx) * (1.0 - fy)),
            (1.0, 0.0, fx * (1.0 - fy)),
            (0.0, 1.0, (1.0 - fx) * fy),
            (1.0, 1.0, fx * fy),
        ] {
            let xi = x0 + dx;
            let yi = y0 + dy;
            if w <= 0.0
                || xi < 0.0
                || yi < 0.0
                || xi >= self.width as f64
                || yi >= self.height as f64
            {
                continue;
            }
            let idx = self.index(xi as usize, yi as usize, plane);
            self.data[idx].add_vote(weight * w);
            deposited = true;
        }
        if deposited {
            self.votes_cast += 1;
        } else {
            self.votes_missed += 1;
        }
    }

    /// Deposits one unit vote at an integer voxel address — the
    /// bounds-checked single-vote entry point for producers whose addresses
    /// are already rounded (e.g. a Nearest Voxel Finder that performed the
    /// projection-missing judgement upstream).
    ///
    /// Bit-identical to `vote_nearest(x as f64, y as f64, plane, 1.0)` for
    /// in-range addresses; out-of-range addresses are counted as missed, like
    /// the float entry points do. The parallel engine's hot kernel instead
    /// writes plane slabs directly ([`Self::plane_scores_mut`] +
    /// [`Self::add_cast_votes`]) to keep the bounds work per plane rather
    /// than per vote; this method is the safe equivalent for one-off votes.
    #[inline]
    pub fn vote_unit_at(&mut self, x: u16, y: u16, plane: usize) {
        let (x, y) = (x as usize, y as usize);
        if x >= self.width || y >= self.height || plane >= self.planes.len() {
            self.votes_missed += 1;
            return;
        }
        let idx = self.index(x, y, plane);
        self.data[idx].add_vote(1.0);
        self.votes_cast += 1;
    }

    /// The batched, cache-blocked spelling of the quantized nearest vote
    /// loop: for every depth plane, transfers every canonical coordinate
    /// through the batched `PE_Zi` kernel
    /// ([`batch::transfer_nearest_batch`], vectorized per the session's
    /// dispatch tier) and deposits one unit vote per in-sensor address
    /// directly into the plane slab.
    ///
    /// **Bit-identical to the scalar loop** (`transfer_nearest` +
    /// [`Self::vote_at`] per event and plane): unit votes accumulate by
    /// saturating/exact addition, which is order-independent, so the
    /// plane-major blocked order changes no byte of the score array.
    /// Counter semantics match the fused packet kernels: in-sensor deposits
    /// count as cast, per-plane projection-missing transfers are dropped
    /// without touching the missed counter (they are per-plane outcomes,
    /// not lost events).
    ///
    /// The loop is blocked for the cache hierarchy: canonical coordinates
    /// stream in `VOTE_BLOCK`-sized chunks whose index buffer (reused
    /// across calls via `arena`) stays L1-resident, while the current plane
    /// slab is the only large write set.
    ///
    /// # Panics
    ///
    /// Panics when `coefficients` holds more entries than the volume has
    /// depth planes.
    pub fn vote_batch(
        &mut self,
        canon: &[PackedCoord],
        coefficients: &[PhiWords],
        arena: &mut VoteArena,
    ) {
        assert!(
            coefficients.len() <= self.planes.len(),
            "more φ coefficient entries than depth planes"
        );
        let (width, height) = (self.width as u32, self.height as u32);
        let slab_len = self.width * self.height;
        let mut cast = 0u64;
        for (plane, phi) in coefficients.iter().enumerate() {
            let slab = &mut self.data[plane * slab_len..(plane + 1) * slab_len];
            for block in canon.chunks(VOTE_BLOCK) {
                batch::transfer_nearest_batch(phi, block, width, height, &mut arena.idx);
                for &idx in &arena.idx {
                    if idx != batch::MISS {
                        slab[idx as usize].add_unit();
                        cast += 1;
                    }
                }
            }
        }
        self.votes_cast += cast;
    }

    /// Accumulates another volume of identical dimensions into this one —
    /// the shard-merge step of the parallel voting engine. Scores merge
    /// voxel-wise through [`VoxelScore::merge`]; the vote counters add.
    ///
    /// # Panics
    ///
    /// Panics if the two volumes have different dimensions or plane counts.
    pub fn merge_from(&mut self, other: &Self) {
        assert!(
            self.width == other.width
                && self.height == other.height
                && self.planes.len() == other.planes.len(),
            "cannot merge DSI volumes of different dimensions"
        );
        for (dst, src) in self.data.iter_mut().zip(&other.data) {
            dst.merge(*src);
        }
        self.votes_cast += other.votes_cast;
        self.votes_missed += other.votes_missed;
    }

    /// Merges a set of per-shard volumes into `tiles[0]` with a fixed-shape
    /// binary tree reduction: pass 1 merges tile `i+1` into tile `i` for even
    /// `i`, pass 2 merges stride 2, and so on. The reduction shape depends
    /// only on `tiles.len()`, never on thread timing, so the result is
    /// deterministic for a given shard count (and — for integer scores and
    /// unit votes — bit-identical to sequential voting regardless of the
    /// shard count).
    ///
    /// Returns `None` when `tiles` is empty.
    pub fn tree_reduce(tiles: &mut [Self]) -> Option<&mut Self> {
        let mut refs: Vec<&mut Self> = tiles.iter_mut().collect();
        Self::tree_reduce_refs(&mut refs);
        tiles.first_mut()
    }

    /// [`Self::tree_reduce`] over a slice of mutable references (used when
    /// the tiles are embedded in larger per-shard state structs). The merged
    /// result lands in `tiles[0]`.
    pub fn tree_reduce_refs(tiles: &mut [&mut Self]) {
        let mut stride = 1;
        while stride < tiles.len() {
            let mut i = 0;
            while i + stride < tiles.len() {
                let (head, tail) = tiles.split_at_mut(i + stride);
                head[i].merge_from(&*tail[0]);
                i += 2 * stride;
            }
            stride *= 2;
        }
    }

    /// The maximum score over the whole volume.
    pub fn max_score(&self) -> f64 {
        self.data.iter().map(|s| s.as_f64()).fold(0.0, f64::max)
    }

    /// Sum of all scores.
    pub fn total_score(&self) -> f64 {
        self.data.iter().map(|s| s.as_f64()).sum()
    }

    /// For one pixel, the best (maximum-score) plane index and its score.
    #[inline]
    pub fn best_plane(&self, x: usize, y: usize) -> (usize, f64) {
        let mut best_plane = 0;
        let mut best_score = f64::NEG_INFINITY;
        for plane in 0..self.planes.len() {
            let s = self.data[self.index(x, y, plane)].as_f64();
            if s > best_score {
                best_score = s;
                best_plane = plane;
            }
        }
        (best_plane, best_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes(n: usize) -> DepthPlanes {
        DepthPlanes::uniform_inverse_depth(1.0, 4.0, n).unwrap()
    }

    #[test]
    fn construction_validates_size() {
        assert!(DsiVolume::<f32>::new(0, 10, planes(4)).is_err());
        assert!(DsiVolume::<f32>::new(10, 0, planes(4)).is_err());
        let dsi = DsiVolume::<f32>::new(8, 6, planes(4)).unwrap();
        assert_eq!(dsi.voxel_count(), 8 * 6 * 4);
        assert_eq!(dsi.score_bytes(), 8 * 6 * 4 * 4);
        let dsi16 = DsiVolume::<u16>::new(8, 6, planes(4)).unwrap();
        assert_eq!(dsi16.score_bytes(), 8 * 6 * 4 * 2);
    }

    #[test]
    fn nearest_vote_rounds_to_closest_voxel() {
        let mut dsi = DsiVolume::<u16>::new(16, 12, planes(3)).unwrap();
        dsi.vote_nearest(4.4, 7.6, 1, 1.0);
        assert_eq!(dsi.score(4, 8, 1), 1.0);
        assert_eq!(dsi.votes_cast(), 1);
        dsi.vote_nearest(4.4, 7.6, 1, 1.0);
        assert_eq!(dsi.score(4, 8, 1), 2.0);
    }

    #[test]
    fn nearest_vote_out_of_bounds_is_missed() {
        let mut dsi = DsiVolume::<u16>::new(16, 12, planes(3)).unwrap();
        dsi.vote_nearest(-1.0, 5.0, 0, 1.0);
        dsi.vote_nearest(15.8, 5.0, 0, 1.0); // rounds to 16, out of range
        dsi.vote_nearest(5.0, 5.0, 99, 1.0);
        dsi.vote_nearest(f64::NAN, 5.0, 0, 1.0);
        assert_eq!(dsi.votes_cast(), 0);
        assert_eq!(dsi.votes_missed(), 4);
        assert_eq!(dsi.total_score(), 0.0);
    }

    #[test]
    fn bilinear_vote_distributes_unit_weight() {
        let mut dsi = DsiVolume::<f32>::new(16, 12, planes(3)).unwrap();
        dsi.vote_bilinear(4.25, 7.75, 2, 1.0);
        let total = dsi.total_score();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "bilinear weights should sum to 1, got {total}"
        );
        // The dominant voxel is the nearest one.
        assert!(dsi.score(4, 8, 2) > dsi.score(5, 7, 2));
        assert_eq!(dsi.votes_cast(), 1);
    }

    #[test]
    fn bilinear_vote_on_integer_coordinate_hits_single_voxel() {
        let mut dsi = DsiVolume::<f32>::new(16, 12, planes(3)).unwrap();
        dsi.vote_bilinear(5.0, 6.0, 0, 1.0);
        assert!((dsi.score(5, 6, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bilinear_vote_at_border_keeps_partial_weight() {
        let mut dsi = DsiVolume::<f32>::new(16, 12, planes(2)).unwrap();
        dsi.vote_bilinear(-0.25, 3.0, 0, 1.0);
        assert!(dsi.total_score() > 0.0);
        assert!(dsi.total_score() < 1.0 + 1e-9);
        dsi.vote_bilinear(-2.0, 3.0, 0, 1.0);
        assert_eq!(dsi.votes_missed(), 1);
    }

    #[test]
    fn nearest_and_bilinear_agree_on_voxel_centres() {
        let planes3 = planes(3);
        let mut a = DsiVolume::<f32>::new(16, 12, planes3.clone()).unwrap();
        let mut b = DsiVolume::<f32>::new(16, 12, planes3).unwrap();
        a.vote_nearest(7.0, 3.0, 1, 1.0);
        b.vote_bilinear(7.0, 3.0, 1, 1.0);
        assert!((a.score(7, 3, 1) - b.score(7, 3, 1)).abs() < 1e-6);
    }

    #[test]
    fn u16_scores_saturate_instead_of_wrapping() {
        let mut dsi = DsiVolume::<u16>::new(4, 4, planes(2)).unwrap();
        for _ in 0..70000 {
            dsi.vote_nearest(1.0, 1.0, 0, 1.0);
        }
        assert_eq!(dsi.score(1, 1, 0), u16::MAX as f64);
    }

    #[test]
    fn reset_clears_scores_and_counters() {
        let mut dsi = DsiVolume::<u16>::new(8, 8, planes(2)).unwrap();
        dsi.vote_nearest(2.0, 2.0, 0, 1.0);
        dsi.vote_nearest(-5.0, 2.0, 0, 1.0);
        dsi.reset();
        assert_eq!(dsi.total_score(), 0.0);
        assert_eq!(dsi.votes_cast(), 0);
        assert_eq!(dsi.votes_missed(), 0);
    }

    #[test]
    fn best_plane_finds_argmax() {
        let mut dsi = DsiVolume::<f32>::new(8, 8, planes(5)).unwrap();
        dsi.vote_nearest(3.0, 4.0, 2, 3.0);
        dsi.vote_nearest(3.0, 4.0, 4, 1.0);
        let (plane, score) = dsi.best_plane(3, 4);
        assert_eq!(plane, 2);
        assert_eq!(score, 3.0);
        assert_eq!(dsi.max_score(), 3.0);
    }

    #[test]
    fn vote_unit_at_matches_vote_nearest() {
        let mut a = DsiVolume::<u16>::new(16, 12, planes(3)).unwrap();
        let mut b = DsiVolume::<u16>::new(16, 12, planes(3)).unwrap();
        for (x, y, p) in [(0u16, 0u16, 0usize), (15, 11, 2), (7, 3, 1), (7, 3, 1)] {
            a.vote_unit_at(x, y, p);
            b.vote_nearest(x as f64, y as f64, p, 1.0);
        }
        a.vote_unit_at(16, 0, 0); // out of range -> missed
        b.vote_nearest(16.0, 0.0, 0, 1.0);
        assert_eq!(a, b);
        assert_eq!(a.votes_cast(), 4);
        assert_eq!(a.votes_missed(), 1);
    }

    #[test]
    fn merge_from_adds_scores_and_counters() {
        let mut a = DsiVolume::<u16>::new(8, 8, planes(2)).unwrap();
        let mut b = DsiVolume::<u16>::new(8, 8, planes(2)).unwrap();
        a.vote_unit_at(1, 1, 0);
        b.vote_unit_at(1, 1, 0);
        b.vote_unit_at(2, 3, 1);
        b.vote_nearest(-1.0, 0.0, 0, 1.0); // missed
        a.merge_from(&b);
        assert_eq!(a.score(1, 1, 0), 2.0);
        assert_eq!(a.score(2, 3, 1), 1.0);
        assert_eq!(a.votes_cast(), 3);
        assert_eq!(a.votes_missed(), 1);
    }

    #[test]
    #[should_panic]
    fn merge_from_rejects_dimension_mismatch() {
        let mut a = DsiVolume::<u16>::new(8, 8, planes(2)).unwrap();
        let b = DsiVolume::<u16>::new(8, 9, planes(2)).unwrap();
        a.merge_from(&b);
    }

    #[test]
    fn merged_saturation_matches_sequential_saturation() {
        // Sequential: 70000 unit votes on one voxel saturate at u16::MAX.
        let mut sequential = DsiVolume::<u16>::new(4, 4, planes(2)).unwrap();
        for _ in 0..70_000 {
            sequential.vote_nearest(1.0, 1.0, 0, 1.0);
        }
        // Sharded: 35000 votes in each of two tiles, then merged.
        let mut tiles = vec![
            DsiVolume::<u16>::new(4, 4, planes(2)).unwrap(),
            DsiVolume::<u16>::new(4, 4, planes(2)).unwrap(),
        ];
        for tile in &mut tiles {
            for _ in 0..35_000 {
                tile.vote_unit_at(1, 1, 0);
            }
        }
        let merged = DsiVolume::tree_reduce(&mut tiles).unwrap();
        assert_eq!(merged.score(1, 1, 0), sequential.score(1, 1, 0));
        assert_eq!(merged.votes_cast(), sequential.votes_cast());
    }

    #[test]
    fn tree_reduce_is_equivalent_for_any_shard_count() {
        for shards in 1..=8usize {
            let mut tiles: Vec<DsiVolume<u16>> = (0..shards)
                .map(|_| DsiVolume::new(16, 12, planes(3)).unwrap())
                .collect();
            // Deterministic vote pattern distributed round-robin over shards.
            let votes: Vec<(u16, u16, usize)> = (0..500)
                .map(|i| ((i * 7 % 16) as u16, (i * 5 % 12) as u16, i % 3))
                .collect();
            for (i, &(x, y, p)) in votes.iter().enumerate() {
                tiles[i % shards].vote_unit_at(x, y, p);
            }
            let mut reference = DsiVolume::<u16>::new(16, 12, planes(3)).unwrap();
            for &(x, y, p) in &votes {
                reference.vote_unit_at(x, y, p);
            }
            let merged = DsiVolume::tree_reduce(&mut tiles).unwrap();
            assert_eq!(*merged, reference, "shards = {shards}");
        }
        assert!(DsiVolume::<u16>::tree_reduce(&mut []).is_none());
    }

    #[test]
    fn vote_batch_is_bit_identical_to_the_scalar_vote_loop() {
        use eventor_fixed::kernel::batch::{force, Dispatch};
        use eventor_fixed::kernel::transfer_nearest;
        use eventor_fixed::Q9p7;

        // A spread of canonical coordinates, some projecting outside.
        let canon: Vec<PackedCoord> = (0..500)
            .map(|i| PackedCoord {
                x: Q9p7::from_raw((i * 97 - 4000) as i16),
                y: Q9p7::from_raw((i * 61 - 3000) as i16),
            })
            .collect();
        let coeffs: Vec<PhiWords> = (0..7)
            .map(|p| PhiWords::from_f64(0.5 + p as f64 * 0.1, -2.0 + p as f64, 1.5 * p as f64))
            .collect();

        let mut reference = DsiVolume::<u16>::new(24, 18, planes(7)).unwrap();
        for (plane, phi) in coeffs.iter().enumerate() {
            for &c in &canon {
                if let Some((x, y)) = transfer_nearest(phi, c, 24, 18).address() {
                    reference.vote_at(x, y, plane);
                }
            }
        }
        assert!(reference.votes_cast() > 0, "test pattern casts no votes");

        for tier in Dispatch::ALL.into_iter().filter(|t| t.is_supported()) {
            force(Some(tier)).expect("supported tier");
            let mut batched = DsiVolume::<u16>::new(24, 18, planes(7)).unwrap();
            let mut arena = VoteArena::new();
            batched.vote_batch(&canon, &coeffs, &mut arena);
            assert_eq!(batched, reference, "tier {}", tier.name());
            // Arena reuse across calls must not change results either.
            let mut again = DsiVolume::<u16>::new(24, 18, planes(7)).unwrap();
            again.vote_batch(&canon, &coeffs, &mut arena);
            assert_eq!(again, reference, "tier {} (reused arena)", tier.name());
        }
        force(None).expect("restore dispatch default");
    }

    #[test]
    fn vote_batch_handles_empty_inputs_and_partial_coefficients() {
        let mut dsi = DsiVolume::<u16>::new(8, 8, planes(4)).unwrap();
        let mut arena = VoteArena::new();
        dsi.vote_batch(&[], &[PhiWords::from_f64(1.0, 0.0, 0.0)], &mut arena);
        dsi.vote_batch(&[PackedCoord::from_f64(2.0, 2.0)], &[], &mut arena);
        assert_eq!(dsi.votes_cast(), 0);
        // Fewer coefficient entries than planes: only those planes vote.
        dsi.vote_batch(
            &[PackedCoord::from_f64(2.0, 2.0)],
            &[PhiWords::from_f64(1.0, 0.0, 0.0)],
            &mut arena,
        );
        assert_eq!(dsi.votes_cast(), 1);
        assert_eq!(dsi.score(2, 2, 0), 1.0);
    }

    #[test]
    fn plane_scores_slice_has_correct_length() {
        let dsi = DsiVolume::<u16>::new(10, 6, planes(3)).unwrap();
        assert_eq!(dsi.plane_scores(0).len(), 60);
        assert_eq!(dsi.plane_scores(2).len(), 60);
    }

    #[test]
    fn vote_state_round_trips_quantized_volumes_bit_exactly() {
        let mut dsi = DsiVolume::<u16>::new(8, 6, planes(4)).unwrap();
        dsi.vote_at(3, 2, 1);
        dsi.vote_at(3, 2, 1);
        dsi.vote_at(7, 5, 3);
        dsi.vote_nearest(-5.0, 0.0, 0, 1.0); // a missed vote
        let bytes = dsi.encode_vote_state();
        let back = DsiVolume::<u16>::decode_vote_state(8, 6, planes(4), &bytes).unwrap();
        assert_eq!(back, dsi);
        assert_eq!(back.votes_cast(), dsi.votes_cast());
        assert_eq!(back.votes_missed(), dsi.votes_missed());
        // Deterministic: encoding the decoded volume yields the same bytes.
        assert_eq!(back.encode_vote_state(), bytes);
    }

    #[test]
    fn vote_state_round_trips_float_volumes_bit_exactly() {
        let mut dsi = DsiVolume::<f32>::new(5, 4, planes(3)).unwrap();
        dsi.vote_bilinear(1.3, 2.7, 1, 1.0);
        dsi.vote_bilinear(0.1, 0.9, 2, 0.25);
        let bytes = dsi.encode_vote_state();
        let back = DsiVolume::<f32>::decode_vote_state(5, 4, planes(3), &bytes).unwrap();
        for plane in 0..3 {
            for (a, b) in dsi.plane_scores(plane).iter().zip(back.plane_scores(plane)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(back.votes_cast(), dsi.votes_cast());
    }

    #[test]
    fn vote_state_length_mismatch_is_a_typed_error() {
        let dsi = DsiVolume::<u16>::new(4, 4, planes(2)).unwrap();
        let bytes = dsi.encode_vote_state();
        for bad in [&bytes[..bytes.len() - 1], &bytes[..0], &bytes[..15]] {
            assert!(matches!(
                DsiVolume::<u16>::decode_vote_state(4, 4, planes(2), bad),
                Err(DsiError::InvalidVoteState { .. })
            ));
        }
        // Wrong score width (f32 vs u16) cannot silently decode either.
        assert!(matches!(
            DsiVolume::<f32>::decode_vote_state(4, 4, planes(2), &bytes),
            Err(DsiError::InvalidVoteState { .. })
        ));
        assert!(matches!(
            DsiVolume::<u16>::decode_vote_state(0, 4, planes(2), &bytes),
            Err(DsiError::EmptyVolume { .. })
        ));
    }
}
