//! Semi-dense depth maps extracted from the DSI and the accuracy metrics used
//! by the paper (absolute relative error, AbsRel).

use crate::DsiError;

/// A semi-dense depth map at the virtual camera's resolution.
///
/// Pixels without a depth estimate hold `f64::INFINITY`.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthMap {
    width: usize,
    height: usize,
    depth: Vec<f64>,
    confidence: Vec<f64>,
}

/// Accuracy metrics of a depth map against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DepthMetrics {
    /// Mean absolute relative error `mean(|d - d_gt| / d_gt)` over pixels
    /// where both estimate and ground truth are valid.
    pub abs_rel: f64,
    /// Root-mean-square metric depth error over the same pixels.
    pub rmse: f64,
    /// Number of pixels compared.
    pub compared_pixels: usize,
    /// Number of estimated pixels (semi-dense coverage).
    pub estimated_pixels: usize,
    /// Estimated pixels as a fraction of ground-truth-valid pixels.
    pub completeness: f64,
    /// Fraction of compared pixels with relative error below 10 %.
    pub inlier_ratio_10: f64,
}

impl DepthMap {
    /// Creates an empty (all-invalid) depth map.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::EmptyVolume`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, DsiError> {
        if width == 0 || height == 0 {
            return Err(DsiError::EmptyVolume { width, height });
        }
        Ok(Self {
            width,
            height,
            depth: vec![f64::INFINITY; width * height],
            confidence: vec![0.0; width * height],
        })
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Depth at `(x, y)` (`f64::INFINITY` when not estimated).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    #[inline]
    pub fn depth(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height);
        self.depth[y * self.width + x]
    }

    /// Confidence (DSI score) at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    #[inline]
    pub fn confidence(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height);
        self.confidence[y * self.width + x]
    }

    /// Sets the estimate at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, depth: f64, confidence: f64) {
        assert!(x < self.width && y < self.height);
        self.depth[y * self.width + x] = depth;
        self.confidence[y * self.width + x] = confidence;
    }

    /// Marks `(x, y)` as not estimated.
    #[inline]
    pub fn invalidate(&mut self, x: usize, y: usize) {
        self.set(x, y, f64::INFINITY, 0.0);
    }

    /// Whether `(x, y)` carries a depth estimate.
    #[inline]
    pub fn is_valid(&self, x: usize, y: usize) -> bool {
        self.depth(x, y).is_finite()
    }

    /// Raw row-major depth values.
    pub fn depth_data(&self) -> &[f64] {
        &self.depth
    }

    /// Number of valid (estimated) pixels.
    pub fn valid_count(&self) -> usize {
        self.depth.iter().filter(|d| d.is_finite()).count()
    }

    /// Mean of the valid depths (zero if none).
    pub fn mean_depth(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &d in &self.depth {
            if d.is_finite() {
                sum += d;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Applies a `size × size` median filter to the valid depths (the
    /// depth-map cleanup step of the EMVS scene-structure detection). Pixels
    /// keep their validity; only valid neighbours contribute to the median.
    ///
    /// # Panics
    ///
    /// Panics if `size` is even or zero.
    pub fn median_filtered(&self, size: usize) -> Self {
        assert!(size % 2 == 1 && size > 0, "median filter size must be odd");
        let r = size / 2;
        let mut out = self.clone();
        let mut window: Vec<f64> = Vec::with_capacity(size * size);
        for y in 0..self.height {
            for x in 0..self.width {
                if !self.is_valid(x, y) {
                    continue;
                }
                window.clear();
                for dy in y.saturating_sub(r)..=(y + r).min(self.height - 1) {
                    for dx in x.saturating_sub(r)..=(x + r).min(self.width - 1) {
                        let d = self.depth(dx, dy);
                        if d.is_finite() {
                            window.push(d);
                        }
                    }
                }
                window.sort_by(|a, b| a.partial_cmp(b).expect("depths are finite"));
                let median = window[window.len() / 2];
                out.set(x, y, median, self.confidence(x, y));
            }
        }
        out
    }

    /// Compares against a ground-truth depth image (row-major, invalid pixels
    /// marked non-finite) of the same dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::DimensionMismatch`] when the ground truth has a
    /// different number of pixels.
    pub fn compare_to_ground_truth(&self, ground_truth: &[f64]) -> Result<DepthMetrics, DsiError> {
        if ground_truth.len() != self.depth.len() {
            return Err(DsiError::DimensionMismatch {
                expected: self.depth.len(),
                actual: ground_truth.len(),
            });
        }
        let mut abs_rel_sum = 0.0;
        let mut sq_sum = 0.0;
        let mut compared = 0usize;
        let mut inliers = 0usize;
        let mut gt_valid = 0usize;
        for (est, &gt) in self.depth.iter().zip(ground_truth) {
            if gt.is_finite() && gt > 0.0 {
                gt_valid += 1;
                if est.is_finite() {
                    let rel = (est - gt).abs() / gt;
                    abs_rel_sum += rel;
                    sq_sum += (est - gt) * (est - gt);
                    compared += 1;
                    if rel < 0.10 {
                        inliers += 1;
                    }
                }
            }
        }
        let estimated = self.valid_count();
        Ok(DepthMetrics {
            abs_rel: if compared > 0 {
                abs_rel_sum / compared as f64
            } else {
                0.0
            },
            rmse: if compared > 0 {
                (sq_sum / compared as f64).sqrt()
            } else {
                0.0
            },
            compared_pixels: compared,
            estimated_pixels: estimated,
            completeness: if gt_valid > 0 {
                compared as f64 / gt_valid as f64
            } else {
                0.0
            },
            inlier_ratio_10: if compared > 0 {
                inliers as f64 / compared as f64
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validity() {
        assert!(DepthMap::new(0, 4).is_err());
        let mut dm = DepthMap::new(4, 3).unwrap();
        assert_eq!(dm.valid_count(), 0);
        dm.set(1, 2, 2.5, 10.0);
        assert!(dm.is_valid(1, 2));
        assert_eq!(dm.depth(1, 2), 2.5);
        assert_eq!(dm.confidence(1, 2), 10.0);
        assert_eq!(dm.valid_count(), 1);
        dm.invalidate(1, 2);
        assert!(!dm.is_valid(1, 2));
    }

    #[test]
    fn mean_depth_ignores_invalid() {
        let mut dm = DepthMap::new(3, 1).unwrap();
        dm.set(0, 0, 1.0, 1.0);
        dm.set(1, 0, 3.0, 1.0);
        assert!((dm.mean_depth() - 2.0).abs() < 1e-12);
        assert_eq!(DepthMap::new(2, 2).unwrap().mean_depth(), 0.0);
    }

    #[test]
    fn abs_rel_exact_match_is_zero() {
        let mut dm = DepthMap::new(3, 3).unwrap();
        let gt = vec![2.0; 9];
        for y in 0..3 {
            for x in 0..3 {
                dm.set(x, y, 2.0, 1.0);
            }
        }
        let m = dm.compare_to_ground_truth(&gt).unwrap();
        assert_eq!(m.abs_rel, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.compared_pixels, 9);
        assert_eq!(m.completeness, 1.0);
        assert_eq!(m.inlier_ratio_10, 1.0);
    }

    #[test]
    fn abs_rel_known_error() {
        let mut dm = DepthMap::new(2, 1).unwrap();
        dm.set(0, 0, 2.2, 1.0); // 10% over a GT of 2.0
        dm.set(1, 0, 1.8, 1.0); // 10% under
        let m = dm.compare_to_ground_truth(&[2.0, 2.0]).unwrap();
        assert!((m.abs_rel - 0.10).abs() < 1e-9);
        assert!((m.rmse - 0.2).abs() < 1e-9);
    }

    #[test]
    fn comparison_skips_invalid_pixels_on_either_side() {
        let mut dm = DepthMap::new(3, 1).unwrap();
        dm.set(0, 0, 1.0, 1.0);
        // pixel 1 not estimated, pixel 2 estimated but GT invalid.
        dm.set(2, 0, 5.0, 1.0);
        let gt = vec![1.0, 1.0, f64::INFINITY];
        let m = dm.compare_to_ground_truth(&gt).unwrap();
        assert_eq!(m.compared_pixels, 1);
        assert_eq!(m.estimated_pixels, 2);
        assert!((m.completeness - 0.5).abs() < 1e-12);
        assert_eq!(m.abs_rel, 0.0);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let dm = DepthMap::new(2, 2).unwrap();
        assert!(dm.compare_to_ground_truth(&[1.0; 3]).is_err());
    }

    #[test]
    fn median_filter_removes_spike() {
        let mut dm = DepthMap::new(5, 5).unwrap();
        for y in 0..5 {
            for x in 0..5 {
                dm.set(x, y, 2.0, 1.0);
            }
        }
        dm.set(2, 2, 50.0, 1.0); // outlier spike
        let filtered = dm.median_filtered(3);
        assert!((filtered.depth(2, 2) - 2.0).abs() < 1e-12);
        // Valid pixels unchanged in count.
        assert_eq!(filtered.valid_count(), 25);
    }

    #[test]
    fn median_filter_keeps_invalid_pixels_invalid() {
        let mut dm = DepthMap::new(3, 3).unwrap();
        dm.set(1, 1, 2.0, 1.0);
        let filtered = dm.median_filtered(3);
        assert_eq!(filtered.valid_count(), 1);
        assert!(!filtered.is_valid(0, 0));
    }

    #[test]
    #[should_panic]
    fn median_filter_even_size_panics() {
        let dm = DepthMap::new(3, 3).unwrap();
        let _ = dm.median_filtered(2);
    }
}
