//! Point clouds: the map representation produced after scene-structure
//! detection ("point cloud conversion" and "map updating" in the paper's
//! merging-depth-information stage).

use crate::depthmap::DepthMap;
use crate::DsiError;
use eventor_geom::{CameraIntrinsics, Pose, Vec3};
use std::io::Write;

/// A 3-D point with the DSI confidence that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapPoint {
    /// Position in world coordinates.
    pub position: Vec3,
    /// Ray-density confidence inherited from the DSI.
    pub confidence: f64,
}

/// A world-frame point cloud accumulated over key reference views.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointCloud {
    points: Vec<MapPoint>,
}

impl PointCloud {
    /// Creates an empty point cloud.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts a semi-dense depth map at a virtual camera into world-frame
    /// points.
    ///
    /// `pose` is the camera-to-world pose of the virtual camera; `intrinsics`
    /// its pinhole model.
    pub fn from_depth_map(
        depth_map: &DepthMap,
        intrinsics: &CameraIntrinsics,
        pose: &Pose,
    ) -> Self {
        let mut points = Vec::with_capacity(depth_map.valid_count());
        for y in 0..depth_map.height() {
            for x in 0..depth_map.width() {
                let d = depth_map.depth(x, y);
                if !d.is_finite() {
                    continue;
                }
                let ray = intrinsics.unproject(eventor_geom::Vec2::new(x as f64, y as f64));
                let p_cam = ray * d; // ray has z = 1, so this lands at depth d
                points.push(MapPoint {
                    position: pose.transform(p_cam),
                    confidence: depth_map.confidence(x, y),
                });
            }
        }
        Self { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points.
    pub fn points(&self) -> &[MapPoint] {
        &self.points
    }

    /// Merges another cloud into this one (the global map update `ℳ`).
    pub fn merge(&mut self, other: &PointCloud) {
        self.points.extend_from_slice(&other.points);
    }

    /// Adds a single point.
    pub fn push(&mut self, point: MapPoint) {
        self.points.push(point);
    }

    /// Axis-aligned bounding box `(min, max)` of the points.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let first = self.points.first()?;
        let mut min = first.position;
        let mut max = first.position;
        for p in &self.points {
            min = Vec3::new(
                min.x.min(p.position.x),
                min.y.min(p.position.y),
                min.z.min(p.position.z),
            );
            max = Vec3::new(
                max.x.max(p.position.x),
                max.y.max(p.position.y),
                max.z.max(p.position.z),
            );
        }
        Some((min, max))
    }

    /// Centroid of the points.
    pub fn centroid(&self) -> Option<Vec3> {
        if self.points.is_empty() {
            return None;
        }
        let sum = self
            .points
            .iter()
            .fold(Vec3::ZERO, |acc, p| acc + p.position);
        Some(sum / self.points.len() as f64)
    }

    /// Removes points with fewer than `min_neighbors` other points within
    /// `radius` (radius-outlier removal, the filter the EMVS pipeline applies
    /// before map merging). Quadratic implementation: the clouds produced per
    /// key frame are small (tens of thousands of points).
    pub fn radius_outlier_filtered(&self, radius: f64, min_neighbors: usize) -> Self {
        let r2 = radius * radius;
        let kept = self
            .points
            .iter()
            .filter(|p| {
                let neighbors = self
                    .points
                    .iter()
                    .filter(|q| (q.position - p.position).norm_squared() <= r2)
                    .count();
                // The point itself is always within the radius.
                neighbors > min_neighbors
            })
            .copied()
            .collect();
        Self { points: kept }
    }

    /// Writes the cloud as an ASCII PLY file (positions plus a `quality`
    /// property carrying the confidence).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ply<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "ply")?;
        writeln!(writer, "format ascii 1.0")?;
        writeln!(writer, "element vertex {}", self.points.len())?;
        writeln!(writer, "property float x")?;
        writeln!(writer, "property float y")?;
        writeln!(writer, "property float z")?;
        writeln!(writer, "property float quality")?;
        writeln!(writer, "end_header")?;
        for p in &self.points {
            writeln!(
                writer,
                "{:.6} {:.6} {:.6} {:.3}",
                p.position.x, p.position.y, p.position.z, p.confidence
            )?;
        }
        Ok(())
    }

    /// Mean absolute distance from each point to the closest of a set of
    /// reference plane depths (used by tests to check that reconstructions of
    /// plane scenes land near the true planes). Distances are measured along
    /// Z only.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::EmptyPointCloud`] when the cloud has no points.
    pub fn mean_z_distance_to_planes(&self, plane_depths: &[f64]) -> Result<f64, DsiError> {
        if self.points.is_empty() || plane_depths.is_empty() {
            return Err(DsiError::EmptyPointCloud);
        }
        let total: f64 = self
            .points
            .iter()
            .map(|p| {
                plane_depths
                    .iter()
                    .map(|z| (p.position.z - z).abs())
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        Ok(total / self.points.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_geom::CameraIntrinsics;

    fn intrinsics() -> CameraIntrinsics {
        CameraIntrinsics::new(50.0, 50.0, 20.0, 15.0, 40, 30).unwrap()
    }

    fn flat_depth_map(depth: f64) -> DepthMap {
        let mut dm = DepthMap::new(40, 30).unwrap();
        for y in 0..30 {
            for x in 0..40 {
                dm.set(x, y, depth, 5.0);
            }
        }
        dm
    }

    #[test]
    fn depth_map_conversion_places_points_at_depth() {
        let dm = flat_depth_map(2.0);
        let cloud = PointCloud::from_depth_map(&dm, &intrinsics(), &Pose::identity());
        assert_eq!(cloud.len(), 40 * 30);
        for p in cloud.points() {
            assert!((p.position.z - 2.0).abs() < 1e-9);
            assert_eq!(p.confidence, 5.0);
        }
    }

    #[test]
    fn conversion_respects_camera_pose() {
        let dm = flat_depth_map(1.0);
        let pose = Pose::from_translation(Vec3::new(0.0, 0.0, 5.0));
        let cloud = PointCloud::from_depth_map(&dm, &intrinsics(), &pose);
        for p in cloud.points() {
            assert!((p.position.z - 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_pixels_are_skipped() {
        let mut dm = DepthMap::new(4, 4).unwrap();
        dm.set(0, 0, 1.0, 1.0);
        dm.set(3, 3, 2.0, 1.0);
        let cloud = PointCloud::from_depth_map(&dm, &intrinsics(), &Pose::identity());
        assert_eq!(cloud.len(), 2);
    }

    #[test]
    fn merge_and_bounds_and_centroid() {
        let mut a = PointCloud::new();
        a.push(MapPoint {
            position: Vec3::new(0.0, 0.0, 0.0),
            confidence: 1.0,
        });
        let mut b = PointCloud::new();
        b.push(MapPoint {
            position: Vec3::new(2.0, 2.0, 2.0),
            confidence: 1.0,
        });
        a.merge(&b);
        assert_eq!(a.len(), 2);
        let (min, max) = a.bounds().unwrap();
        assert_eq!(min, Vec3::ZERO);
        assert_eq!(max, Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(a.centroid().unwrap(), Vec3::new(1.0, 1.0, 1.0));
        assert!(PointCloud::new().bounds().is_none());
        assert!(PointCloud::new().centroid().is_none());
    }

    #[test]
    fn radius_outlier_filter_removes_isolated_points() {
        let mut cloud = PointCloud::new();
        // Dense cluster near the origin.
        for i in 0..20 {
            cloud.push(MapPoint {
                position: Vec3::new(i as f64 * 0.01, 0.0, 1.0),
                confidence: 1.0,
            });
        }
        // One far outlier.
        cloud.push(MapPoint {
            position: Vec3::new(10.0, 10.0, 10.0),
            confidence: 1.0,
        });
        let filtered = cloud.radius_outlier_filtered(0.1, 3);
        assert_eq!(filtered.len(), 20);
    }

    #[test]
    fn ply_export_has_header_and_one_line_per_point() {
        let mut cloud = PointCloud::new();
        cloud.push(MapPoint {
            position: Vec3::new(1.0, 2.0, 3.0),
            confidence: 4.0,
        });
        cloud.push(MapPoint {
            position: Vec3::new(-1.0, 0.5, 2.0),
            confidence: 7.0,
        });
        let mut buf = Vec::new();
        cloud.write_ply(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("ply\n"));
        assert!(text.contains("element vertex 2"));
        assert_eq!(text.lines().count(), 8 + 2);
    }

    #[test]
    fn distance_to_planes_metric() {
        let dm = flat_depth_map(2.0);
        let cloud = PointCloud::from_depth_map(&dm, &intrinsics(), &Pose::identity());
        let d = cloud.mean_z_distance_to_planes(&[1.0, 2.0, 3.0]).unwrap();
        assert!(d < 1e-9);
        assert!(PointCloud::new().mean_z_distance_to_planes(&[1.0]).is_err());
    }
}
