//! Error type for the DSI substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by the DSI substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DsiError {
    /// The depth-plane range was invalid.
    InvalidDepthRange {
        /// Requested near limit.
        z_min: f64,
        /// Requested far limit.
        z_max: f64,
        /// Requested number of planes.
        count: usize,
    },
    /// A volume or depth map with zero pixels was requested.
    EmptyVolume {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// Two images/volumes that must match in size did not.
    DimensionMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Provided number of elements.
        actual: usize,
    },
    /// An operation required a non-empty point cloud.
    EmptyPointCloud,
    /// A serialized volume vote state did not match the expected layout.
    InvalidVoteState {
        /// What was wrong with the serialized bytes.
        reason: String,
    },
}

impl fmt::Display for DsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDepthRange {
                z_min,
                z_max,
                count,
            } => write!(
                f,
                "invalid depth plane range [{z_min}, {z_max}] with {count} planes"
            ),
            Self::EmptyVolume { width, height } => {
                write!(f, "volume dimensions {width}x{height} must be nonzero")
            }
            Self::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} elements, got {actual}"
                )
            }
            Self::EmptyPointCloud => write!(f, "operation requires a non-empty point cloud"),
            Self::InvalidVoteState { reason } => {
                write!(f, "invalid serialized vote state: {reason}")
            }
        }
    }
}

impl Error for DsiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        for e in [
            DsiError::InvalidDepthRange {
                z_min: 0.0,
                z_max: 1.0,
                count: 2,
            },
            DsiError::EmptyVolume {
                width: 0,
                height: 1,
            },
            DsiError::DimensionMismatch {
                expected: 4,
                actual: 2,
            },
            DsiError::EmptyPointCloud,
            DsiError::InvalidVoteState {
                reason: "odd".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DsiError>();
    }
}
