//! # eventor-dsi
//!
//! The disparity space image (DSI) substrate of the EMVS space-sweep:
//!
//! * [`DepthPlanes`] — inverse-depth sampling of the viewing volume,
//! * [`DsiVolume`] — the `w × h × N_z` ray-count grid, generic over the voxel
//!   score type (`f32` for the float baseline, `u16` for the quantized
//!   accelerator datapath), with both **bilinear** and **nearest** voting,
//! * [`detect_structure`] — scene-structure detection (confidence map,
//!   adaptive Gaussian threshold, median filtering) producing a semi-dense
//!   [`DepthMap`],
//! * [`DepthMap::compare_to_ground_truth`] — the AbsRel metric reported in
//!   Fig. 4 and Fig. 7a,
//! * [`PointCloud`] — conversion to a world-frame map and PLY export
//!   (Fig. 7b).
//!
//! ## Example
//!
//! ```
//! use eventor_dsi::{DepthPlanes, DsiVolume, DetectionConfig, detect_structure};
//!
//! # fn main() -> Result<(), eventor_dsi::DsiError> {
//! let planes = DepthPlanes::uniform_inverse_depth(1.0, 5.0, 50)?;
//! let mut dsi: DsiVolume<u16> = DsiVolume::new(240, 180, planes)?;
//! for _ in 0..20 {
//!     dsi.vote_nearest(120.0, 90.0, 25, 1.0);
//! }
//! let depth_map = detect_structure(&dsi, &DetectionConfig::default());
//! assert!(depth_map.is_valid(120, 90));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod depthmap;
mod detection;
mod error;
mod planes;
mod pointcloud;
mod volume;

pub use depthmap::{DepthMap, DepthMetrics};
pub use detection::{confidence_map, detect_structure, ConfidenceMap, DetectionConfig};
pub use error::DsiError;
pub use planes::DepthPlanes;
pub use pointcloud::{MapPoint, PointCloud};
pub use volume::{DsiVolume, VoteArena, VoxelScore};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn depth_planes_are_sorted_and_within_range(
            z_min in 0.1..5.0f64,
            span in 0.5..10.0f64,
            count in 2usize..200,
        ) {
            let z_max = z_min + span;
            let planes = DepthPlanes::uniform_inverse_depth(z_min, z_max, count).unwrap();
            prop_assert_eq!(planes.len(), count);
            prop_assert!((planes.z0() - z_min).abs() < 1e-9);
            prop_assert!((planes.depth(count - 1) - z_max).abs() < 1e-9);
            for w in planes.as_slice().windows(2) {
                prop_assert!(w[1] > w[0]);
            }
        }

        #[test]
        fn bilinear_votes_conserve_weight_in_interior(
            x in 1.0..30.0f64,
            y in 1.0..20.0f64,
            plane in 0usize..5,
        ) {
            let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 5).unwrap();
            let mut dsi = DsiVolume::<f32>::new(32, 22, planes).unwrap();
            dsi.vote_bilinear(x, y, plane, 1.0);
            prop_assert!((dsi.total_score() - 1.0).abs() < 1e-5);
        }

        #[test]
        fn nearest_votes_always_deposit_exactly_one(
            x in 0.0..31.4f64,
            y in 0.0..21.4f64,
            plane in 0usize..5,
        ) {
            let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 5).unwrap();
            let mut dsi = DsiVolume::<u16>::new(32, 22, planes).unwrap();
            dsi.vote_nearest(x, y, plane, 1.0);
            prop_assert_eq!(dsi.total_score(), 1.0);
            prop_assert_eq!(dsi.votes_cast(), 1);
        }

        #[test]
        fn nearest_and_bilinear_peak_voxels_agree(
            x in 2.0..28.0f64,
            y in 2.0..18.0f64,
        ) {
            // The voxel receiving the largest bilinear weight is the voxel the
            // nearest-voting scheme selects — the geometric argument behind
            // the paper's approximate-computing substitution.
            let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 3).unwrap();
            let mut nearest = DsiVolume::<f32>::new(32, 22, planes.clone()).unwrap();
            let mut bilinear = DsiVolume::<f32>::new(32, 22, planes).unwrap();
            nearest.vote_nearest(x, y, 1, 1.0);
            bilinear.vote_bilinear(x, y, 1, 1.0);
            // Find argmax voxel of each.
            let find_max = |dsi: &DsiVolume<f32>| {
                let mut best = (0usize, 0usize, f64::NEG_INFINITY);
                for yy in 0..22 {
                    for xx in 0..32 {
                        let s = dsi.score(xx, yy, 1);
                        if s > best.2 {
                            best = (xx, yy, s);
                        }
                    }
                }
                (best.0, best.1)
            };
            // Skip exact ties (point equidistant from several voxels).
            let fx = (x - x.floor() - 0.5).abs();
            let fy = (y - y.floor() - 0.5).abs();
            prop_assume!(fx > 1e-6 && fy > 1e-6);
            prop_assert_eq!(find_max(&nearest), find_max(&bilinear));
        }

        #[test]
        fn abs_rel_is_scale_consistent(
            depth in 0.5..10.0f64,
            error_fraction in 0.0..0.5f64,
        ) {
            let mut dm = DepthMap::new(2, 2).unwrap();
            for y in 0..2 {
                for x in 0..2 {
                    dm.set(x, y, depth * (1.0 + error_fraction), 1.0);
                }
            }
            let gt = vec![depth; 4];
            let m = dm.compare_to_ground_truth(&gt).unwrap();
            prop_assert!((m.abs_rel - error_fraction).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod readback_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn from_scores_round_trips_every_voxel(
            width in 2usize..24,
            height in 2usize..20,
            n_planes in 2usize..8,
            seed in 0u64..1000,
        ) {
            let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, n_planes).unwrap();
            let len = width * height * n_planes;
            // Deterministic pseudo-random scores (no RNG dependency needed).
            let scores: Vec<u16> = (0..len)
                .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 97) as u16)
                .collect();
            let dsi = DsiVolume::<u16>::from_scores(width, height, planes, scores.clone(), 1234).unwrap();
            prop_assert_eq!(dsi.votes_cast(), 1234);
            prop_assert_eq!(dsi.voxel_count(), len);
            for plane in 0..n_planes {
                let stride = width * height;
                prop_assert_eq!(dsi.plane_scores(plane), &scores[plane * stride..(plane + 1) * stride]);
            }
            // Spot-check the (x, y, plane) addressing convention.
            let x = width / 2;
            let y = height / 2;
            let p = n_planes / 2;
            let expected = scores[(p * height + y) * width + x] as f64;
            prop_assert!((dsi.score(x, y, p) - expected).abs() < 1e-12);
        }

        #[test]
        fn from_scores_matches_incremental_nearest_voting(
            votes in prop::collection::vec((0usize..16, 0usize..12, 0usize..4), 1..200),
        ) {
            // Accumulating votes incrementally and reconstructing the volume
            // from the final score array must describe the same DSI — the
            // readback path used by the accelerator co-simulation.
            let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 4).unwrap();
            let mut incremental = DsiVolume::<u16>::new(16, 12, planes.clone()).unwrap();
            for &(x, y, p) in &votes {
                incremental.vote_nearest(x as f64, y as f64, p, 1.0);
            }
            let mut scores = Vec::with_capacity(incremental.voxel_count());
            for p in 0..4 {
                scores.extend_from_slice(incremental.plane_scores(p));
            }
            let rebuilt =
                DsiVolume::<u16>::from_scores(16, 12, planes, scores, incremental.votes_cast()).unwrap();
            prop_assert_eq!(rebuilt.votes_cast(), incremental.votes_cast());
            prop_assert_eq!(rebuilt.total_score(), incremental.total_score());
            let config = DetectionConfig::default();
            let a = detect_structure(&incremental, &config);
            let b = detect_structure(&rebuilt, &config);
            prop_assert_eq!(a.depth_data(), b.depth_data());
        }

        #[test]
        fn from_scores_rejects_wrong_lengths(extra in 1usize..50) {
            let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 3).unwrap();
            let wrong = vec![0u16; 8 * 6 * 3 + extra];
            prop_assert!(DsiVolume::<u16>::from_scores(8, 6, planes, wrong, 0).is_err());
        }
    }
}
