//! Depth-plane sampling for the disparity space image.
//!
//! The space-sweep discretizes the viewing volume of the virtual camera into
//! `N_z` fronto-parallel slices. Following the EMVS reference implementation,
//! the planes are sampled **uniformly in inverse depth** between `z_min` and
//! `z_max`, which distributes voxels evenly in disparity (image-space
//! resolution) rather than metric depth.

use crate::DsiError;

/// The set of depth planes `{Z_i}` of a DSI.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthPlanes {
    depths: Vec<f64>,
    z_min: f64,
    z_max: f64,
}

impl DepthPlanes {
    /// Samples `count` planes uniformly in inverse depth over `[z_min, z_max]`.
    ///
    /// The first plane (`index 0`) is the closest one (`z_min`) and serves as
    /// the canonical plane `Z0` of the back-projection.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::InvalidDepthRange`] when the range is not
    /// `0 < z_min < z_max` or `count < 2`.
    pub fn uniform_inverse_depth(z_min: f64, z_max: f64, count: usize) -> Result<Self, DsiError> {
        if !(z_min.is_finite() && z_max.is_finite()) || z_min <= 0.0 || z_max <= z_min || count < 2
        {
            return Err(DsiError::InvalidDepthRange {
                z_min,
                z_max,
                count,
            });
        }
        let inv_min = 1.0 / z_max;
        let inv_max = 1.0 / z_min;
        let depths = (0..count)
            .map(|i| {
                let t = i as f64 / (count - 1) as f64;
                // t = 0 -> inv_max (closest), t = 1 -> inv_min (farthest).
                1.0 / (inv_max + t * (inv_min - inv_max))
            })
            .collect();
        Ok(Self {
            depths,
            z_min,
            z_max,
        })
    }

    /// Samples `count` planes uniformly in metric depth (used by ablations).
    ///
    /// # Errors
    ///
    /// Same contract as [`DepthPlanes::uniform_inverse_depth`].
    pub fn uniform_depth(z_min: f64, z_max: f64, count: usize) -> Result<Self, DsiError> {
        if !(z_min.is_finite() && z_max.is_finite()) || z_min <= 0.0 || z_max <= z_min || count < 2
        {
            return Err(DsiError::InvalidDepthRange {
                z_min,
                z_max,
                count,
            });
        }
        let depths = (0..count)
            .map(|i| {
                let t = i as f64 / (count - 1) as f64;
                z_min + t * (z_max - z_min)
            })
            .collect();
        Ok(Self {
            depths,
            z_min,
            z_max,
        })
    }

    /// Number of planes.
    pub fn len(&self) -> usize {
        self.depths.len()
    }

    /// Whether there are no planes (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.depths.is_empty()
    }

    /// The depth of plane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn depth(&self, i: usize) -> f64 {
        self.depths[i]
    }

    /// All depths, closest first.
    pub fn as_slice(&self) -> &[f64] {
        &self.depths
    }

    /// The closest plane (canonical plane `Z0`).
    pub fn z0(&self) -> f64 {
        self.depths[0]
    }

    /// The configured near limit.
    pub fn z_min(&self) -> f64 {
        self.z_min
    }

    /// The configured far limit.
    pub fn z_max(&self) -> f64 {
        self.z_max
    }

    /// Index of the plane closest to a metric depth (in inverse-depth space,
    /// matching how the DSI is interpolated).
    pub fn nearest_plane(&self, depth: f64) -> usize {
        if depth <= 0.0 || !depth.is_finite() {
            return self.depths.len() - 1;
        }
        let inv = 1.0 / depth;
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for (i, &z) in self.depths.iter().enumerate() {
            let err = (1.0 / z - inv).abs();
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_depth_sampling_endpoints_and_ordering() {
        let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 7).unwrap();
        assert_eq!(planes.len(), 7);
        assert!((planes.z0() - 1.0).abs() < 1e-12);
        assert!((planes.depth(6) - 4.0).abs() < 1e-12);
        // Strictly increasing depths.
        for w in planes.as_slice().windows(2) {
            assert!(w[1] > w[0]);
        }
        // Uniform in inverse depth: 1/z spacing constant.
        let inv: Vec<f64> = planes.as_slice().iter().map(|z| 1.0 / z).collect();
        let d0 = inv[0] - inv[1];
        for w in inv.windows(2) {
            assert!((w[0] - w[1] - d0).abs() < 1e-12);
        }
    }

    #[test]
    fn metric_sampling_is_linear() {
        let planes = DepthPlanes::uniform_depth(1.0, 3.0, 5).unwrap();
        assert_eq!(planes.as_slice(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(planes.z_min(), 1.0);
        assert_eq!(planes.z_max(), 3.0);
    }

    #[test]
    fn invalid_ranges_rejected() {
        assert!(DepthPlanes::uniform_inverse_depth(0.0, 1.0, 10).is_err());
        assert!(DepthPlanes::uniform_inverse_depth(2.0, 1.0, 10).is_err());
        assert!(DepthPlanes::uniform_inverse_depth(1.0, 2.0, 1).is_err());
        assert!(DepthPlanes::uniform_inverse_depth(f64::NAN, 2.0, 10).is_err());
    }

    #[test]
    fn nearest_plane_lookup() {
        let planes = DepthPlanes::uniform_inverse_depth(1.0, 4.0, 10).unwrap();
        assert_eq!(planes.nearest_plane(1.0), 0);
        assert_eq!(planes.nearest_plane(4.0), 9);
        assert_eq!(planes.nearest_plane(100.0), 9);
        assert_eq!(planes.nearest_plane(f64::INFINITY), 9);
        let mid = planes.nearest_plane(planes.depth(5));
        assert_eq!(mid, 5);
    }
}
