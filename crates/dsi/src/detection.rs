//! Scene structure detection (`𝒟` in the paper): extracting a semi-dense
//! depth map from the ray-density DSI.
//!
//! Following the EMVS reference algorithm, the detector
//!
//! 1. collapses the DSI to a per-pixel *confidence map* (maximum ray count
//!    along depth) and the corresponding best depth plane,
//! 2. keeps only pixels whose confidence exceeds an *adaptive threshold*
//!    (a Gaussian-blurred copy of the confidence map plus a constant offset) —
//!    the regions where many back-projected rays nearly intersect,
//! 3. median-filters the resulting semi-dense depth map to remove isolated
//!    outliers.

use crate::depthmap::DepthMap;
use crate::volume::{DsiVolume, VoxelScore};

/// Parameters of the scene-structure detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionConfig {
    /// Standard deviation (in pixels) of the Gaussian blur applied to the
    /// confidence map when building the adaptive threshold surface.
    pub adaptive_sigma: f64,
    /// Constant added to the blurred confidence before thresholding
    /// (suppresses low-evidence regions).
    pub adaptive_offset: f64,
    /// Absolute minimum confidence for a pixel to be considered at all.
    pub min_confidence: f64,
    /// Minimum ratio between the per-pixel peak score and the per-pixel mean
    /// score along depth. Disabled at the default of 1.0: the adaptive offset
    /// is the primary filter, but the knob is kept for ablations (a high
    /// ratio keeps only isolated spikes, which favours sparse noise).
    pub min_peak_ratio: f64,
    /// Refine the detected depth below the plane spacing by fitting a
    /// parabola (in inverse depth) through the peak plane and its two
    /// neighbours.
    pub subplane_refinement: bool,
    /// Size of the square median filter applied to the depth map (odd; 1
    /// disables filtering).
    pub median_filter_size: usize,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        Self {
            adaptive_sigma: 4.0,
            adaptive_offset: 8.0,
            min_confidence: 5.0,
            min_peak_ratio: 1.0,
            subplane_refinement: true,
            median_filter_size: 5,
        }
    }
}

/// A 1-D Gaussian kernel of the given sigma, truncated at three sigmas.
fn gaussian_kernel(sigma: f64) -> Vec<f64> {
    let radius = (3.0 * sigma).ceil().max(1.0) as usize;
    let mut kernel = Vec::with_capacity(2 * radius + 1);
    let denom = 2.0 * sigma * sigma;
    for i in 0..=(2 * radius) {
        let d = i as f64 - radius as f64;
        kernel.push((-d * d / denom).exp());
    }
    let sum: f64 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    kernel
}

/// Separable Gaussian blur of a row-major image.
fn gaussian_blur(data: &[f64], width: usize, height: usize, sigma: f64) -> Vec<f64> {
    if sigma <= 0.0 {
        return data.to_vec();
    }
    let kernel = gaussian_kernel(sigma);
    let radius = kernel.len() / 2;
    let mut tmp = vec![0.0; data.len()];
    let mut out = vec![0.0; data.len()];
    // Horizontal pass (clamped borders).
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (k, &w) in kernel.iter().enumerate() {
                let xi = (x as isize + k as isize - radius as isize).clamp(0, width as isize - 1)
                    as usize;
                acc += w * data[y * width + xi];
            }
            tmp[y * width + x] = acc;
        }
    }
    // Vertical pass.
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (k, &w) in kernel.iter().enumerate() {
                let yi = (y as isize + k as isize - radius as isize).clamp(0, height as isize - 1)
                    as usize;
                acc += w * tmp[yi * width + x];
            }
            out[y * width + x] = acc;
        }
    }
    out
}

/// The per-pixel maximum-score projection of a DSI: confidence map plus the
/// index of the best depth plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceMap {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Row-major maximum score per pixel.
    pub confidence: Vec<f64>,
    /// Row-major mean score along depth per pixel.
    pub mean_score: Vec<f64>,
    /// Row-major index of the best depth plane per pixel.
    pub best_plane: Vec<usize>,
}

/// Collapses a DSI along the depth axis into a [`ConfidenceMap`].
pub fn confidence_map<S: VoxelScore>(dsi: &DsiVolume<S>) -> ConfidenceMap {
    let width = dsi.width();
    let height = dsi.height();
    let n_planes = dsi.num_planes() as f64;
    let mut confidence = vec![0.0; width * height];
    let mut mean_score = vec![0.0; width * height];
    let mut best_plane = vec![0usize; width * height];
    for y in 0..height {
        for x in 0..width {
            let (plane, score) = dsi.best_plane(x, y);
            let mut sum = 0.0;
            for p in 0..dsi.num_planes() {
                sum += dsi.score(x, y, p);
            }
            confidence[y * width + x] = score;
            mean_score[y * width + x] = sum / n_planes;
            best_plane[y * width + x] = plane;
        }
    }
    ConfidenceMap {
        width,
        height,
        confidence,
        mean_score,
        best_plane,
    }
}

/// Parabolic sub-plane refinement of the peak position, performed in inverse
/// depth (the domain in which the planes are uniformly spaced).
fn refine_depth<S: VoxelScore>(dsi: &DsiVolume<S>, x: usize, y: usize, plane: usize) -> f64 {
    let n = dsi.num_planes();
    if plane == 0 || plane + 1 >= n {
        return dsi.planes().depth(plane);
    }
    let s_prev = dsi.score(x, y, plane - 1);
    let s_peak = dsi.score(x, y, plane);
    let s_next = dsi.score(x, y, plane + 1);
    let denom = s_prev - 2.0 * s_peak + s_next;
    if denom.abs() < 1e-9 {
        return dsi.planes().depth(plane);
    }
    // Vertex offset of the parabola through the three samples, in plane units.
    let delta = (0.5 * (s_prev - s_next) / denom).clamp(-0.5, 0.5);
    let inv_here = 1.0 / dsi.planes().depth(plane);
    let inv_other = if delta >= 0.0 {
        1.0 / dsi.planes().depth(plane + 1)
    } else {
        1.0 / dsi.planes().depth(plane - 1)
    };
    let inv = inv_here + delta.abs() * (inv_other - inv_here);
    1.0 / inv
}

/// Runs the full scene-structure detection on a DSI, producing a semi-dense
/// depth map at the virtual camera.
pub fn detect_structure<S: VoxelScore>(dsi: &DsiVolume<S>, config: &DetectionConfig) -> DepthMap {
    let cmap = confidence_map(dsi);
    let blurred = gaussian_blur(
        &cmap.confidence,
        cmap.width,
        cmap.height,
        config.adaptive_sigma,
    );

    let mut depth_map = DepthMap::new(cmap.width, cmap.height).expect("dsi dimensions are nonzero");
    for y in 0..cmap.height {
        for x in 0..cmap.width {
            let idx = y * cmap.width + x;
            let c = cmap.confidence[idx];
            let threshold = blurred[idx] + config.adaptive_offset;
            let peak_ratio = if cmap.mean_score[idx] > 0.0 {
                c / cmap.mean_score[idx]
            } else {
                f64::INFINITY
            };
            if c >= config.min_confidence && c > threshold && peak_ratio >= config.min_peak_ratio {
                let plane = cmap.best_plane[idx];
                let depth = if config.subplane_refinement {
                    refine_depth(dsi, x, y, plane)
                } else {
                    dsi.planes().depth(plane)
                };
                depth_map.set(x, y, depth, c);
            }
        }
    }
    if config.median_filter_size > 1 {
        depth_map.median_filtered(config.median_filter_size)
    } else {
        depth_map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planes::DepthPlanes;

    fn planes() -> DepthPlanes {
        DepthPlanes::uniform_inverse_depth(1.0, 4.0, 10).unwrap()
    }

    /// Builds a DSI where a thin horizontal line of pixels has strong votes at
    /// one plane (the shape a textured edge produces) and the rest of the
    /// volume holds weak uniform noise.
    fn synthetic_dsi(signal_plane: usize, signal_votes: u32) -> DsiVolume<f32> {
        let mut dsi = DsiVolume::<f32>::new(40, 30, planes()).unwrap();
        // Weak background: one vote per pixel spread over random-ish planes.
        for y in 0..30 {
            for x in 0..40 {
                dsi.vote_nearest(x as f64, y as f64, (x + y) % 10, 1.0);
            }
        }
        // Strong signal line at y = 15.
        for x in 10..30 {
            for _ in 0..signal_votes {
                dsi.vote_nearest(x as f64, 15.0, signal_plane, 1.0);
            }
        }
        dsi
    }

    #[test]
    fn gaussian_kernel_normalised_and_symmetric() {
        let k = gaussian_kernel(2.0);
        let sum: f64 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(k.len() % 2, 1);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn blur_preserves_constant_images() {
        let data = vec![3.0; 20 * 10];
        let out = gaussian_blur(&data, 20, 10, 2.5);
        for v in out {
            assert!((v - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn blur_with_zero_sigma_is_identity() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(gaussian_blur(&data, 10, 5, 0.0), data);
    }

    #[test]
    fn confidence_map_finds_signal_plane() {
        let dsi = synthetic_dsi(3, 8);
        let cmap = confidence_map(&dsi);
        let idx = 15 * 40 + 20; // on the signal line
        assert_eq!(cmap.best_plane[idx], 3);
        assert!(cmap.confidence[idx] >= 8.0);
    }

    #[test]
    fn detection_recovers_signal_region_depth() {
        let dsi = synthetic_dsi(4, 30);
        let depth_map = detect_structure(&dsi, &DetectionConfig::default());
        // The detected pixels should predominantly carry the depth of plane 4.
        let expected_depth = dsi.planes().depth(4);
        let mut on_line = 0;
        let mut correct = 0;
        for x in 11..29 {
            if depth_map.is_valid(x, 15) {
                on_line += 1;
                if (depth_map.depth(x, 15) - expected_depth).abs() / expected_depth < 0.05 {
                    correct += 1;
                }
            }
        }
        assert!(
            on_line > 10,
            "too few detections on the signal line: {on_line}"
        );
        assert!(correct as f64 >= 0.9 * on_line as f64);
        // Background (far from the signal) should be mostly rejected.
        let mut false_positives = 0;
        for y in 0..8 {
            for x in 0..10 {
                if depth_map.is_valid(x, y) {
                    false_positives += 1;
                }
            }
        }
        assert!(
            false_positives < 10,
            "too many background detections: {false_positives}"
        );
    }

    #[test]
    fn empty_dsi_detects_nothing() {
        let dsi = DsiVolume::<u16>::new(20, 20, planes()).unwrap();
        let depth_map = detect_structure(&dsi, &DetectionConfig::default());
        assert_eq!(depth_map.valid_count(), 0);
    }

    #[test]
    fn min_confidence_suppresses_weak_evidence() {
        let mut dsi = DsiVolume::<u16>::new(20, 20, planes()).unwrap();
        dsi.vote_nearest(10.0, 10.0, 2, 1.0);
        let config = DetectionConfig {
            min_confidence: 3.0,
            ..Default::default()
        };
        let depth_map = detect_structure(&dsi, &config);
        assert_eq!(depth_map.valid_count(), 0);
        // With the threshold lowered the single vote becomes a detection.
        let config = DetectionConfig {
            min_confidence: 0.5,
            adaptive_offset: 0.0,
            median_filter_size: 1,
            ..Default::default()
        };
        let depth_map = detect_structure(&dsi, &config);
        assert!(depth_map.is_valid(10, 10));
    }

    #[test]
    fn detection_works_on_quantized_scores() {
        // Same scenario as the f32 test but with u16 scores.
        let mut dsi = DsiVolume::<u16>::new(40, 30, planes()).unwrap();
        for x in 10..30 {
            for _ in 0..30 {
                dsi.vote_nearest(x as f64, 15.0, 6, 1.0);
            }
        }
        let depth_map = detect_structure(&dsi, &DetectionConfig::default());
        assert!(depth_map.valid_count() > 10);
        let d = depth_map.depth(20, 15);
        let expected = dsi.planes().depth(6);
        assert!((d - expected).abs() / expected < 0.05, "{d} vs {expected}");
    }
}
