//! # eventor-scenarios
//!
//! The versioned scenario corpus of the Eventor reproduction: a library of
//! parameterized synthetic worlds — trajectory shapes (orbit, spiral, dolly,
//! shake, slide), sensor degradations (hot pixels, event bursts, background
//! clutter, dropout windows) and depth structures (sparse, dense,
//! multi-plane) — each deterministic in a single `u64` seed.
//!
//! The corpus turns scenario diversity into **data**:
//!
//! * every test, bench and example sources its scenes from here instead of
//!   synthesizing private copies,
//! * each scenario has a committed **golden digest** (an FNV-1a 64 hash of
//!   the quantized-nearest reconstruction's depth maps, [`digest_output`]),
//!   so a bit-identity regression surfaces as a *named scenario failure* in
//!   CI rather than an unexplained test diff,
//! * a recorded run replays bit-identically through the `eventor-evtr/1`
//!   container (`eventor_events::write_evtr` / `read_evtr`).
//!
//! ## Example
//!
//! ```
//! use eventor_scenarios::{corpus, find, BackendKind, Scenario};
//!
//! # fn main() -> Result<(), eventor_scenarios::ScenarioError> {
//! assert!(corpus().len() >= 10);
//! let scenario = find("shake_closeup").expect("corpus scenario");
//! let world = scenario.build(scenario.default_seed())?;
//! assert!(!world.events.is_empty());
//! assert_eq!(world.trajectory.len() > 2, true);
//! // `BackendKind::ALL` names every execution path a world can run through.
//! assert!(BackendKind::ALL.len() >= 4);
//! # Ok(())
//! # }
//! ```
//!
//! The catalog, the digest workflow and the `.evtr` format are documented in
//! `docs/SCENARIOS.md`; `eventor-cli` exposes the corpus on the command line
//! (`list`, `generate`, `replay`, `check`).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod fuzz;
mod golden;
pub mod invariants;
mod noise;
mod runner;
mod shrink;
mod worlds;

pub use error::ScenarioError;
pub use fuzz::{
    NoiseSpec, SceneKind, TrajectoryKind, WorldSpec, FUZZWORLD_HEADER, MAX_NOISE_STAGES,
    MAX_PLANES, MAX_SAMPLES, MIN_EVENT_CAP, MIN_PLANES, MIN_SAMPLES,
};
pub use golden::{golden_digest, GOLDEN_DIGESTS};
pub use invariants::{check_invariant, Invariant, Violation, F1_MAX_DIFF_FRACTION};
pub use noise::{apply_noise, BurstNoise, DropoutNoise, NoiseStage};
pub use runner::{
    builder_for_profile, digest_output, digest_world, run_world, serve_worlds, session_for_profile,
    BackendKind,
};
pub use shrink::{minimize_spec, run_fuzz, FuzzOptions, FuzzReport, WorldReport};
pub use worlds::{corpus, find, heterogeneous_pool, CorpusScenario};

use eventor_emvs::EmvsConfig;
use eventor_events::EventStream;
use eventor_geom::{CameraModel, Trajectory};

/// A fully materialized scenario: everything a reconstruction session needs.
///
/// Produced by [`Scenario::build`]; deterministic in the `(scenario, seed)`
/// pair down to the last bit, so two builds of the same pair always hash to
/// the same digest.
#[derive(Debug, Clone)]
pub struct ScenarioWorld {
    /// Name of the scenario that built this world.
    pub name: String,
    /// The seed the world was built from.
    pub seed: u64,
    /// Camera model the events were simulated with.
    pub camera: CameraModel,
    /// Ground-truth camera trajectory (the poses fed to the session).
    pub trajectory: Trajectory,
    /// The simulated (and possibly degraded) event stream.
    pub events: EventStream,
    /// Reconstruction configuration matched to the world's depth structure.
    pub config: EmvsConfig,
}

impl ScenarioWorld {
    /// A copy of this world whose stream is truncated to at most
    /// `max_events` events (used by benches to equalize workload sizes).
    pub fn truncated(&self, max_events: usize) -> Self {
        let events: EventStream = self
            .events
            .as_slice()
            .iter()
            .take(max_events)
            .copied()
            .collect();
        Self {
            events,
            ..self.clone()
        }
    }
}

/// A named, seeded, parameterized synthetic world.
///
/// Implementations must be **deterministic**: the same seed must yield a
/// bit-identical [`ScenarioWorld`] on every build, on every host. All
/// randomness must derive from the seed (splitmix-style hashing; no
/// `std::time`, no global RNG state).
pub trait Scenario {
    /// Unique scenario name (`snake_case`; the CLI addresses scenarios by
    /// this name).
    fn name(&self) -> &'static str;

    /// One-line human description for the catalog.
    fn description(&self) -> &'static str;

    /// Coarse facets (`trajectory:*`, `noise:*`, `depth:*`) for filtering.
    fn tags(&self) -> &'static [&'static str];

    /// The seed the golden digest is recorded at.
    fn default_seed(&self) -> u64;

    /// Materializes the world for `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the underlying simulator rejects the
    /// generated configuration (cannot happen for the built-in corpus).
    fn build(&self, seed: u64) -> Result<ScenarioWorld, ScenarioError>;
}

/// Deterministic seed mixer (splitmix64 finalizer) used to derive per-stage
/// sub-seeds from a scenario seed without correlation between stages.
pub(crate) fn mix_seed(seed: u64, stage: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stage.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_tagged() {
        let mut names = std::collections::HashSet::new();
        for s in corpus() {
            assert!(names.insert(s.name()), "duplicate scenario {}", s.name());
            assert!(!s.description().is_empty());
            let tags = s.tags();
            assert!(
                tags.iter().any(|t| t.starts_with("trajectory:")),
                "{} missing trajectory tag",
                s.name()
            );
            assert!(
                tags.iter().any(|t| t.starts_with("depth:")),
                "{} missing depth tag",
                s.name()
            );
        }
        assert!(names.len() >= 10, "corpus has only {} worlds", names.len());
    }

    #[test]
    fn mix_seed_separates_stages() {
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
        assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
    }
}
