//! Auto-minimization of failing fuzz worlds, and the fuzz campaign driver
//! that feeds it.
//!
//! When an invariant check fails on a generated world, the raw
//! [`WorldSpec`] is rarely a good regression: it carries hundreds of
//! trajectory samples, thousands of events and a stack of noise stages that
//! have nothing to do with the bug. [`minimize_spec`] shrinks the spec
//! **along the generator's own axes** — drop noise stages, then binary-search
//! each numeric axis down to its smallest still-failing value — so the
//! committed regression is the smallest world of the same shape that still
//! reproduces the failure.
//!
//! Shrinking assumes the failure is *monotone enough*: if a world fails, a
//! larger world of the same shape usually fails too. Non-monotone failures
//! still minimize correctly (the predicate is re-run at every probe); they
//! just may not reach the global minimum, which is the standard
//! delta-debugging trade-off.

use crate::invariants::{check_invariant, Invariant, Violation};
use crate::runner::{digest_world, BackendKind};
use crate::{ScenarioError, WorldSpec, MIN_EVENT_CAP, MIN_PLANES, MIN_SAMPLES};

/// Upper bound on full shrink passes; each pass re-walks every axis, and the
/// loop stops early at the first pass that changes nothing.
const MAX_PASSES: usize = 4;

/// Shrinks `spec` to a smaller spec that still satisfies `fails`.
///
/// `fails` must return `true` for the input spec (the caller observed the
/// failure there); if it does not, the input is returned unchanged. Probes
/// that error inside `fails` should return `false` — an unbuildable world is
/// not a reproduction.
///
/// The shrink order mirrors the generator grammar:
///
/// 1. **noise stages** — drop each stage (last first) if the failure
///    persists without it,
/// 2. **samples**, **event_cap**, **planes** — binary search the smallest
///    still-failing value down to the generator floors ([`MIN_SAMPLES`],
///    [`MIN_EVENT_CAP`], [`MIN_PLANES`]),
///
/// repeated to a fixpoint (bounded number of passes).
pub fn minimize_spec(spec: &WorldSpec, fails: &mut dyn FnMut(&WorldSpec) -> bool) -> WorldSpec {
    let mut current = spec.clone();
    current.golden = None; // any pinned digest belongs to the unshrunk world
    if !fails(&current) {
        return current;
    }
    for _ in 0..MAX_PASSES {
        let before = current.clone();

        // Axis 1: noise stages, dropped one at a time from the back so
        // indices of the stages not yet probed stay stable.
        let mut i = current.noise.len();
        while i > 0 {
            i -= 1;
            let mut probe = current.clone();
            probe.noise.remove(i);
            if fails(&probe) {
                current = probe;
            }
        }

        // Axes 2-4: each numeric axis shrinks independently via binary
        // search for the smallest still-failing value.
        current = shrink_axis(current, fails, MIN_SAMPLES, |s| &mut s.samples);
        current = shrink_axis(current, fails, MIN_EVENT_CAP, |s| &mut s.event_cap);
        current = shrink_axis(current, fails, MIN_PLANES, |s| &mut s.planes);

        if current == before {
            break;
        }
    }
    current
}

/// Binary-searches one numeric axis of `spec` down to the smallest value
/// `>= floor` for which `fails` still holds, leaving other axes untouched.
fn shrink_axis(
    spec: WorldSpec,
    fails: &mut dyn FnMut(&WorldSpec) -> bool,
    floor: usize,
    axis: impl Fn(&mut WorldSpec) -> &mut usize,
) -> WorldSpec {
    let original = *axis(&mut spec.clone());
    if original <= floor {
        return spec;
    }
    let probe_at = |value: usize, fails: &mut dyn FnMut(&WorldSpec) -> bool| {
        let mut probe = spec.clone();
        *axis(&mut probe) = value;
        fails(&probe).then_some(probe)
    };
    // Invariant of the search: `hi` fails (starts at the observed failure),
    // values below `lo` are known-good or unprobed floors.
    let (mut lo, mut hi) = (floor, original);
    let mut best: Option<WorldSpec> = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match probe_at(mid, fails) {
            Some(probe) => {
                hi = mid;
                best = Some(probe);
            }
            None => lo = mid + 1,
        }
    }
    best.unwrap_or(spec)
}

/// What a fuzz campaign checks per generated world.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Backends the per-backend invariants (F.1-F.3) run on.
    pub backends: Vec<BackendKind>,
    /// The invariants to enforce.
    pub invariants: Vec<Invariant>,
    /// Hard cap applied to every generated spec's `event_cap` (bounds
    /// campaign cost; `None` keeps the generated budgets).
    pub max_events: Option<usize>,
    /// Whether to auto-minimize the first violation of each world.
    pub minimize: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            backends: vec![BackendKind::Software],
            invariants: Invariant::ALL.to_vec(),
            max_events: None,
            minimize: true,
        }
    }
}

/// Outcome of one generated world within a campaign.
#[derive(Debug, Clone)]
pub struct WorldReport {
    /// The generated (pre-minimization) spec.
    pub spec: WorldSpec,
    /// Software-backend digest of the world (its replay pin).
    pub digest: u64,
    /// Every violation caught on this world.
    pub violations: Vec<Violation>,
    /// The minimized reproduction of the first violation, when minimization
    /// ran and the failure survived shrinking.
    pub minimized: Option<WorldSpec>,
}

/// Machine-readable result of a whole fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Campaign seed.
    pub seed: u64,
    /// Number of worlds generated (world `i` is `WorldSpec::generate(seed, i)`).
    pub count: usize,
    /// Per-world outcomes, in generation order.
    pub worlds: Vec<WorldReport>,
}

impl FuzzReport {
    /// Total violations across the campaign.
    pub fn violation_count(&self) -> usize {
        self.worlds.iter().map(|w| w.violations.len()).sum()
    }

    /// Whether every invariant held on every world.
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }
}

/// Runs a fuzz campaign: generates `count` worlds from `seed`, checks every
/// requested invariant on each, and auto-minimizes caught violations.
///
/// Deterministic in `(seed, count, options)` — two invocations produce the
/// same report, which is what makes `eventor-cli fuzz` bit-reproducible.
///
/// # Errors
///
/// Propagates worlds that fail to *run* ([`ScenarioError`]); a caught
/// violation is a report entry, not an error.
pub fn run_fuzz(
    seed: u64,
    count: usize,
    options: &FuzzOptions,
) -> Result<FuzzReport, ScenarioError> {
    let mut worlds = Vec::with_capacity(count);
    for index in 0..count as u64 {
        let mut spec = WorldSpec::generate(seed, index);
        if let Some(cap) = options.max_events {
            spec.event_cap = spec.event_cap.min(cap.max(MIN_EVENT_CAP));
        }
        worlds.push(check_world(spec, options)?);
    }
    Ok(FuzzReport {
        seed,
        count,
        worlds,
    })
}

/// Checks one spec against the requested invariant matrix; minimizes the
/// first violation when asked to.
fn check_world(spec: WorldSpec, options: &FuzzOptions) -> Result<WorldReport, ScenarioError> {
    let world = spec.build()?;
    let digest = digest_world(&world, BackendKind::Software)?;
    let mut violations = Vec::new();
    let mut first_failure: Option<(Invariant, BackendKind)> = None;
    for &invariant in &options.invariants {
        // F.4/F.5 sweep their own execution paths; running them once per
        // requested backend would only repeat identical work.
        let backends: &[BackendKind] = match invariant {
            Invariant::LoadShape | Invariant::BackendAgreement => &[BackendKind::Software],
            _ => &options.backends,
        };
        for &backend in backends {
            if let Some(v) = check_invariant(&world, invariant, backend)? {
                if first_failure.is_none() {
                    first_failure = Some((invariant, backend));
                }
                violations.push(v);
            }
        }
    }
    let minimized = match first_failure {
        Some((invariant, backend)) if options.minimize => {
            let mut fails = |probe: &WorldSpec| -> bool {
                probe
                    .build()
                    .ok()
                    .and_then(|w| check_invariant(&w, invariant, backend).ok())
                    .flatten()
                    .is_some()
            };
            let mut min = minimize_spec(&spec, &mut fails);
            // Pin the shrunk world's replay digest when it still runs; a
            // committed regression needs one for `eventor-cli check`.
            min.golden = min
                .build()
                .ok()
                .and_then(|w| digest_world(&w, BackendKind::Software).ok());
            Some(min)
        }
        _ => None,
    };
    Ok(WorldReport {
        spec,
        digest,
        violations,
        minimized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_reaches_floors_on_an_always_failing_predicate() {
        let mut spec = WorldSpec::generate(77, 0);
        spec.samples = 96;
        spec.event_cap = 16_000;
        spec.planes = 64;
        let min = minimize_spec(&spec, &mut |_| true);
        assert_eq!(min.samples, MIN_SAMPLES);
        assert_eq!(min.event_cap, MIN_EVENT_CAP);
        assert_eq!(min.planes, MIN_PLANES);
        assert!(min.noise.is_empty());
        assert_eq!(min.golden, None);
    }

    #[test]
    fn minimize_respects_a_threshold_predicate() {
        let mut spec = WorldSpec::generate(78, 0);
        spec.samples = 96;
        spec.event_cap = 16_000;
        spec.planes = 64;
        let mut fails = |s: &WorldSpec| s.samples >= 40 && s.event_cap >= 1_000 && s.planes >= 17;
        let min = minimize_spec(&spec, &mut fails);
        assert_eq!(min.samples, 40);
        assert_eq!(min.event_cap, 1_000);
        assert_eq!(min.planes, 17);
        assert!(fails(&min));
    }

    #[test]
    fn minimize_returns_input_when_failure_does_not_reproduce() {
        let spec = WorldSpec::generate(79, 0);
        let min = minimize_spec(&spec, &mut |_| false);
        assert_eq!(min.samples, spec.samples);
        assert_eq!(min.event_cap, spec.event_cap);
        assert_eq!(min.planes, spec.planes);
    }

    #[test]
    fn clean_fuzz_campaign_is_reproducible() {
        let options = FuzzOptions {
            backends: vec![BackendKind::Software],
            invariants: vec![Invariant::PolarityRelabel],
            max_events: Some(1_200),
            minimize: true,
        };
        let a = run_fuzz(0xFA22, 2, &options).expect("campaign runs");
        let b = run_fuzz(0xFA22, 2, &options).expect("campaign runs");
        assert!(a.is_clean(), "unexpected violations: {:?}", a.worlds);
        assert_eq!(a.count, 2);
        assert_eq!(a.worlds.len(), 2);
        for (x, y) in a.worlds.iter().zip(&b.worlds) {
            assert_eq!(x.digest, y.digest);
            assert_eq!(x.spec, y.spec);
        }
    }
}
