//! Runs a [`ScenarioWorld`] through any execution path — software, sharded,
//! co-simulated, or the full serving tier — and reduces the reconstruction
//! to a `u64` FNV digest over its depth maps.
//!
//! The digest is the regression currency of the corpus: software, sharded
//! and served runs of the same world must produce the **same digest**
//! (bit-identity of the quantized-nearest datapath, `docs/ARCHITECTURE.md`
//! §6/§7), and the committed table in [`crate::GOLDEN_DIGESTS`] pins each
//! scenario's digest so any drift fails CI by name.

use crate::{ScenarioError, ScenarioWorld};
use eventor_core::{EventorOptions, EventorSession, ParallelConfig, SessionOutput};
use eventor_emvs::EmvsError;
use eventor_events::Fnv64;
use eventor_hwsim::AcceleratorConfig;
use eventor_serve::{ServeConfig, ServeEngine, ServeError};

/// Number of shards the sharded backend runs with (fixed so digests are
/// reproducible across hosts; shard count must never affect output bits
/// anyway, and the equivalence suites hold that line).
pub const SHARDS: usize = 4;

/// The execution paths a scenario can run through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// In-process software session on the accelerator datapath.
    Software,
    /// Parallel sharded voting engine.
    Sharded,
    /// Functional hardware co-simulation.
    Cosim,
    /// The full `eventor-serve` multi-session engine (software sessions
    /// under the scheduler, chunked interleaved ingest).
    Serve,
}

impl BackendKind {
    /// Every backend, in documentation order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Software,
        BackendKind::Sharded,
        BackendKind::Cosim,
        BackendKind::Serve,
    ];

    /// CLI name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            Self::Software => "software",
            Self::Sharded => "sharded",
            Self::Cosim => "cosim",
            Self::Serve => "serve",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Builds a streaming session from an admission profile — the `(camera,
/// config)` pair of `CorpusScenario::session_profile` /
/// `WorldSpec::session_profile` — with the **exact** per-backend options the
/// golden digest table was computed with. Front-ends that admit sessions
/// remotely (the `eventor-wire/1` server) must come through here, so a
/// remotely-served stream is bit-identical to the local golden path.
///
/// [`BackendKind::Serve`] builds the software session the serving tier
/// schedules.
///
/// # Errors
///
/// Propagates session-builder failures (invalid configuration).
pub fn session_for_profile(
    camera: eventor_geom::CameraModel,
    config: eventor_emvs::EmvsConfig,
    backend: BackendKind,
) -> Result<EventorSession, EmvsError> {
    builder_for_profile(camera, config, backend).build()
}

/// The configured-but-unbuilt form of [`session_for_profile`]: the same
/// per-backend options, returned as the builder. Checkpoint-aware
/// front-ends need this shape — a resumed session comes from
/// [`SessionBuilder::restore`](eventor_core::SessionBuilder::restore), not
/// `build()`, but must run with the exact golden-path options either way.
pub fn builder_for_profile(
    camera: eventor_geom::CameraModel,
    config: eventor_emvs::EmvsConfig,
    backend: BackendKind,
) -> eventor_core::SessionBuilder {
    let builder = EventorSession::builder(camera, config);
    match backend {
        BackendKind::Software | BackendKind::Serve => {
            builder.software(EventorOptions::accelerator())
        }
        BackendKind::Sharded => builder.sharded(
            EventorOptions::accelerator(),
            ParallelConfig::with_shards(SHARDS),
        ),
        BackendKind::Cosim => builder.cosim(AcceleratorConfig::default()),
    }
}

pub(crate) fn session_for(
    world: &ScenarioWorld,
    backend: BackendKind,
) -> Result<EventorSession, EmvsError> {
    session_for_profile(world.camera, world.config.clone(), backend)
}

pub(crate) fn run_standalone(
    world: &ScenarioWorld,
    backend: BackendKind,
) -> Result<SessionOutput, ScenarioError> {
    let mut session = session_for(world, backend)?;
    session.push_trajectory(&world.trajectory)?;
    let events = world.events.as_slice();
    let mut offset = 0usize;
    while offset < events.len() {
        offset += session.push_events(&events[offset..])?;
        session.poll()?;
    }
    Ok(session.finish()?)
}

/// Serves a set of worlds on one engine with interleaved chunked ingest and
/// returns each world's output, in input order.
///
/// This is the multiplexed form behind `eventor-cli check --backend serve`:
/// all scenarios share one scheduler, so the check also regresses the
/// serving tier's session isolation.
///
/// # Errors
///
/// Propagates engine errors ([`ScenarioError::Serve`]).
pub fn serve_worlds(worlds: &[&ScenarioWorld]) -> Result<Vec<SessionOutput>, ScenarioError> {
    let mut engine = ServeEngine::new(ServeConfig::new().with_workers(4));
    let mut ids = Vec::with_capacity(worlds.len());
    for world in worlds {
        let id = engine.admit(session_for(world, BackendKind::Software)?);
        engine.enqueue_trajectory(id, &world.trajectory)?;
        ids.push(id);
    }
    // Interleave enqueues with a cycling chunk pattern so the scheduler sees
    // genuinely concurrent sessions, not back-to-back full streams.
    const CHUNKS: [usize; 4] = [1536, 640, 2048, 1024];
    let mut cursors = vec![0usize; worlds.len()];
    let mut step = 0usize;
    loop {
        let mut all_done = true;
        for (i, world) in worlds.iter().enumerate() {
            let events = world.events.as_slice();
            if cursors[i] >= events.len() {
                continue;
            }
            all_done = false;
            let end = (cursors[i] + CHUNKS[step % CHUNKS.len()]).min(events.len());
            match engine.enqueue_events(ids[i], &events[cursors[i]..end]) {
                Ok(accepted) => cursors[i] += accepted,
                Err(ServeError::Session {
                    source: EmvsError::Backpressure { .. },
                    ..
                }) => {
                    engine.pump();
                }
                Err(e) => return Err(e.into()),
            }
            step += 1;
            if step.is_multiple_of(3) {
                engine.pump();
            }
        }
        if all_done {
            break;
        }
    }
    for &id in &ids {
        engine.close(id)?;
    }
    engine.drain()?;
    ids.iter()
        .map(|&id| {
            engine
                .take_output(id)
                .ok_or(ScenarioError::Serve(ServeError::UnknownSession {
                    session: id,
                }))
        })
        .collect()
}

/// Runs one world through one backend to completion.
///
/// # Errors
///
/// Propagates session and engine failures.
pub fn run_world(
    world: &ScenarioWorld,
    backend: BackendKind,
) -> Result<SessionOutput, ScenarioError> {
    match backend {
        BackendKind::Serve => Ok(serve_worlds(&[world])?
            .pop()
            .expect("one world in, one out")),
        _ => run_standalone(world, backend),
    }
}

/// The scenario digest: FNV-1a 64 over the reconstruction's depth maps —
/// key-frame count, then per key frame its dimensions, vote count and every
/// depth sample's raw `f64` bit pattern.
///
/// Quantized-nearest output is bit-identical across software, sharded and
/// served execution, so one golden digest per scenario covers all three.
pub fn digest_output(output: &SessionOutput) -> u64 {
    let mut h = Fnv64::new();
    let out = &output.output;
    h.update_u64(out.keyframes.len() as u64);
    for k in &out.keyframes {
        h.update_u64(k.depth_map.width() as u64);
        h.update_u64(k.depth_map.height() as u64);
        h.update_u64(k.votes_cast);
        for &d in k.depth_map.depth_data() {
            h.update_u64(d.to_bits());
        }
    }
    h.finish()
}

/// Builds nothing, runs nothing twice: one world, one backend, one digest.
///
/// # Errors
///
/// Propagates [`run_world`] failures.
pub fn digest_world(world: &ScenarioWorld, backend: BackendKind) -> Result<u64, ScenarioError> {
    Ok(digest_output(&run_world(world, backend)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find, Scenario};

    #[test]
    fn backend_names_round_trip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.name()), Some(b));
        }
        assert_eq!(BackendKind::parse("gpu"), None);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let scenario = find("shake_closeup").unwrap();
        let world = scenario.build(scenario.default_seed()).unwrap();
        let a = digest_world(&world, BackendKind::Software).unwrap();
        let b = digest_world(&world, BackendKind::Software).unwrap();
        assert_eq!(a, b, "digest not reproducible");
        let other = scenario.build(scenario.default_seed() ^ 1).unwrap();
        let c = digest_world(&other, BackendKind::Software).unwrap();
        assert_ne!(a, c, "digest blind to seed change");
    }
}
